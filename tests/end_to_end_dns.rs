//! Integration: the full DNS resolution path across all crates — client →
//! LDNS (eum-dns) → root/static authorities (eum-sim glue) → mapping
//! system's two-level hierarchy (eum-mapping) → CDN servers (eum-cdn) on
//! the synthetic Internet (eum-netmodel).

use end_user_mapping::dns::{EcsMode, Rcode};
use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::{AuthNet, QueryCounters};

fn world() -> Scenario {
    Scenario::build(ScenarioConfig::tiny(0xE2E))
}

/// Resolves `domain_idx`'s www name for `block_idx`'s representative
/// client via `ldns`, returning (resolution, counters).
fn resolve(
    world: &mut Scenario,
    block_idx: usize,
    domain_idx: usize,
    now_ms: u64,
) -> (end_user_mapping::dns::Resolution, QueryCounters) {
    let block = world.net.blocks[block_idx].clone();
    let ldns = block.primary_ldns();
    let resolver_info = world.net.resolver(ldns).clone();
    let latency = world.net.latency;
    let mut counters = QueryCounters::new();
    let domain = world.catalog.domains[domain_idx].clone();
    let mut authnet = AuthNet {
        mapping: &mut world.mapping,
        static_auths: &world.static_auths,
        endpoints: &world.endpoints,
        latency: &latency,
        resolver_ep: resolver_info.endpoint(),
        resolver_is_public: resolver_info.kind.is_public(),
        root_ip: world.root_ip,
        counters: &mut counters,
        day: 0,
    };
    let res = world.resolvers[ldns.index()].resolve(
        &domain.www_name,
        block.client_ip(),
        now_ms,
        &mut authnet,
    );
    (res, counters)
}

#[test]
fn cold_resolution_traverses_the_whole_hierarchy() {
    let mut w = world();
    let (res, counters) = resolve(&mut w, 0, 0, 0);
    assert_eq!(res.rcode, Rcode::NoError);
    assert_eq!(res.ips.len(), 2, "the CDN returns two server IPs");
    assert!(!res.from_cache);
    // Cold path: root (provider referral) + provider CNAME + root (cdn
    // referral) + top-level (delegation) + low-level (A) = 5 queries.
    assert_eq!(res.upstream_queries, 5);
    assert!(res.elapsed_ms > 0.0);
    // Two of those queries hit the mapping system.
    let (_, total, _, _) = counters.rows()[0];
    assert_eq!(total, 2);
}

#[test]
fn answered_servers_are_live_cdn_servers_in_one_cluster() {
    let mut w = world();
    let (res, _) = resolve(&mut w, 0, 0, 0);
    let clusters: Vec<_> = res
        .ips
        .iter()
        .map(|ip| {
            let sid = w
                .cdn
                .server_by_ip(*ip)
                .expect("answered IP is a CDN server");
            assert!(w.cdn.server(sid).alive);
            w.cdn.server(sid).cluster
        })
        .collect();
    assert_eq!(
        clusters[0], clusters[1],
        "both answers come from the assigned cluster"
    );
}

#[test]
fn warm_resolution_is_free_and_identical() {
    let mut w = world();
    let (cold, _) = resolve(&mut w, 0, 0, 0);
    let (warm, counters) = resolve(&mut w, 0, 0, 60_000);
    assert!(warm.from_cache);
    assert_eq!(warm.upstream_queries, 0);
    assert_eq!(warm.ips, cold.ips, "cached answer must match");
    assert!(counters.rows().is_empty() || counters.rows()[0].1 == 0);
}

#[test]
fn different_clients_of_one_ecs_ldns_get_scoped_answers() {
    let mut w = world();
    // Use the public LDNS serving the most client blocks.
    let ldns = w
        .net
        .resolvers
        .iter()
        .filter(|r| r.kind.is_public())
        .max_by_key(|r| {
            w.net
                .blocks
                .iter()
                .filter(|b| b.ldns.iter().any(|(rid, _)| *rid == r.id))
                .count()
        })
        .expect("public resolver exists")
        .id;
    w.resolvers[ldns.index()].set_ecs(EcsMode::On { source_prefix: 24 });
    let clients: Vec<usize> = w
        .net
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.ldns.iter().any(|(r, _)| *r == ldns))
        .map(|(i, _)| i)
        .take(8)
        .collect();
    assert!(
        clients.len() >= 2,
        "need at least two client blocks on this LDNS"
    );

    let latency = w.net.latency;
    let resolver_info = w.net.resolver(ldns).clone();
    let domain = w.catalog.domains[0].clone();
    let mut upstream_total = 0;
    for (k, bi) in clients.iter().enumerate() {
        let block = w.net.blocks[*bi].clone();
        let mut counters = QueryCounters::new();
        let mut authnet = AuthNet {
            mapping: &mut w.mapping,
            static_auths: &w.static_auths,
            endpoints: &w.endpoints,
            latency: &latency,
            resolver_ep: resolver_info.endpoint(),
            resolver_is_public: true,
            root_ip: w.root_ip,
            counters: &mut counters,
            day: 0,
        };
        let res = w.resolvers[ldns.index()].resolve(
            &domain.www_name,
            block.client_ip(),
            k as u64,
            &mut authnet,
        );
        assert_eq!(res.rcode, Rcode::NoError);
        upstream_total += res.upstream_queries;
    }
    // With ECS on, blocks in different scopes cannot share the terminal
    // answer: strictly more upstream queries than the one cold chain.
    assert!(
        upstream_total > 5,
        "expected per-scope upstream queries, got {upstream_total}"
    );
    // And the cache holds several scoped entries for the CDN name.
    let entries = w.resolvers[ldns.index()]
        .cache()
        .entries_for(&domain.cdn_name, end_user_mapping::dns::RrType::A);
    assert!(entries >= 2, "only {entries} scoped entries");
}

#[test]
fn unknown_domain_resolves_to_nxdomain_through_the_chain() {
    let mut w = world();
    let block = w.net.blocks[0].clone();
    let ldns = block.primary_ldns();
    let resolver_info = w.net.resolver(ldns).clone();
    let latency = w.net.latency;
    let mut counters = QueryCounters::new();
    let mut authnet = AuthNet {
        mapping: &mut w.mapping,
        static_auths: &w.static_auths,
        endpoints: &w.endpoints,
        latency: &latency,
        resolver_ep: resolver_info.endpoint(),
        resolver_is_public: false,
        root_ip: w.root_ip,
        counters: &mut counters,
        day: 0,
    };
    let res = w.resolvers[ldns.index()].resolve(
        &"www.never-hosted.example".parse().unwrap(),
        block.client_ip(),
        0,
        &mut authnet,
    );
    assert_eq!(res.rcode, Rcode::NxDomain);
    assert!(res.ips.is_empty());
}
