//! The closed loop, end to end: a [`ResolverFleet`] of real caching LDNS
//! instances driving a live `eum-authd` over the in-process channel
//! transport, with the full mapping system behind it.
//!
//! These tests measure the quantities the paper reasons about
//! analytically and check they move the right way:
//!
//! * ECS **amplification** — turning ECS on fragments resolver caches by
//!   client prefix, so the same downstream workload costs strictly more
//!   upstream queries (§6.3's scaling concern, RFC 7871 §7.1).
//! * **Hit ratio vs scope length** — the finer the authoritative's
//!   announced scope, the fewer clients share a cache entry, so the
//!   fleet's hit ratio falls monotonically as the scope floor deepens.

use eum_authd::{channel_transports, AuthServer, ChannelClient, ServerConfig, SnapshotHandle};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::{DnsName, Rcode};
use eum_ldns::{EcsPolicy, Ldns, LdnsConfig, QueryPlan, ResolverFleet, RunConfig};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use std::net::Ipv4Addr;
use std::time::Instant;

const SEED: u64 = 0x1D25;

struct World {
    net: Internet,
    catalog: ContentCatalog,
    map: MappingSystem,
}

fn build_world(scope_floor: u8) -> World {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            scope_floor,
            ..MappingConfig::default()
        },
    );
    World { net, catalog, map }
}

fn domains(catalog: &ContentCatalog) -> Vec<(DnsName, f64)> {
    catalog
        .domains
        .iter()
        .map(|d| (d.cdn_name.clone(), d.popularity))
        .collect()
}

/// Spawns an auth server over `shards` channel shards and returns the
/// top-level IP plus per-worker clients.
fn spawn_server(map: MappingSystem, shards: usize) -> (AuthServer, Ipv4Addr, Vec<ChannelClient>) {
    let top = map.top_level_ip();
    let (transports, connector) = channel_transports(shards);
    let server = AuthServer::spawn(transports, SnapshotHandle::new(map), ServerConfig::new(top));
    let clients = (0..shards)
        .map(|_| ChannelClient::new(connector.clone()))
        .collect();
    (server, top, clients)
}

#[test]
fn single_resolver_walks_the_hierarchy_and_caches() {
    let w = build_world(24);
    let qname = w.catalog.domains[0].cdn_name.clone();
    let client = w.net.blocks[0].client_ip();
    let resolver_ip = w.net.resolvers[0].ip;
    let (server, top, mut clients) = spawn_server(w.map, 1);
    let mut transport = clients.remove(0);

    let t0 = Instant::now();
    let mut ldns = Ldns::new(LdnsConfig::new(resolver_ip, EcsPolicy::Always), t0);

    // Cold: top-level delegation + low-level answer = 2 upstream queries.
    let first = ldns.resolve(&mut transport, 0, top, &qname, client, t0);
    assert_eq!(first.rcode, Rcode::NoError);
    assert!(!first.ips.is_empty(), "mapping must return edge servers");
    assert!(!first.from_cache);
    assert_eq!(first.upstream_queries, 2);
    assert!(first.ttl_s > 0);

    // Warm: same client asks again — answered without any upstream.
    let again = ldns.resolve(&mut transport, 0, top, &qname, client, t0);
    assert_eq!(again.ips, first.ips);
    assert!(again.from_cache);
    assert_eq!(again.upstream_queries, 0);

    // A second name reuses the *delegation* path only when it shares the
    // qname — distinct qname means a fresh delegation, so 2 more.
    let other = w.catalog.domains[1].cdn_name.clone();
    let second = ldns.resolve(&mut transport, 0, top, &other, client, t0);
    assert_eq!(second.rcode, Rcode::NoError);
    assert_eq!(second.upstream_queries, 2);

    // Unknown name: negative answer, and the negative entry is reused.
    let bogus: DnsName = "nope.cdn.example".parse().unwrap();
    let neg = ldns.resolve(&mut transport, 0, top, &bogus, client, t0);
    assert_eq!(neg.rcode, Rcode::NxDomain);
    let neg2 = ldns.resolve(&mut transport, 0, top, &bogus, client, t0);
    assert_eq!(neg2.rcode, Rcode::NxDomain);
    assert!(neg2.from_cache, "NXDOMAIN must be negatively cached");
    assert_eq!(neg2.upstream_queries, 0);

    let stats = ldns.stats();
    assert_eq!(stats.downstream_queries, 5);
    assert_eq!(stats.failures, 0);
    drop(transport);
    server.stop_join();
}

#[test]
fn truncated_upstream_answers_retry_over_tcp() {
    let w = build_world(24);
    let qname = w.catalog.domains[0].cdn_name.clone();
    let client = w.net.blocks[0].client_ip();
    let resolver_ip = w.net.resolvers[0].ip;
    let top = w.map.top_level_ip();

    // A UDP reply cap below any referral or answer: every upstream
    // exchange comes back TC=1 and must complete over the stream leg
    // (the channel transport models it as an uncapped stream query).
    let (transports, connector) = channel_transports(1);
    let server = AuthServer::spawn(
        transports,
        SnapshotHandle::new(w.map),
        ServerConfig::new(top).with_max_udp_reply(40),
    );
    let mut transport = ChannelClient::new(connector);

    let t0 = Instant::now();
    let mut ldns = Ldns::new(LdnsConfig::new(resolver_ip, EcsPolicy::Always), t0);
    let first = ldns.resolve(&mut transport, 0, top, &qname, client, t0);
    assert_eq!(first.rcode, Rcode::NoError);
    assert!(!first.ips.is_empty(), "the TCP leg must carry the answer");
    // Both walk steps (delegation + answer) truncated: each cost one UDP
    // query plus one TCP retry.
    assert_eq!(first.upstream_queries, 4);
    let stats = ldns.stats();
    assert_eq!(stats.upstream_tcp_retries, 2);
    assert_eq!(stats.failures, 0);

    // Cached: no upstream at all, so no further retries.
    let again = ldns.resolve(&mut transport, 0, top, &qname, client, t0);
    assert!(again.from_cache);
    assert_eq!(again.ips, first.ips);
    assert_eq!(ldns.stats().upstream_tcp_retries, 2);
    drop(transport);
    server.stop_join();
}

#[test]
fn fleet_reports_and_exports_tcp_retries() {
    use eum_ldns::FleetMetrics;
    use eum_telemetry::Registry;

    const QUERIES: usize = 400;
    const WORKERS: usize = 2;

    let w = build_world(24);
    let plan = QueryPlan::generate(&w.net, &domains(&w.catalog), SEED, QUERIES);
    let t0 = Instant::now();
    let mut fleet = ResolverFleet::new(&w.net, t0, |r| LdnsConfig::new(r.ip, EcsPolicy::Always));
    let top = w.map.top_level_ip();
    let (transports, connector) = channel_transports(WORKERS);
    let server = AuthServer::spawn(
        transports,
        SnapshotHandle::new(w.map),
        ServerConfig::new(top).with_max_udp_reply(40),
    );
    let clients = (0..WORKERS)
        .map(|_| ChannelClient::new(connector.clone()))
        .collect();
    let report = fleet.run(clients, &plan, &RunConfig::new(top));
    let server_reports = server.stop_join();

    assert_eq!(report.failures, 0, "every truncation must recover via TCP");
    assert!(
        report.upstream_tcp_retries > 0,
        "a 40-byte cap must force TC retries"
    );
    // Every UDP reply the server truncated shows up as a resolver-side
    // TCP retry, and retries are counted inside upstream_queries.
    let truncated: u64 = server_reports.iter().map(|r| r.truncated).sum();
    assert_eq!(report.upstream_tcp_retries, truncated);
    assert!(report.upstream_queries >= 2 * report.upstream_tcp_retries);

    let reg = Registry::new();
    let mut metrics = FleetMetrics::register(&reg);
    metrics.publish(&report);
    let text = reg.render_text();
    assert!(
        text.contains(&format!(
            "eum_ldns_upstream_tcp_retries_total {}",
            report.upstream_tcp_retries
        )),
        "exported counter must match the fleet report"
    );
}

#[test]
fn ecs_raises_measured_amplification_over_baseline() {
    const QUERIES: usize = 4_000;
    const WORKERS: usize = 4;

    let mut amps = Vec::new();
    let mut reports = Vec::new();
    for ecs in [false, true] {
        let w = build_world(24);
        let plan = QueryPlan::generate(&w.net, &domains(&w.catalog), SEED, QUERIES);
        let t0 = Instant::now();
        let mut fleet = ResolverFleet::new(&w.net, t0, |r| {
            let policy = if ecs {
                EcsPolicy::Always
            } else {
                EcsPolicy::Off
            };
            LdnsConfig::new(r.ip, policy)
        });
        assert!(fleet.len() >= 8, "acceptance: at least 8 resolver sites");
        let (server, top, clients) = spawn_server(w.map, WORKERS);
        let report = fleet.run(clients, &plan, &RunConfig::new(top));
        server.stop_join();

        assert_eq!(report.downstream_queries, QUERIES as u64);
        assert_eq!(report.failures, 0, "clean channel transport, no failures");
        assert!(report.upstream_queries > 0);
        amps.push(report.amplification());
        reports.push(report);
    }

    let (off, on) = (amps[0], amps[1]);
    assert!(
        on > 1.5 * off,
        "ECS must fragment resolver caches: measured amplification \
         ecs-on {on:.3} vs ecs-off {off:.3} (ratio {:.2})",
        on / off
    );
    // With ECS off every hit is on a global (scope-0) entry; with ECS on
    // the positive-answer hits move to scoped entries.
    assert_eq!(
        reports[0].hits_by_scope[1..].iter().sum::<u64>(),
        0,
        "ECS-off fleet must only ever hit global entries"
    );
    assert!(
        reports[1].hits_by_scope[1..].iter().sum::<u64>() > 0,
        "ECS-on fleet must hit scoped entries"
    );
}

#[test]
fn hit_ratio_falls_as_announced_scope_deepens() {
    const QUERIES: usize = 4_000;
    const WORKERS: usize = 4;

    let mut ratios = Vec::new();
    for scope_floor in [8u8, 16, 24] {
        let w = build_world(scope_floor);
        let plan = QueryPlan::generate(&w.net, &domains(&w.catalog), SEED, QUERIES);
        let t0 = Instant::now();
        let mut fleet =
            ResolverFleet::new(&w.net, t0, |r| LdnsConfig::new(r.ip, EcsPolicy::Always));
        let (server, top, clients) = spawn_server(w.map, WORKERS);
        let report = fleet.run(clients, &plan, &RunConfig::new(top));
        server.stop_join();

        assert_eq!(report.downstream_queries, QUERIES as u64);
        ratios.push((scope_floor, report.hit_ratio()));
    }

    for pair in ratios.windows(2) {
        let ((f0, r0), (f1, r1)) = (pair[0], pair[1]);
        assert!(
            r0 >= r1,
            "hit ratio must not rise with scope: /{f0} -> {r0:.3}, /{f1} -> {r1:.3}"
        );
    }
    let (first, last) = (ratios[0].1, ratios[2].1);
    assert!(
        first > last,
        "a /8 floor must cache strictly better than a /24 floor: {first:.3} vs {last:.3}"
    );
}
