//! IPv4 prefixes (`/x` IP blocks).
//!
//! The paper reasons about clients at the granularity of `/x` client IP
//! blocks ("By client's /x IP block, we mean the set of IPs that have same
//! first x bits as the client's IP", §2.1). This type is used everywhere:
//! ECS options carry a prefix, mapping units are prefixes, the geolocation
//! database is keyed by prefixes, and BGP CIDRs are prefixes.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix: a network address and a prefix length in `[0, 32]`.
///
/// The host bits of the address are always zero; constructors mask them off
/// so two `Prefix` values compare equal iff they denote the same block.
/// Ordering is by (address, length), which places a covering prefix
/// immediately before the blocks it contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// The whole IPv4 space, `0.0.0.0/0`.
    pub const ALL: Prefix = Prefix { addr: 0, len: 0 };

    /// Creates a prefix from a raw `u32` address and a length, masking off
    /// host bits. Lengths above 32 are clamped to 32.
    pub fn new(addr: u32, len: u8) -> Self {
        let len = len.min(32);
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// Creates a `/32` host prefix for a single address.
    pub fn host(ip: Ipv4Addr) -> Self {
        Prefix::new(u32::from(ip), 32)
    }

    /// Creates a prefix covering `ip` with the given length.
    pub fn of(ip: Ipv4Addr, len: u8) -> Self {
        Prefix::new(u32::from(ip), len)
    }

    /// The network mask for a prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len.min(32) as u32)
        }
    }

    /// The network address (host bits zero).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True when this is the zero-length (whole-space) prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The network address as an [`Ipv4Addr`].
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The first address in the block (same as [`Self::network`]).
    pub fn first(&self) -> u32 {
        self.addr
    }

    /// The last address in the block.
    pub fn last(&self) -> u32 {
        self.addr | !Self::mask(self.len)
    }

    /// Number of addresses in the block (saturates at `u64` for `/0`).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// True when `ip` belongs to this block.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == self.addr
    }

    /// True when `other` is a sub-block of (or equal to) this block.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// Truncates the prefix to a shorter (or equal) length `len`.
    ///
    /// This is the operation the authoritative name server performs when it
    /// answers a `/24` ECS query with a coarser scope `/y ≤ /x` (§2.1), and
    /// what the mapping unit partition uses to coarsen blocks (§5.1).
    pub fn truncate(&self, len: u8) -> Prefix {
        let len = len.min(self.len);
        Prefix::new(self.addr, len)
    }

    /// The covering block one bit shorter, or `None` at `/0`.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(self.truncate(self.len - 1))
        }
    }

    /// Splits into the two child blocks one bit longer, or `None` at `/32`.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix::new(self.addr, self.len + 1);
        let right = Prefix::new(self.addr | (1 << (31 - self.len as u32)), self.len + 1);
        Some((left, right))
    }

    /// Iterates over the `/sub` blocks contained in this prefix.
    ///
    /// Panics if `sub < self.len()` (cannot enumerate coarser blocks) or the
    /// expansion would exceed 2^24 blocks (guards accidental `/0` walks).
    pub fn subblocks(&self, sub: u8) -> impl Iterator<Item = Prefix> + '_ {
        assert!(
            sub >= self.len,
            "subblocks: /{sub} is coarser than /{}",
            self.len
        );
        let shift = sub - self.len;
        assert!(
            shift <= 24,
            "subblocks: expansion of 2^{shift} blocks is too large"
        );
        let count: u64 = 1 << shift;
        let step = 1u64 << (32 - sub as u32);
        (0..count).map(move |i| Prefix::new(self.addr + (i * step) as u32, sub))
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Errors from parsing a prefix out of `"a.b.c.d/len"` notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The address part was not a valid dotted quad.
    BadAddress,
    /// The length part was missing or not an integer in `[0, 32]`.
    BadLength,
}

impl std::fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefixParseError::BadAddress => f.write_str("invalid IPv4 address in prefix"),
            PrefixParseError::BadLength => f.write_str("invalid prefix length (want 0..=32)"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(PrefixParseError::BadLength)?;
        let ip: Ipv4Addr = addr.parse().map_err(|_| PrefixParseError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Prefix::of(ip, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn constructor_masks_host_bits() {
        let a = Prefix::of(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(a, p("10.1.2.0/24"));
        assert_eq!(a.network(), Ipv4Addr::new(10, 1, 2, 0));
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/24".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn mask_edge_cases() {
        assert_eq!(Prefix::mask(0), 0);
        assert_eq!(Prefix::mask(32), u32::MAX);
        assert_eq!(Prefix::mask(24), 0xFFFF_FF00);
        assert_eq!(Prefix::mask(1), 0x8000_0000);
    }

    #[test]
    fn contains_and_covers() {
        let net = p("10.1.0.0/16");
        assert!(net.contains(Ipv4Addr::new(10, 1, 255, 255)));
        assert!(!net.contains(Ipv4Addr::new(10, 2, 0, 0)));
        assert!(net.covers(&p("10.1.2.0/24")));
        assert!(net.covers(&net));
        assert!(!net.covers(&p("10.0.0.0/8")));
        assert!(!p("10.1.2.0/24").covers(&p("10.1.3.0/24")));
    }

    #[test]
    fn truncate_coarsens_only() {
        let b = p("10.1.2.0/24");
        assert_eq!(b.truncate(16), p("10.1.0.0/16"));
        assert_eq!(b.truncate(24), b);
        // Truncating to a longer length is a no-op, not an extension.
        assert_eq!(b.truncate(28), b);
    }

    #[test]
    fn first_last_size() {
        let b = p("10.1.2.0/24");
        assert_eq!(b.first(), u32::from(Ipv4Addr::new(10, 1, 2, 0)));
        assert_eq!(b.last(), u32::from(Ipv4Addr::new(10, 1, 2, 255)));
        assert_eq!(b.size(), 256);
        assert_eq!(Prefix::ALL.size(), 1 << 32);
    }

    #[test]
    fn parent_and_children() {
        let b = p("10.1.2.0/24");
        assert_eq!(b.parent(), Some(p("10.1.2.0/23")));
        assert_eq!(Prefix::ALL.parent(), None);
        let (l, r) = p("10.0.0.0/8").children().unwrap();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, p("10.128.0.0/9"));
        assert!(Prefix::host(Ipv4Addr::new(1, 1, 1, 1)).children().is_none());
    }

    #[test]
    fn subblocks_enumerates_exactly() {
        let subs: Vec<_> = p("10.1.0.0/22").subblocks(24).collect();
        assert_eq!(
            subs,
            vec![
                p("10.1.0.0/24"),
                p("10.1.1.0/24"),
                p("10.1.2.0/24"),
                p("10.1.3.0/24")
            ]
        );
        // A block is its own single sub-block at equal length.
        assert_eq!(p("10.1.0.0/24").subblocks(24).count(), 1);
    }

    #[test]
    #[should_panic(expected = "coarser")]
    fn subblocks_rejects_coarser_target() {
        let _ = p("10.1.2.0/24").subblocks(16).count();
    }

    #[test]
    fn ordering_places_parent_before_children() {
        let parent = p("10.1.0.0/16");
        let child = p("10.1.0.0/24");
        assert!(parent < child);
    }
}
