//! Global load balancing: assign each mapping unit to a server cluster.
//!
//! §2.2: "The load balancing module assigns servers to each client request
//! in two hierarchical steps: first it assigns a server cluster for each
//! client, a process called global load balancing." The algorithms here
//! follow the companion paper (Maggs & Sitaraman, "Algorithmic Nuggets in
//! Content Delivery"): the production system solves a *stable allocation*
//! problem between mapping units (with demands) and clusters (with
//! capacities), for which we implement capacity-respecting deferred
//! acceptance (Gale–Shapley); a greedy assigner is kept as the ablation
//! baseline.

use crate::score::ScoreTable;
use crate::units::{MapUnits, UnitId};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Which assignment algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbAlgorithm {
    /// Deferred acceptance (stable allocation).
    Stable,
    /// Demand-descending greedy best-fit.
    Greedy,
}

/// The computed assignment: one cluster per unit (`None` only if every
/// cluster rejected the unit, which requires total capacity < demand).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    /// Per-unit assigned cluster index (into the LB's cluster list).
    pub cluster_of: Vec<Option<usize>>,
    /// Per-cluster assigned demand.
    pub load: Vec<f64>,
}

impl Assignment {
    /// The assigned cluster for a unit.
    pub fn cluster(&self, unit: UnitId) -> Option<usize> {
        self.cluster_of[unit.index()]
    }

    /// Fraction of units that received an assignment.
    pub fn assigned_fraction(&self) -> f64 {
        if self.cluster_of.is_empty() {
            return 1.0;
        }
        self.cluster_of.iter().filter(|c| c.is_some()).count() as f64 / self.cluster_of.len() as f64
    }
}

/// Per-unit cluster preference orders, best score first.
///
/// Rows are *unfiltered* by liveness so the table can be cached across
/// incremental rebuilds (liveness changes every generation, scores do
/// not): [`assign_with_prefs`] applies the `usable` filter at proposal
/// time, which visits exactly the clusters a pre-filtered list would,
/// in the same order — so the cached-table path and the from-scratch
/// path produce bit-identical assignments by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceTable {
    prefs: Vec<Vec<u32>>,
}

impl PreferenceTable {
    /// Builds the full table: one score-order sort per unit.
    pub fn build(scores: &ScoreTable) -> PreferenceTable {
        let prefs = (0..scores.units())
            .map(|u| {
                scores
                    .preference_order(UnitId(u as u32))
                    .into_iter()
                    .map(|c| c as u32)
                    .collect()
            })
            .collect();
        PreferenceTable { prefs }
    }

    /// Re-sorts one unit's row after its score row changed.
    pub fn resort_row(&mut self, scores: &ScoreTable, unit: UnitId) {
        self.prefs[unit.index()] = scores
            .preference_order(unit)
            .into_iter()
            .map(|c| c as u32)
            .collect();
    }

    /// A unit's clusters, best first.
    pub fn row(&self, unit: UnitId) -> &[u32] {
        &self.prefs[unit.index()]
    }

    /// Number of unit rows.
    pub fn len(&self) -> usize {
        self.prefs.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.prefs.is_empty()
    }
}

/// Assigns every unit to a cluster under capacity constraints.
///
/// `capacity[c]` is cluster `c`'s demand capacity (may be infinite).
/// Dead clusters are excluded by passing `usable[c] = false`.
pub fn assign(
    algorithm: LbAlgorithm,
    units: &MapUnits,
    scores: &ScoreTable,
    capacity: &[f64],
    usable: &[bool],
) -> Assignment {
    let prefs = PreferenceTable::build(scores);
    assign_with_prefs(algorithm, units, scores, &prefs, capacity, usable)
}

/// Like [`assign`], but over a caller-cached [`PreferenceTable`] — the
/// incremental rebuild's entry point, which skips the per-unit sorts.
///
/// This is the *only* solver code path: [`assign`] builds the table and
/// delegates here, so full and incremental rebuilds cannot diverge.
pub fn assign_with_prefs(
    algorithm: LbAlgorithm,
    units: &MapUnits,
    scores: &ScoreTable,
    prefs: &PreferenceTable,
    capacity: &[f64],
    usable: &[bool],
) -> Assignment {
    assert_eq!(capacity.len(), scores.clusters());
    assert_eq!(usable.len(), scores.clusters());
    assert_eq!(prefs.len(), units.len());
    match algorithm {
        LbAlgorithm::Stable => stable_allocation(units, scores, prefs, capacity, usable),
        LbAlgorithm::Greedy => greedy(units, scores, capacity, usable),
    }
}

/// Deferred acceptance with capacities.
///
/// Units propose to clusters in score order. A cluster tentatively holds
/// proposals; when over capacity it rejects its *worst-scored* held units
/// (its preference is also the score — both sides rank by measured
/// performance) until it fits. Rejected units propose onward. With unit
/// demands all equal this is exactly hospital/residents deferred
/// acceptance, whose outcome is stable; with heterogeneous demands the
/// result is stable up to one fractional unit per cluster (the classic
/// stable-allocation relaxation).
///
/// The proposal queue doubles as the incremental solver's repair loop:
/// displaced units re-enter it and re-propose from where they left off
/// until the allocation reaches a fixed point. It is seeded with every
/// unit (not just dirty ones) because the outcome is proposal-order
/// dependent — a dirty-only seed would converge to *a* stable
/// allocation, but not bit-identically the one a from-scratch rebuild
/// produces, and the equivalence suite demands identity. The asymptotic
/// win of the incremental path is elsewhere: re-proposing over cached
/// preference rows costs `O(units·proposals)`, while the measurement,
/// scoring, and sorting it skips cost `O(units·clusters·log clusters)`.
fn stable_allocation(
    units: &MapUnits,
    scores: &ScoreTable,
    prefs: &PreferenceTable,
    capacity: &[f64],
    usable: &[bool],
) -> Assignment {
    let n_units = units.len();
    let n_clusters = scores.clusters();
    // Next preference index each unit will propose to. Indexes the
    // unfiltered row; unusable clusters are skipped at proposal time.
    let mut next_pref = vec![0usize; n_units];
    let mut cluster_of: Vec<Option<usize>> = vec![None; n_units];
    let mut load = vec![0.0f64; n_clusters];
    // Per-cluster max-heap of held units by score (worst on top).
    let mut held: Vec<BinaryHeap<HeldUnit>> = (0..n_clusters).map(|_| BinaryHeap::new()).collect();

    let mut queue: Vec<usize> = (0..n_units).collect();
    while let Some(u) = queue.pop() {
        let demand = units.unit(UnitId(u as u32)).demand;
        let row = prefs.row(UnitId(u as u32));
        loop {
            let c = loop {
                match row.get(next_pref[u]) {
                    None => break None,
                    Some(c) => {
                        next_pref[u] += 1;
                        if usable[*c as usize] {
                            break Some(*c as usize);
                        }
                    }
                }
            };
            let Some(c) = c else {
                break; // exhausted: unassigned
            };
            let score = scores.score(UnitId(u as u32), c);
            // Tentatively accept.
            held[c].push(HeldUnit { score, unit: u });
            load[c] += demand;
            cluster_of[u] = Some(c);
            // Evict worst until within capacity — but never evict the only
            // holder (a unit larger than capacity still needs service).
            while load[c] > capacity[c] && held[c].len() > 1 {
                let worst = held[c].pop().expect("non-empty heap");
                load[c] -= units.unit(UnitId(worst.unit as u32)).demand;
                cluster_of[worst.unit] = None;
                if worst.unit == u {
                    break;
                }
                queue.push(worst.unit);
            }
            if cluster_of[u].is_some() {
                break;
            }
            // We were immediately evicted; try the next preference.
        }
    }
    // Overflow pass: a unit can exhaust its list when every cluster is
    // pinned at capacity by better-scoring units. Not serving it is never
    // acceptable — place it at its best usable cluster, preferring ones
    // with room (the real system overflows into a warm cluster rather
    // than refusing to map).
    for (u, slot) in cluster_of.iter_mut().enumerate() {
        if slot.is_some() {
            continue;
        }
        let demand = units.unit(UnitId(u as u32)).demand;
        let mut first_usable = None;
        let mut choice = None;
        for c in prefs.row(UnitId(u as u32)) {
            let c = *c as usize;
            if !usable[c] {
                continue;
            }
            if first_usable.is_none() {
                first_usable = Some(c);
            }
            if load[c] + demand <= capacity[c] {
                choice = Some(c);
                break;
            }
        }
        if let Some(c) = choice.or(first_usable) {
            *slot = Some(c);
            load[c] += demand;
        }
    }
    Assignment { cluster_of, load }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeldUnit {
    score: f64,
    unit: usize,
}

impl Eq for HeldUnit {}

impl Ord for HeldUnit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by score: worst (highest score) pops first.
        self.score
            .partial_cmp(&other.score)
            .expect("finite scores")
            .then(self.unit.cmp(&other.unit))
    }
}

impl PartialOrd for HeldUnit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedy baseline: walk units by demand descending, give each its best
/// cluster with remaining capacity.
fn greedy(units: &MapUnits, scores: &ScoreTable, capacity: &[f64], usable: &[bool]) -> Assignment {
    let n_clusters = scores.clusters();
    let mut cluster_of = vec![None; units.len()];
    let mut load = vec![0.0f64; n_clusters];
    for id in units.by_demand_desc() {
        let demand = units.unit(id).demand;
        let choice = scores.best_among(
            id,
            (0..n_clusters).filter(|c| usable[*c] && load[*c] + demand <= capacity[*c]),
        );
        // If nothing fits, overflow into the best usable cluster anyway
        // (serving from a hot cluster beats not serving).
        let choice =
            choice.or_else(|| scores.best_among(id, (0..n_clusters).filter(|c| usable[*c])));
        if let Some(c) = choice {
            cluster_of[id.index()] = Some(c);
            load[c] += demand;
        }
    }
    Assignment { cluster_of, load }
}

/// Checks stability: returns a blocking pair `(unit, cluster)` if one
/// exists — a unit that strictly prefers `cluster` over its assignment
/// while `cluster` has spare capacity for it or holds a strictly worse
/// unit it could evict. Used by tests; `None` means stable.
pub fn find_blocking_pair(
    units: &MapUnits,
    scores: &ScoreTable,
    capacity: &[f64],
    usable: &[bool],
    assignment: &Assignment,
) -> Option<(UnitId, usize)> {
    let n_clusters = scores.clusters();
    // Worst held score per cluster.
    let mut worst: Vec<Option<(f64, usize)>> = vec![None; n_clusters];
    for (u, c) in assignment.cluster_of.iter().enumerate() {
        if let Some(c) = *c {
            let s = scores.score(UnitId(u as u32), c);
            if worst[c].is_none_or(|(w, _)| s > w) {
                worst[c] = Some((s, u));
            }
        }
    }
    for u in 0..units.len() {
        let uid = UnitId(u as u32);
        let current = assignment.cluster_of[u].map(|c| scores.score(uid, c));
        let demand = units.unit(uid).demand;
        for c in 0..n_clusters {
            if !usable[c] {
                continue;
            }
            let s = scores.score(uid, c);
            if current.is_some_and(|cs| s >= cs) {
                continue; // does not strictly prefer c
            }
            if current.is_none() && assignment.cluster_of[u].is_none() {
                // Unassigned unit prefers any cluster.
            }
            let has_room = assignment.load[c] + demand <= capacity[c];
            let can_evict = worst[c].is_some_and(|(w, wu)| w > s && wu != u);
            if has_room || can_evict {
                return Some((uid, c));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{PingMatrix, PingTargets};
    use crate::score::{ScoreBasis, ScoreTable, ScoringWeights};
    use eum_netmodel::{Endpoint, Internet, InternetConfig};

    fn setup(seed: u64) -> (Internet, MapUnits, ScoreTable, usize) {
        let net = Internet::generate(InternetConfig::tiny(seed));
        let units = MapUnits::ldns_units(&net);
        let clusters: Vec<Endpoint> = net.resolvers.iter().take(8).map(|r| r.endpoint()).collect();
        let targets = PingTargets::select(&net, 30, 150.0);
        let matrix = PingMatrix::measure(&net, &clusters, &targets);
        let vantages: Vec<Endpoint> = units
            .units
            .iter()
            .map(|u| match u.key {
                crate::units::UnitKey::Ldns(r) => net.resolver(r).endpoint(),
                _ => unreachable!(),
            })
            .collect();
        let n = clusters.len();
        let table = ScoreTable::build(
            &net,
            &units,
            &vantages,
            &clusters,
            &targets,
            &matrix,
            ScoringWeights::default(),
            ScoreBasis::UnitVantage,
            50,
        );
        (net, units, table, n)
    }

    #[test]
    fn unlimited_capacity_gives_everyone_their_favorite() {
        let (_, units, table, n) = setup(1);
        let cap = vec![f64::INFINITY; n];
        let usable = vec![true; n];
        for algo in [LbAlgorithm::Stable, LbAlgorithm::Greedy] {
            let a = assign(algo, &units, &table, &cap, &usable);
            assert_eq!(a.assigned_fraction(), 1.0);
            for u in 0..units.len() {
                let uid = UnitId(u as u32);
                let got = a.cluster(uid).unwrap();
                let best = table.best_among(uid, 0..n).unwrap();
                assert_eq!(got, best, "{algo:?} unit {u}");
            }
        }
    }

    #[test]
    fn capacity_is_respected_by_stable_allocation() {
        let (_, units, table, n) = setup(2);
        let total: f64 = units.total_demand();
        // Tight: 130% headroom split evenly.
        let cap = vec![total * 1.3 / n as f64; n];
        let usable = vec![true; n];
        let a = assign(LbAlgorithm::Stable, &units, &table, &cap, &usable);
        assert_eq!(a.assigned_fraction(), 1.0, "total capacity exceeds demand");
        #[allow(clippy::needless_range_loop)]
        for c in 0..n {
            // A cluster may hold a single unit larger than its capacity,
            // otherwise it must fit.
            let holders = a.cluster_of.iter().filter(|x| **x == Some(c)).count();
            if holders > 1 {
                let max_unit = units.units.iter().map(|u| u.demand).fold(0.0f64, f64::max);
                assert!(
                    a.load[c] <= cap[c] + max_unit,
                    "cluster {c} load {} way over cap {}",
                    a.load[c],
                    cap[c]
                );
            }
        }
    }

    #[test]
    fn stable_allocation_has_no_blocking_pair_with_unit_demands() {
        // Classic stability holds when all demands are equal: force that
        // by rebuilding the units with demand 1.
        let (_, mut units, table, n) = setup(3);
        for u in &mut units.units {
            u.demand = 1.0;
        }
        let cap = vec![(units.len() as f64 / n as f64).ceil() + 1.0; n];
        let usable = vec![true; n];
        let a = assign(LbAlgorithm::Stable, &units, &table, &cap, &usable);
        assert_eq!(a.assigned_fraction(), 1.0);
        assert_eq!(find_blocking_pair(&units, &table, &cap, &usable, &a), None);
    }

    #[test]
    fn dead_clusters_are_never_used() {
        let (_, units, table, n) = setup(4);
        let cap = vec![f64::INFINITY; n];
        let mut usable = vec![true; n];
        usable[0] = false;
        usable[3] = false;
        for algo in [LbAlgorithm::Stable, LbAlgorithm::Greedy] {
            let a = assign(algo, &units, &table, &cap, &usable);
            for c in a.cluster_of.iter().flatten() {
                assert!(usable[*c], "{algo:?} used dead cluster {c}");
            }
            assert_eq!(a.assigned_fraction(), 1.0);
        }
    }

    #[test]
    fn both_algorithms_stay_near_the_unconstrained_optimum() {
        // Neither algorithm dominates the other on mean score in general
        // (stable allocation optimizes stability, not the sum), but under
        // moderate capacity pressure both must stay within a small factor
        // of the unconstrained per-unit best.
        let (_, units, table, n) = setup(5);
        let total: f64 = units.total_demand();
        let cap = vec![total * 1.4 / n as f64; n];
        let usable = vec![true; n];
        let mean_score = |a: &Assignment| {
            let mut acc = 0.0;
            let mut w = 0.0;
            for u in 0..units.len() {
                if let Some(c) = a.cluster_of[u] {
                    let d = units.unit(UnitId(u as u32)).demand;
                    acc += table.score(UnitId(u as u32), c) * d;
                    w += d;
                }
            }
            acc / w
        };
        let best_possible: f64 = {
            let mut acc = 0.0;
            for u in 0..units.len() {
                let uid = UnitId(u as u32);
                let best = table.best_among(uid, 0..n).unwrap();
                acc += table.score(uid, best) * units.unit(uid).demand;
            }
            acc / units.total_demand()
        };
        // Reference: a demand-weighted mean over *random* usable clusters.
        let random_mean: f64 = {
            let mut acc = 0.0;
            for u in 0..units.len() {
                let uid = UnitId(u as u32);
                let avg: f64 = (0..n).map(|c| table.score(uid, c)).sum::<f64>() / n as f64;
                acc += avg * units.unit(uid).demand;
            }
            acc / units.total_demand()
        };
        for algo in [LbAlgorithm::Stable, LbAlgorithm::Greedy] {
            let a = assign(algo, &units, &table, &cap, &usable);
            let m = mean_score(&a);
            assert!(
                m <= best_possible * 3.0,
                "{algo:?} mean score {m:.1} vs unconstrained best {best_possible:.1}"
            );
            assert!(
                m < random_mean,
                "{algo:?} mean score {m:.1} no better than random {random_mean:.1}"
            );
        }
    }

    #[test]
    fn load_accounts_match_assignments() {
        let (_, units, table, n) = setup(6);
        let cap = vec![f64::INFINITY; n];
        let usable = vec![true; n];
        let a = assign(LbAlgorithm::Stable, &units, &table, &cap, &usable);
        let mut recomputed = vec![0.0f64; n];
        for u in 0..units.len() {
            if let Some(c) = a.cluster_of[u] {
                recomputed[c] += units.unit(UnitId(u as u32)).demand;
            }
        }
        for (c, r) in recomputed.iter().enumerate() {
            assert!((r - a.load[c]).abs() < 1e-6, "cluster {c}");
        }
    }
}
