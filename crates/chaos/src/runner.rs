//! The live A/B runner: one scenario, two arms, fixed offered load.
//!
//! # Queueing model
//!
//! The runner is open-loop over a **virtual arrival clock** with
//! **measured service times**. Arrival `i` lands at `i * interval_ns`
//! on the virtual clock; the single serving lane starts it at
//! `max(arrival, lane_free)`, the resolution runs for real against the
//! spawned authd (wall-clock `svc_ns` measured around the call), and
//! the lane frees at `start + svc_ns`. Latency is `start + svc_ns -
//! arrival`: queueing delay plus service. When offered load exceeds
//! the arm's service rate the backlog — and with it every later
//! arrival's latency — grows without bound, exactly as a saturated
//! resolver's queue does; answers later than the scenario's deadline
//! count as lost even though the server (which cannot know the client
//! gave up) still produced them.
//!
//! The arrival interval is *calibrated, then fixed*: a short batch with
//! the scenario's own traffic mix is timed against each arm, and the
//! offered interval is placed midway between the two measured per-query
//! costs. Both arms then replay the identical schedule at the identical
//! interval — offered load is fixed; only the defenses differ. When the
//! defended arm is genuinely cheaper per query (shedding beats
//! computing), the undefended arm saturates while the defended one
//! keeps its queue empty; if the defenses bought nothing, neither arm
//! saturates — the calibration cannot manufacture a difference, it can
//! only expose one. Both measured costs land in the report.
//!
//! The same virtual clock drives resolver caches and the admission
//! bucket's refill, so TTL expiry and token accrual see the offered
//! timeline, not the compressed wall time of the test run.

use crate::report::{AbReport, ArmReport, WindowStats};
use crate::scenario::{hottest, AttackGenKind, ChaosQuery, ChaosScenario, ScheduledEvent};
use eum_authd::{
    channel_transports, AdmissionConfig, AuthServer, ChannelClient, ServerConfig, SnapshotHandle,
    TelemetryConfig,
};
use eum_cdn::{
    deployment_universe, CatalogConfig, CdnPlatform, ClusterId, ContentCatalog, DeployConfig,
};
use eum_dns::Rcode;
use eum_ldns::{EcsPolicy, Ldns, LdnsConfig};
use eum_mapping::{MappingConfig, MappingPolicy, MappingSystem, RescoreHints};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::Registry;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queries timed per arm to calibrate the offered arrival interval.
const CALIBRATION_QUERIES: usize = 600;

/// The serving-side defenses an arm runs with.
#[derive(Debug, Clone)]
pub struct Defenses {
    /// Token-bucket admission control on authd's compute path
    /// (`None`: every query is routed, nothing is shed).
    pub admission: Option<AdmissionConfig>,
    /// Republish a liveness-refreshed, health-filtered map when a site
    /// dies mid-run (`false`: keep serving the stale snapshot).
    pub republish_on_outage: bool,
}

impl Defenses {
    /// Everything off: the undefended baseline arm.
    pub fn off() -> Defenses {
        Defenses {
            admission: None,
            republish_on_outage: false,
        }
    }

    /// Everything on. The burst is sized to swallow legitimate
    /// compute transients — a cold fleet's warm-up misses plus one
    /// full cache-refill surge after a mid-run flush (outage TTL
    /// expiry, an ECS policy flip, together worst-case ~1.2k tokens)
    /// — while staying well under a sustained flood's volume, so
    /// admission only bites workloads that *keep* missing: exactly
    /// the attack shape.
    pub fn on() -> Defenses {
        Defenses {
            admission: Some(AdmissionConfig::new(4_000, 2_048)),
            republish_on_outage: true,
        }
    }
}

/// The world one chaos lab runs against: a generated internet, a
/// deployed CDN, a content catalog, and a built mapping system.
pub struct ChaosWorld {
    pub net: Internet,
    pub cdn: CdnPlatform,
    pub catalog: ContentCatalog,
    pub map: MappingSystem,
    pub top_ip: Ipv4Addr,
}

impl ChaosWorld {
    /// Builds the standard small world every scenario runs in.
    pub fn build(seed: u64) -> ChaosWorld {
        let mut net = Internet::generate(InternetConfig::tiny(seed));
        let sites = deployment_universe(seed, 12);
        let cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(seed));
        let map = MappingSystem::build(
            &mut net,
            &cdn,
            &catalog,
            "cdn.example".parse().expect("static zone name"),
            MappingConfig {
                policy: MappingPolicy::end_user_default(),
                max_ping_targets: 40,
                ..MappingConfig::default()
            },
        );
        let top_ip = map.top_level_ip();
        ChaosWorld {
            net,
            cdn,
            catalog,
            map,
            top_ip,
        }
    }

    /// The cluster the outage scenario kills: the one carrying the
    /// most client demand through the end-user assignment for the
    /// hottest domain's class — the site whose loss reassigns the
    /// most catchment.
    fn victim_cluster(&self) -> ClusterId {
        let class = self
            .catalog
            .domains
            .iter()
            .max_by(|a, b| a.popularity.total_cmp(&b.popularity))
            .expect("catalog is never empty")
            .class;
        let mut votes: HashMap<ClusterId, f64> = HashMap::new();
        for b in &self.net.blocks {
            if let Some(c) = self.map.assigned_cluster_for_block_class(b.prefix, class) {
                *votes.entry(c).or_default() += b.demand;
            }
        }
        votes
            .into_iter()
            .max_by(|(ac, an), (bc, bn)| an.total_cmp(bn).then(bc.index().cmp(&ac.index())))
            .map(|(c, _)| c)
            .unwrap_or(ClusterId(0))
    }
}

/// Runs `scenario` through both arms against `world` and reports the
/// A/B outcome. The world is returned unchanged: event mutations
/// (site outages) are reverted after each arm.
pub fn run_ab(world: &mut ChaosWorld, scenario: &ChaosScenario) -> AbReport {
    let schedule = scenario.schedule(&world.net, &world.catalog);
    let cost_off_ns = calibrate(world, scenario, &Defenses::off());
    let cost_on_ns = calibrate(world, scenario, &Defenses::on());
    // Offered interval midway between the two measured service rates
    // for the cache-busting flood — the one scenario whose defense
    // changes per-query cost (shedding beats computing). The midpoint
    // cannot manufacture a gap: were shedding no cheaper, both arms
    // would saturate identically and the ratio would read ~1. Every
    // other scenario parks the interval above the slower cost so
    // neither arm saturates and the contrast is answer quality, not a
    // queue.
    let interval_ns = if scenario.attack == Some(AttackGenKind::NxFlood) {
        (cost_on_ns + cost_off_ns) / 2
    } else {
        cost_off_ns.max(cost_on_ns) * 2
    }
    .max(200);
    let off = run_arm(world, scenario, &schedule, &Defenses::off(), interval_ns);
    let on = run_arm(world, scenario, &schedule, &Defenses::on(), interval_ns);
    AbReport {
        scenario: scenario.name.to_string(),
        seed: scenario.seed,
        interval_ns,
        deadline_ns: scenario.deadline_intervals * interval_ns,
        cost_off_ns,
        cost_on_ns,
        off,
        on,
    }
}

/// Times a short closed-loop batch of the scenario's mix against a
/// throwaway server in `defenses` configuration; returns mean ns per
/// resolution. For the NXDOMAIN flood the defended probe uses a
/// zero-rate bucket (pure shed price) — a sustained flood's steady
/// state is mostly-shedding, and the opening burst would mask it —
/// and the timing is two-phase: an untimed pass warms every cache the
/// legitimate mix touches, then a second batch (fresh flood names,
/// same legit names) is timed, so the estimate is the warm-legit /
/// cold-attack steady state the run actually spends its windows in.
/// Every other shape probes with the real admission config on a
/// single cold batch: crowds, scans and event scenarios are judged at
/// an interval with headroom, and the cold-biased estimate *is* the
/// headroom.
fn calibrate(world: &ChaosWorld, scenario: &ChaosScenario, defenses: &Defenses) -> u64 {
    let flood = scenario.attack == Some(AttackGenKind::NxFlood);
    let registry = Arc::new(Registry::new());
    let (transports, connector) = channel_transports(1);
    let mut cfg =
        ServerConfig::new(world.top_ip).with_telemetry(TelemetryConfig::metrics(registry.clone()));
    if let Some(adm) = &defenses.admission {
        cfg = cfg.with_admission(if flood {
            AdmissionConfig::new(0, 1)
        } else {
            adm.clone()
        });
    }
    let server = AuthServer::spawn(
        transports,
        SnapshotHandle::new(world.map.clone_for_publish()),
        cfg,
    );
    let mut client = ChannelClient::new(connector);
    let epoch = Instant::now();
    let mut resolvers = build_resolvers(world, scenario, epoch);
    // Warm the hot name through one resolver so the legit share of the
    // mix is cache-priced, as it is mid-run.
    let hot = hottest(&world.catalog);
    let warm_client = world.net.blocks[0].client_ip();
    resolvers[0].resolve(&mut client, 0, world.top_ip, &hot, warm_client, epoch);
    if flood {
        // Two windows' worth of warm-up: a sustained flood's cost is
        // dominated by operating over caches already swollen with
        // thousands of one-shot entries, and the estimate must be
        // taken from that regime, not from a fresh-table honeymoon.
        let warm = scenario.calibration_batch(&world.net, &world.catalog, 2_400, 0);
        for (i, q) in warm.iter().enumerate() {
            let now = epoch + Duration::from_nanos(i as u64);
            resolvers[q.resolver].resolve(&mut client, 0, world.top_ip, &q.qname, q.client, now);
        }
    }
    let timed = if flood { 1_200 } else { CALIBRATION_QUERIES };
    let batch = scenario.calibration_batch(&world.net, &world.catalog, timed, 1);
    // Timed in chunks, keeping the median chunk: one multi-ms scheduler
    // preemption landing inside the batch would drag a whole-batch mean
    // microseconds off the true cost and park the offered interval on
    // the wrong side of an arm's real service rate. The chunk is large
    // enough that each sees the scenario's attack/legit mix.
    const CHUNK: usize = 100;
    let mut per_chunk = Vec::with_capacity(batch.len() / CHUNK + 1);
    let mut i = 0u64;
    for chunk in batch.chunks(CHUNK) {
        let t0 = Instant::now();
        for q in chunk {
            let now = epoch + Duration::from_nanos(i);
            i += 1;
            resolvers[q.resolver].resolve(&mut client, 0, world.top_ip, &q.qname, q.client, now);
        }
        per_chunk.push(t0.elapsed().as_nanos() as u64 / chunk.len().max(1) as u64);
    }
    per_chunk.sort_unstable();
    let median = per_chunk[per_chunk.len() / 2].max(100);
    drop(client);
    server.stop_join();
    median
}

/// Per-resolver `Ldns` instances for one arm, cache geometry and ECS
/// start policy per the scenario.
fn build_resolvers(world: &ChaosWorld, scenario: &ChaosScenario, epoch: Instant) -> Vec<Ldns> {
    world
        .net
        .resolvers
        .iter()
        .map(|r| {
            let policy = if scenario.ecs_at_start {
                EcsPolicy::Always
            } else {
                EcsPolicy::Off
            };
            let mut cfg = LdnsConfig::new(r.ip, policy);
            cfg.cache = scenario.ldns_cache;
            Ldns::new(cfg, epoch)
        })
        .collect()
}

/// Replays `schedule` against a freshly spawned arm and collects
/// per-window statistics.
fn run_arm(
    world: &mut ChaosWorld,
    scenario: &ChaosScenario,
    schedule: &[Vec<ChaosQuery>],
    defenses: &Defenses,
    interval_ns: u64,
) -> ArmReport {
    let registry = Arc::new(Registry::new());
    let (transports, connector) = channel_transports(1);
    let mut cfg =
        ServerConfig::new(world.top_ip).with_telemetry(TelemetryConfig::metrics(registry.clone()));
    if let Some(adm) = &defenses.admission {
        cfg = cfg.with_admission(adm.clone());
    }
    let handle = SnapshotHandle::new(world.map.clone_for_publish());
    let server = AuthServer::spawn(transports, handle.clone(), cfg);
    let mut client = ChannelClient::new(connector);
    let epoch = Instant::now();
    let mut resolvers = build_resolvers(world, scenario, epoch);

    let shed_counter = registry.counter("eum_authd_shed_total", "", &[("shard", "0")]);
    let admitted_counter = registry.counter("eum_authd_admitted_total", "", &[("shard", "0")]);
    let deadline_ns = scenario.deadline_intervals * interval_ns;
    let span_ns = scenario.queries_per_window as u64 * interval_ns;

    let mut outage: Option<ClusterId> = None;
    let mut lane_free_ns;
    let mut shed_prev = 0u64;
    let mut admitted_prev = 0u64;
    let mut windows = Vec::with_capacity(schedule.len());

    for (w, batch) in schedule.iter().enumerate() {
        let window_start_ns = w as u64 * span_ns;
        // Each window is an independent offered epoch: backlog does
        // not carry across the inter-window gap, so a cold warm-up
        // window cannot poison every later measurement — saturation
        // must re-prove itself inside each window it claims.
        lane_free_ns = window_start_ns;
        if let Some((at, event)) = scenario.event {
            if at == w {
                let now = epoch + Duration::from_nanos(window_start_ns);
                match event {
                    ScheduledEvent::SiteOutage => {
                        let victim = world.victim_cluster();
                        world.cdn.set_cluster_alive(victim, false);
                        outage = Some(victim);
                        if defenses.republish_on_outage {
                            // Incremental republication with a keyed
                            // delta: only answers the dead site could
                            // have touched are invalidated, so the
                            // refill surge stays inside the admission
                            // burst instead of re-computing the whole
                            // warm cache.
                            let delta = world.map.rebuild_incremental(
                                &world.net,
                                &world.cdn,
                                &RescoreHints::default(),
                            );
                            handle.publish_delta(world.map.clone_for_publish(), delta);
                        }
                        // Low CDN TTLs mean cached answers for the dead
                        // site drain fast; model that expiry in both
                        // arms so the contrast is the *map*, not TTLs.
                        for l in &mut resolvers {
                            l.flush_cache(now);
                        }
                    }
                    ScheduledEvent::EcsFlipAll => {
                        for l in &mut resolvers {
                            l.set_policy(EcsPolicy::Always);
                            l.flush_cache(now);
                        }
                    }
                }
            }
        }

        let mut stats = WindowStats::new(w);
        let mut legit_lat_ns: Vec<u64> = Vec::with_capacity(batch.len());
        for (slot, q) in batch.iter().enumerate() {
            let arrival_ns = window_start_ns + slot as u64 * interval_ns;
            let start_ns = arrival_ns.max(lane_free_ns);
            let now = epoch + Duration::from_nanos(start_ns);
            let t0 = Instant::now();
            let res = resolvers[q.resolver].resolve(
                &mut client,
                0,
                world.top_ip,
                &q.qname,
                q.client,
                now,
            );
            let svc_ns = t0.elapsed().as_nanos() as u64;
            lane_free_ns = start_ns + svc_ns;
            let lat_ns = lane_free_ns - arrival_ns;
            let answered = res.rcode == Rcode::NoError && !res.ips.is_empty();
            if q.attack {
                stats.attack_offered += 1;
                if answered || res.rcode == Rcode::NxDomain {
                    stats.attack_answered += 1;
                } else {
                    stats.attack_failed += 1;
                }
            } else {
                stats.legit_offered += 1;
                legit_lat_ns.push(lat_ns);
                let healthy = answered && healthy_answer(&world.cdn, &res.ips);
                if healthy && lat_ns <= deadline_ns {
                    stats.legit_ok += 1;
                } else if healthy {
                    stats.legit_late += 1;
                } else if answered {
                    stats.legit_unhealthy += 1;
                } else {
                    stats.legit_failed += 1;
                }
            }
        }

        let shed_now = shed_counter.get();
        let admitted_now = admitted_counter.get();
        stats.shed = shed_now - shed_prev;
        stats.admitted = admitted_now - admitted_prev;
        shed_prev = shed_now;
        admitted_prev = admitted_now;
        stats.finish(&legit_lat_ns, span_ns);
        windows.push(stats);
    }

    drop(client);
    server.stop_join();
    if let Some(victim) = outage {
        world.cdn.set_cluster_alive(victim, true);
        if defenses.republish_on_outage {
            // The defended arm rebuilt the control-plane map against
            // the dead site; fold the revival back in so the next arm
            // (or scenario) starts from the all-healthy map.
            world
                .map
                .rebuild_incremental(&world.net, &world.cdn, &RescoreHints::default());
        }
    }
    ArmReport::aggregate(
        defenses.admission.is_some(),
        windows,
        scenario.impact_range(),
    )
}

/// True when the answer's primary IP belongs to a live server — the
/// client can actually fetch from it.
fn healthy_answer(cdn: &CdnPlatform, ips: &[Ipv4Addr]) -> bool {
    ips.first()
        .and_then(|ip| cdn.server_by_ip(*ip))
        .map(|sid| cdn.server(sid).alive)
        .unwrap_or(false)
}
