//! §3 figures: clients and their name servers (Figures 5–11) and the
//! §5.1 mapping-unit analyses (Figures 21–22).

use crate::{f, header, Scale, World3};
use eum_geo::Country;
use eum_mapping::{client_clusters, MapUnits};
use eum_stats::{Cdf, Histogram, LogBins, Table, WeightedSample};

/// Figure 5: histogram of client–LDNS distance (% of client demand).
pub fn fig05(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 5",
        "Histogram of client-LDNS distance for clients across the global Internet.",
        scale,
    );
    let sample = w.ds.distance_sample(&w.net, |_, _| true);
    out.push_str(&distance_histogram(&sample));
    let mut s = sample.clone();
    out.push_str(&format!(
        "\nclients: {} /24 blocks, {} LDNSes; demand-weighted median distance: {} miles\n",
        w.ds.block_count(),
        w.ds.ldns_count(),
        f(s.median().unwrap_or(f64::NAN)),
    ));
    out.push_str("paper: ~half of demand within metro distance; bumps at ~250 mi and ~5000 mi; median 162 mi\n");
    out
}

/// Figure 6: client–LDNS distance box plots by country (all clients).
pub fn fig06(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 6",
        "Client-LDNS distances by country (5/25/50/75/95th percentiles).",
        scale,
    );
    out.push_str(&country_boxplot_table(w, false));
    out.push_str(
        "paper: IN/TR/VN/MX medians >1000 mi; KR/TW smallest; JP small median, long tail\n",
    );
    out
}

/// Figure 7: distance histogram for clients of public resolvers.
pub fn fig07(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 7",
        "Histogram of the client-LDNS distance for clients who use public resolvers.",
        scale,
    );
    let sample =
        w.ds.distance_sample(&w.net, |n, r| n.is_public_resolver(r.ldns));
    out.push_str(&distance_histogram(&sample));
    let mut s = sample.clone();
    let mut all = w.ds.distance_sample(&w.net, |_, _| true);
    out.push_str(&format!(
        "\npublic-resolver median: {} miles vs overall {} miles\n",
        f(s.median().unwrap_or(f64::NAN)),
        f(all.median().unwrap_or(f64::NAN)),
    ));
    out.push_str("paper: public median 1028 mi vs 162 mi overall\n");
    out
}

/// Figure 8: per-country box plots for public-resolver clients.
pub fn fig08(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 8",
        "Client-LDNS distance for clients who use public resolvers.",
        scale,
    );
    out.push_str(&country_boxplot_table(w, true));
    out.push_str("paper: AR/BR largest (no public-resolver presence in South America); SG/MY partially rerouted by peering; Western Europe / HK / TW relatively close\n");
    out
}

/// Figure 9: percent of client demand from public resolvers by country,
/// plus the §4.5 adoption extrapolation.
pub fn fig09(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 9",
        "Percent of client demand originating from public resolvers, by country.",
        scale,
    );
    let mut rows = w.ds.public_demand_percent_by_country(&w.net);
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut t = Table::new(["country", "% public demand"]);
    for (c, pct) in rows
        .iter()
        .filter(|(c, _)| Country::paper_top25().contains(c))
    {
        t.row([c.code().to_string(), f(*pct)]);
    }
    out.push_str(&t.render());
    let total_public = 100.0
        * w.ds
            .records
            .iter()
            .filter(|r| w.net.is_public_resolver(r.ldns))
            .map(|r| r.weight)
            .sum::<f64>()
        / w.ds.total_weight();
    out.push_str(&format!(
        "\nworldwide public-resolver demand share: {}%\n",
        f(total_public)
    ));
    out.push_str("paper: VN and TR heaviest; ~8% worldwide\n\n");

    // §4.5: the adoption case for ISPs, computed over non-public pairs.
    let non_public_total: f64 =
        w.ds.records
            .iter()
            .filter(|r| !w.net.is_public_resolver(r.ldns))
            .map(|r| r.weight)
            .sum();
    let share = |lo: f64, hi: f64| -> f64 {
        100.0
            * w.ds
                .records
                .iter()
                .filter(|r| !w.net.is_public_resolver(r.ldns))
                .filter(|r| r.distance_miles >= lo && r.distance_miles < hi)
                .map(|r| r.weight)
                .sum::<f64>()
            / non_public_total
    };
    out.push_str("§4.5 extrapolation (non-public demand by client-LDNS distance):\n");
    out.push_str(&format!(
        "  >= 1000 miles: {}% (paper: 6.2%)\n",
        f(share(1000.0, f64::INFINITY))
    ));
    out.push_str(&format!(
        "  500-1000 miles: {}% (paper: 5.3%)\n",
        f(share(500.0, 1000.0))
    ));
    out.push_str(&format!(
        "  < 100 miles (little benefit): {}% (paper: ~54% with local LDNS)\n",
        f(share(0.0, 100.0))
    ));
    out
}

/// Figure 10: median client–LDNS distance vs AS size.
pub fn fig10(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 10",
        "Client-LDNS distance as a function of AS size (share of total demand).",
        scale,
    );
    let rows = w.ds.distance_by_as_size(&w.net);
    let mut t = Table::new(["AS size bucket", "median miles", "ASes"]);
    for (exp, median, n) in &rows {
        t.row([format!("2^{exp}"), f(*median), n.to_string()]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper: small ASes (who outsource DNS) show much larger distances than large ISPs\n",
    );
    out
}

/// Figure 11: CDFs of cluster radius and mean client–LDNS distance, for
/// all LDNSes and for public resolvers.
pub fn fig11(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 11",
        "CDFs of mean client-LDNS distance and cluster radius, all LDNSes vs public resolvers.",
        scale,
    );
    let clusters = client_clusters(&w.net);
    let build = |public: Option<bool>, radius: bool| -> Option<Cdf> {
        let sample: WeightedSample = clusters
            .iter()
            .filter(|c| match public {
                Some(p) => w.net.is_public_resolver(c.ldns) == p,
                None => true,
            })
            .map(|c| {
                (
                    if radius {
                        c.radius
                    } else {
                        c.mean_client_ldns_miles
                    },
                    c.demand,
                )
            })
            .collect();
        Cdf::from_sample(&sample)
    };
    let series = [
        ("cluster radius (all LDNS)", build(None, true)),
        ("client-LDNS mean distance (all LDNS)", build(None, false)),
        ("cluster radius (public)", build(Some(true), true)),
        (
            "client-LDNS mean distance (public)",
            build(Some(true), false),
        ),
    ];
    let mut t = Table::new([
        "percentile",
        "radius all",
        "dist all",
        "radius public",
        "dist public",
    ]);
    for q in [0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
        let cells: Vec<String> = series
            .iter()
            .map(|(_, c)| {
                c.as_ref()
                    .map(|c| f(c.value_at(q)))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        t.row([
            format!("p{:02.0}", q * 100.0),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: 99% of public demand comes from clusters with radius 470-3800 mi; public cluster-LDNS distance exceeds the radius (LDNS off-center)\n");
    out
}

/// Figure 21: cumulative demand coverage vs number of top units (LDNS vs
/// /24 client blocks), plus the §5.1 coverage counts.
pub fn fig21(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 21",
        "Number of /24 client IP blocks or LDNSes that produce a given percent of total demand.",
        scale,
    );
    let ldns = MapUnits::ldns_units(&w.net);
    let blocks = MapUnits::block_units(&w.net, 24, false);
    let mut t = Table::new(["% of demand", "top LDNSes", "top /24 blocks"]);
    for pct in [10, 25, 50, 75, 90, 95, 99] {
        t.row([
            format!("{pct}%"),
            ldns.units_for_demand_fraction(pct as f64 / 100.0)
                .to_string(),
            blocks
                .units_for_demand_fraction(pct as f64 / 100.0)
                .to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ntotals: {} LDNSes, {} /24 blocks with non-zero demand (paper: 584K and 3.76M)\n",
        ldns.len(),
        blocks.len()
    ));
    out.push_str(
        "paper: 95% coverage needs 25K LDNSes but 2.2M /24 blocks; 50% needs 1.8K vs 430K\n",
    );
    out
}

/// Figure 22: (a) cluster-radius CDF per /x prefix length and (b) the
/// number of units per prefix length, with BGP aggregation.
pub fn fig22(w: &World3, scale: Scale) -> String {
    let mut out = header(
        "Figure 22",
        "Unit-count vs accuracy tradeoff across /x mapping-unit granularities.",
        scale,
    );
    let lens: [u8; 9] = [8, 10, 12, 14, 16, 18, 20, 22, 24];
    // (a) percent of demand in units with radius <= threshold.
    let mut ta = Table::new([
        "prefix",
        "units",
        "p50 radius",
        "p90 radius",
        "% demand radius<=100mi",
    ]);
    let mut counts: Vec<(u8, usize, usize)> = Vec::new();
    for len in lens {
        let units = MapUnits::block_units(&w.net, len, false);
        let agg = MapUnits::block_units(&w.net, len, true);
        let sample: WeightedSample = units.units.iter().map(|u| (u.radius, u.demand)).collect();
        let cdf = Cdf::from_sample(&sample).expect("non-empty");
        ta.row([
            format!("/{len}"),
            units.len().to_string(),
            f(cdf.value_at(0.5)),
            f(cdf.value_at(0.9)),
            f(cdf.percent_at(100.0)),
        ]);
        counts.push((len, units.len(), agg.len()));
    }
    out.push_str("(a) cluster radius per prefix length (demand-weighted):\n");
    out.push_str(&ta.render());
    out.push_str("\n(b) number of units (plain vs BGP-aggregated):\n");
    let mut tb = Table::new(["prefix", "units", "after BGP aggregation"]);
    for (len, plain, agg) in counts {
        tb.row([format!("/{len}"), plain.to_string(), agg.to_string()]);
    }
    out.push_str(&tb.render());
    out.push_str(&format!(
        "\nBGP table: {} announced CIDRs (paper: 517K CIDRs reduce 3.76M /24s to 444K units)\n",
        w.net.bgp.len()
    ));
    out.push_str("paper: /20 is a worthy option — 3x fewer units than /24 with 87.3% of clusters under 100 mi radius\n");
    out
}

fn distance_histogram(sample: &WeightedSample) -> String {
    let mut h = Histogram::log(LogBins::paper_distance_miles());
    for (v, w) in sample.pairs() {
        h.add(*v, *w);
    }
    let mut t = Table::new(["distance (miles)", "% of demand", "bar"]);
    for bar in h.bars() {
        let blocks = "#".repeat((bar.percent.round() as usize).min(60));
        t.row([
            format!("{:.0}-{:.0}", bar.lo, bar.hi),
            f(bar.percent),
            blocks,
        ]);
    }
    t.render()
}

fn country_boxplot_table(w: &World3, public_only: bool) -> String {
    let mut rows =
        w.ds.country_boxplots(&w.net, Country::paper_top25(), public_only);
    rows.sort_by(|a, b| b.1.p50.partial_cmp(&a.1.p50).expect("finite"));
    let mut t = Table::new(["country", "p5", "p25", "p50", "p75", "p95"]);
    for (c, b) in rows {
        t.row([
            c.code().to_string(),
            f(b.p5),
            f(b.p25),
            f(b.p50),
            f(b.p75),
            f(b.p95),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_world3;

    fn world() -> World3 {
        // Quick scale keeps these smoke tests fast.
        build_world3(Scale::Quick)
    }

    #[test]
    fn section3_figures_render_nonempty() {
        let w = world();
        for (name, s) in [
            ("fig05", fig05(&w, Scale::Quick)),
            ("fig06", fig06(&w, Scale::Quick)),
            ("fig07", fig07(&w, Scale::Quick)),
            ("fig08", fig08(&w, Scale::Quick)),
            ("fig09", fig09(&w, Scale::Quick)),
            ("fig10", fig10(&w, Scale::Quick)),
            ("fig11", fig11(&w, Scale::Quick)),
            ("fig21", fig21(&w, Scale::Quick)),
            ("fig22", fig22(&w, Scale::Quick)),
        ] {
            assert!(s.lines().count() > 6, "{name} output too short:\n{s}");
            assert!(
                s.contains("paper:"),
                "{name} lacks the paper reference line"
            );
        }
    }

    #[test]
    fn fig22_unit_counts_decrease_with_coarser_prefixes() {
        let w = world();
        let s = fig22(&w, Scale::Quick);
        // The (b) table should show /8 producing fewer units than /24.
        assert!(s.contains("/8") && s.contains("/24"));
    }
}
