//! Reproduces Figure 12 of the paper. Pass `--quick` for a smaller world.

use eum_repro::{figures4, rollout_report, Scale};

fn main() {
    let scale = Scale::from_args();
    let r = rollout_report(scale);
    print!("{}", figures4::fig12(&r, scale));
}
