//! Equivalence proof for the incremental rebuild path.
//!
//! The whole delta-publication design rests on one claim: an incremental
//! rebuild produces *exactly* the map a from-scratch rebuild would — not
//! an approximately-as-good stable allocation, the identical one — while
//! the published delta covers every unit whose answer moved. This suite
//! attacks the claim at both layers:
//!
//! * solver level — random capacity/liveness perturbations over a fixed
//!   world: [`assign`] (fresh preference sorts) versus
//!   [`assign_with_prefs`] (the cached table the incremental path
//!   reuses) must agree bit for bit, and the result must admit no
//!   blocking pair;
//! * system level — seeded churn sequences (liveness flips, capacity
//!   edits, hinted measurement drift) replayed through
//!   [`MappingSystem::rebuild_incremental`], each step compared against
//!   a from-scratch rebuild of an identical clone, with every changed
//!   answer checked for delta coverage.

use eum_cdn::{
    deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig, TrafficClass,
};
use eum_mapping::{
    assign, assign_with_prefs, find_blocking_pair, LbAlgorithm, MapUnits, MappingConfig,
    MappingPolicy, MappingSystem, PingMatrix, PingTargets, PreferenceTable, RescoreHints,
    ScoreBasis, ScoreTable, ScoringWeights,
};
use eum_netmodel::{Endpoint, Internet, InternetConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

// ---------------------------------------------------------------- solver

/// The fixed scoring world the solver proptests perturb: LDNS units
/// scored against 8 synthetic cluster endpoints, preferences cached once
/// exactly as the incremental rebuild caches them across generations.
struct SolverFixture {
    units: MapUnits,
    /// The same partition with every demand forced to 1.0: classic
    /// stability (no blocking pair at all) is only guaranteed for equal
    /// demands; heterogeneous demands are stable up to one fractional
    /// unit per cluster (see `stable_allocation`'s doc).
    unit_demand_units: MapUnits,
    scores: ScoreTable,
    prefs: PreferenceTable,
    n_clusters: usize,
    total_demand: f64,
}

fn solver_fixture() -> &'static SolverFixture {
    static FIXTURE: OnceLock<SolverFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let net = Internet::generate(InternetConfig::tiny(0x1E0));
        let units = MapUnits::ldns_units(&net);
        let clusters: Vec<Endpoint> = net.resolvers.iter().take(8).map(|r| r.endpoint()).collect();
        let targets = PingTargets::select(&net, 30, 150.0);
        let matrix = PingMatrix::measure(&net, &clusters, &targets);
        let vantages: Vec<Endpoint> = units
            .units
            .iter()
            .map(|u| match u.key {
                eum_mapping::UnitKey::Ldns(r) => net.resolver(r).endpoint(),
                eum_mapping::UnitKey::Block(_) => unreachable!("ldns_units yields Ldns keys"),
            })
            .collect();
        let scores = ScoreTable::build(
            &net,
            &units,
            &vantages,
            &clusters,
            &targets,
            &matrix,
            ScoringWeights::default(),
            ScoreBasis::UnitVantage,
            50,
        );
        let prefs = PreferenceTable::build(&scores);
        let total_demand = units.total_demand();
        let n_clusters = clusters.len();
        let mut unit_demand_units = units.clone();
        for u in &mut unit_demand_units.units {
            u.demand = 1.0;
        }
        SolverFixture {
            units,
            unit_demand_units,
            scores,
            prefs,
            n_clusters,
            total_demand,
        }
    })
}

proptest! {
    /// Random capacity scales and liveness masks: the solver run over the
    /// cached preference table (the incremental path) must produce the
    /// bit-identical assignment a fresh [`assign`] (which re-sorts every
    /// preference row) produces.
    #[test]
    fn cached_preferences_match_fresh_assignment(
        cap_factors in proptest::collection::vec(0.02f64..1.5, 8),
        dead_mask in 0u8..=0b0111_1111,
    ) {
        let f = solver_fixture();
        let capacity: Vec<f64> = cap_factors
            .iter()
            .map(|x| f.total_demand * x)
            .collect();
        // At least one cluster always stays usable (the mask spares #7).
        let usable: Vec<bool> = (0..f.n_clusters)
            .map(|c| c >= 8 || dead_mask & (1 << c) == 0)
            .collect();

        let fresh = assign(LbAlgorithm::Stable, &f.units, &f.scores, &capacity, &usable);
        let cached = assign_with_prefs(
            LbAlgorithm::Stable,
            &f.units,
            &f.scores,
            &f.prefs,
            &capacity,
            &usable,
        );
        prop_assert_eq!(&fresh.cluster_of, &cached.cluster_of);
        prop_assert_eq!(&fresh.load, &cached.load);
    }

    /// Whatever the perturbation, the converged allocation admits no
    /// blocking pair: no unit strictly prefers a cluster that would take
    /// it. Two deliberate restrictions pin the regime where *exact*
    /// stability is the theorem: demands are forced equal (classic
    /// hospital/residents; heterogeneous demands relax stability by one
    /// fractional unit per cluster) and usable slots always cover the
    /// unit count (otherwise the never-refuse-service overflow pass
    /// seats units over capacity, which is a deliberate stability
    /// violation).
    #[test]
    fn converged_allocation_has_no_blocking_pair(
        slot_factors in proptest::collection::vec(1.0f64..2.5, 8),
        dead_mask in 0u8..=0b0011_1111,
    ) {
        let f = solver_fixture();
        let usable: Vec<bool> = (0..f.n_clusters)
            .map(|c| c >= 6 || dead_mask & (1 << c) == 0)
            .collect();
        let n_usable = usable.iter().filter(|u| **u).count();
        let per_cluster = f.unit_demand_units.len() as f64 / n_usable as f64;
        let capacity: Vec<f64> = slot_factors
            .iter()
            .map(|x| (per_cluster * x).ceil())
            .collect();
        let got = assign_with_prefs(
            LbAlgorithm::Stable,
            &f.unit_demand_units,
            &f.scores,
            &f.prefs,
            &capacity,
            &usable,
        );
        let pair = find_blocking_pair(&f.unit_demand_units, &f.scores, &capacity, &usable, &got);
        prop_assert!(pair.is_none(), "blocking pair after convergence: {:?}", pair);
    }
}

// ---------------------------------------------------------------- system

fn churn_world(seed: u64) -> (Internet, CdnPlatform, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(seed));
    let sites = deployment_universe(seed, 12);
    let cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(seed));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            policy: MappingPolicy::end_user_default(),
            max_ping_targets: 40,
            ..MappingConfig::default()
        },
    );
    (net, cdn, map)
}

/// Every externally observable routing decision: all classes for every
/// client block and every resolver.
fn all_assignments(net: &Internet, map: &MappingSystem) -> Vec<Option<eum_cdn::ClusterId>> {
    let mut out = Vec::new();
    for class in TrafficClass::ALL {
        for b in &net.blocks {
            out.push(map.assigned_cluster_for_block_class(b.prefix, class));
        }
        for r in &net.resolvers {
            out.push(map.assigned_cluster_for_ldns_class(r.ip, class));
        }
    }
    out
}

/// xorshift64* — deterministic churn without pulling in a rand dependency
/// for the test.
fn next(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *rng = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[test]
fn seeded_churn_sequences_match_full_rebuild_and_deltas_cover_changes() {
    for seed in [0xC0FFEE_u64, 0xBEEF, 0x5EED5] {
        let (mut net, mut cdn, mut map) = churn_world(seed);
        let mut rng = seed | 1;
        let mut keyed_steps = 0;

        for step in 0..8 {
            // One churn event per step, seeded: liveness flips, capacity
            // edits, or measurement drift on a hinted unit.
            let mut hints = RescoreHints::default();
            match next(&mut rng) % 3 {
                0 => {
                    let i = (next(&mut rng) as usize) % cdn.clusters.len();
                    let id = cdn.clusters[i].id;
                    let alive = cdn.clusters[i].alive;
                    cdn.set_cluster_alive(id, !alive);
                }
                1 => {
                    let i = (next(&mut rng) as usize) % cdn.clusters.len();
                    let factor = 0.25 + (next(&mut rng) % 100) as f64 / 50.0;
                    cdn.clusters[i].capacity = net.total_demand() * factor;
                }
                _ => {
                    let i = (next(&mut rng) as usize) % net.blocks.len();
                    net.blocks[i].access_ms *= 1.5;
                    let client = net.blocks[i].client_ip();
                    if let Some(u) = map
                        .eu_units()
                        .and_then(|units| units.unit_for_client(client))
                    {
                        hints.eu.push(u);
                    }
                    if let Some(u) = map.ns_units().unit_for_block24(net.blocks[i].prefix) {
                        hints.ns.push(u);
                    }
                }
            }

            let before = all_assignments(&net, &map);
            let delta = map.rebuild_incremental(&net, &cdn, &hints);
            if !delta.is_full() {
                keyed_steps += 1;
            }

            // The reference: an identical publish clone rebuilt from
            // scratch against the same churned world.
            let mut reference = map.clone_for_publish();
            reference.rebuild(&net, &cdn);
            let incremental = all_assignments(&net, &map);
            let full = all_assignments(&net, &reference);
            assert_eq!(
                incremental, full,
                "seed {seed:#x} step {step}: incremental diverged from full rebuild"
            );

            // Delta soundness: every moved answer is covered.
            for (i, b) in net.blocks.iter().enumerate() {
                if before[i] != incremental[i] {
                    assert!(
                        delta.affects_scoped(b.prefix.truncate(24)),
                        "seed {seed:#x} step {step}: moved block {} not in delta",
                        b.prefix
                    );
                }
            }
            let r0 = net.blocks.len();
            for (j, r) in net.resolvers.iter().enumerate() {
                if before[r0 + j] != incremental[r0 + j] {
                    assert!(
                        delta.affects_resolver(r.ip),
                        "seed {seed:#x} step {step}: moved resolver {} not in delta",
                        r.ip
                    );
                }
            }
        }
        // The sequences must actually exercise the incremental path, not
        // just fall back to full rebuilds.
        assert!(
            keyed_steps >= 4,
            "seed {seed:#x}: only {keyed_steps}/8 steps stayed keyed"
        );
    }
}
