//! Authoritative name-server traits and a static-zone implementation.
//!
//! The mapping system (crate `eum-mapping`) implements [`Authority`] with
//! its dynamic, load-balanced answers; [`StaticAuthority`] serves fixed
//! zones — used for content providers' own DNS (the CNAME into the CDN
//! domain, §2.2 "a content provider hosted on Akamai can CNAME their
//! domain to an Akamai domain") and for tests.

use crate::edns::{EcsOption, OptData};
use crate::message::{Message, Question, RData, Rcode, Record, RrType};
use crate::name::DnsName;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Context the network layer supplies with each authoritative query.
#[derive(Debug, Clone, Copy)]
pub struct QueryContext {
    /// Unicast IP of the recursive resolver that sent the query (what the
    /// paper's NS-based mapping keys on).
    pub resolver_ip: Ipv4Addr,
    /// Simulation time in milliseconds.
    pub now_ms: u64,
}

/// An authoritative name server: maps a query message to a response.
///
/// Implementations must honor ECS semantics: if the query carries an ECS
/// option and the server uses it, the response must echo it with a scope;
/// if the server ignores client subnets it must omit the option or return
/// scope 0 (RFC 7871 §7.2.1 / §7.1.3).
pub trait Authority {
    /// Answers one query.
    fn handle(&self, query: &Message, ctx: &QueryContext) -> Message;
}

/// A static zone: fixed records, fixed delegations, optional ECS echo with
/// scope 0 (static content is client-independent).
#[derive(Debug, Clone, Default)]
pub struct StaticAuthority {
    records: HashMap<(DnsName, RrType), Vec<Record>>,
    /// Delegated child zones: zone apex → (NS records, glue A records).
    delegations: HashMap<DnsName, (Vec<Record>, Vec<Record>)>,
}

impl StaticAuthority {
    /// Creates an empty authority.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record.
    pub fn add(&mut self, record: Record) -> &mut Self {
        self.records
            .entry((record.name.clone(), record.rtype()))
            .or_default()
            .push(record);
        self
    }

    /// Delegates `zone` to a name server with glue.
    pub fn delegate(
        &mut self,
        zone: DnsName,
        ns_name: DnsName,
        ns_ip: Ipv4Addr,
        ttl: u32,
    ) -> &mut Self {
        let ns = Record::ns(zone.clone(), ttl, ns_name.clone());
        let glue = Record::a(ns_name, ttl, ns_ip);
        let entry = self
            .delegations
            .entry(zone)
            .or_insert_with(|| (vec![], vec![]));
        entry.0.push(ns);
        entry.1.push(glue);
        self
    }

    fn answer_question(&self, q: &Question, response: &mut Message) {
        // Exact data?
        let mut current = q.name.clone();
        for _ in 0..8 {
            if let Some(recs) = self.records.get(&(current.clone(), q.rtype)) {
                response.answers.extend(recs.iter().cloned());
                return;
            }
            // CNAME chase within our own data.
            if q.rtype != RrType::Cname {
                if let Some(cnames) = self.records.get(&(current.clone(), RrType::Cname)) {
                    response.answers.extend(cnames.iter().cloned());
                    if let Some(Record {
                        rdata: RData::Cname(target),
                        ..
                    }) = cnames.first()
                    {
                        current = target.clone();
                        continue;
                    }
                }
            }
            break;
        }
        // Delegation?
        for (zone, (ns, glue)) in &self.delegations {
            if q.name.is_within(zone) {
                response.flags.aa = false;
                response.authorities.extend(ns.iter().cloned());
                response.additionals.extend(glue.iter().cloned());
                return;
            }
        }
        if response.answers.is_empty() {
            response.flags.rcode = Rcode::NxDomain;
        }
    }
}

impl Authority for StaticAuthority {
    fn handle(&self, query: &Message, _ctx: &QueryContext) -> Message {
        let mut response = Message::response_to(query, Rcode::NoError);
        if let Some(q) = query.questions.first() {
            self.answer_question(q, &mut response);
        } else {
            response.flags.rcode = Rcode::FormErr;
        }
        // Static data does not vary by client: echo ECS with scope 0 so
        // resolvers cache the answer globally (RFC 7871 §7.2.1).
        if let Some(ecs) = query.ecs() {
            response.set_opt(OptData::with_ecs(EcsOption::response(ecs, 0)));
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    fn ctx() -> QueryContext {
        QueryContext {
            resolver_ip: "192.0.2.53".parse().unwrap(),
            now_ms: 0,
        }
    }

    fn shop_zone() -> StaticAuthority {
        let mut auth = StaticAuthority::new();
        auth.add(Record::cname(
            name("www.shop.example"),
            300,
            name("e123.cdn.example"),
        ));
        auth.add(Record::a(
            name("static.shop.example"),
            60,
            "198.51.100.7".parse().unwrap(),
        ));
        auth.delegate(
            name("img.shop.example"),
            name("ns1.img.shop.example"),
            "203.0.113.5".parse().unwrap(),
            3600,
        );
        auth
    }

    #[test]
    fn direct_a_answer() {
        let q = Message::query(1, Question::a(name("static.shop.example")), None);
        let r = shop_zone().handle(&q, &ctx());
        assert_eq!(r.flags.rcode, Rcode::NoError);
        assert_eq!(
            r.answer_ips(),
            vec!["198.51.100.7".parse::<Ipv4Addr>().unwrap()]
        );
        assert!(r.flags.aa);
    }

    #[test]
    fn cname_is_returned_for_a_query() {
        let q = Message::query(2, Question::a(name("www.shop.example")), None);
        let r = shop_zone().handle(&q, &ctx());
        assert_eq!(r.answers.len(), 1);
        assert!(matches!(&r.answers[0].rdata, RData::Cname(t) if *t == name("e123.cdn.example")));
    }

    #[test]
    fn delegation_returns_referral() {
        let q = Message::query(3, Question::a(name("x.img.shop.example")), None);
        let r = shop_zone().handle(&q, &ctx());
        assert!(r.answers.is_empty());
        assert_eq!(r.authorities.len(), 1);
        assert_eq!(r.additionals.len(), 1);
        assert!(!r.flags.aa);
        assert_eq!(r.flags.rcode, Rcode::NoError);
    }

    #[test]
    fn missing_name_is_nxdomain() {
        let q = Message::query(4, Question::a(name("nope.shop.example")), None);
        let r = shop_zone().handle(&q, &ctx());
        assert_eq!(r.flags.rcode, Rcode::NxDomain);
    }

    #[test]
    fn ecs_is_echoed_with_scope_zero() {
        let ecs = EcsOption::query("10.1.2.3".parse().unwrap(), 24);
        let q = Message::query(
            5,
            Question::a(name("static.shop.example")),
            Some(OptData::with_ecs(ecs)),
        );
        let r = shop_zone().handle(&q, &ctx());
        let back = r.ecs().unwrap();
        assert_eq!(back.scope_prefix, 0);
        assert_eq!(back.addr, ecs.addr);
        assert_eq!(back.source_prefix, 24);
    }

    #[test]
    fn empty_question_is_formerr() {
        let mut q = Message::query(6, Question::a(name("a.b")), None);
        q.questions.clear();
        let r = shop_zone().handle(&q, &ctx());
        assert_eq!(r.flags.rcode, Rcode::FormErr);
    }

    #[test]
    fn internal_cname_chain_resolves_to_a() {
        let mut auth = StaticAuthority::new();
        auth.add(Record::cname(name("a.example"), 60, name("b.example")));
        auth.add(Record::cname(name("b.example"), 60, name("c.example")));
        auth.add(Record::a(
            name("c.example"),
            60,
            "198.51.100.9".parse().unwrap(),
        ));
        let q = Message::query(7, Question::a(name("a.example")), None);
        let r = auth.handle(&q, &ctx());
        assert_eq!(r.answers.len(), 3);
        assert_eq!(
            r.answer_ips(),
            vec!["198.51.100.9".parse::<Ipv4Addr>().unwrap()]
        );
    }
}
