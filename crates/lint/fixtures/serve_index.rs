// Fixture for the serve-index rule.

fn violating(buf: &[u8]) -> u8 {
    buf[0] // line 4: fires serve-index
}

fn justified(buf: &[u8; 12]) -> u8 {
    // lint: allow(serve-index) — the array type fixes the length at 12
    buf[11]
}

fn clean(buf: &[u8]) -> u8 {
    buf.first().copied().unwrap_or(0)
}

fn not_indexing() -> [u8; 2] {
    // An array literal after `=` is not an index expression.
    let pair: [u8; 2] = [1, 2];
    pair
}
