//! Local load balancing: pick servers within the chosen cluster.
//!
//! §2.2: "Next, it assigns server(s) within the chosen cluster, a process
//! called local load balancing." Following the companion paper's
//! algorithmic account, the implementation is *consistent hashing with
//! bounded loads*: content is hashed onto a ring of server virtual nodes
//! so that the same domain lands on the same few servers (maximizing cache
//! hit rate, which the paper lists as a mapping goal — "is likely to
//! contain the requested content"), while a load cap diverts overflow to
//! the next servers on the ring.

use eum_cdn::ServerId;
use serde::{Deserialize, Serialize};

/// SplitMix64, used as the ring hash.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over one cluster's servers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsistentRing {
    /// Sorted (position, server) virtual nodes.
    ring: Vec<(u64, ServerId)>,
    /// Distinct servers on the ring.
    n_servers: usize,
}

impl ConsistentRing {
    /// Builds a ring with `vnodes` virtual nodes per server.
    pub fn new(servers: &[ServerId], vnodes: usize) -> ConsistentRing {
        assert!(vnodes > 0, "need at least one vnode per server");
        let mut ring = Vec::with_capacity(servers.len() * vnodes);
        for s in servers {
            for v in 0..vnodes {
                ring.push((hash64((s.0 as u64) << 20 | v as u64), *s));
            }
        }
        ring.sort_unstable();
        ConsistentRing {
            ring,
            n_servers: servers.len(),
        }
    }

    /// Number of distinct servers.
    pub fn servers(&self) -> usize {
        self.n_servers
    }

    /// Picks up to `n` distinct servers for a content key, walking
    /// clockwise from the key's ring position.
    ///
    /// `admit` filters candidates (liveness, bounded load): a server
    /// rejected by `admit` is skipped; if every server is rejected the
    /// walk falls back to ignoring the filter so requests are never
    /// dropped (overload beats outage).
    pub fn pick(
        &self,
        key: u64,
        n: usize,
        mut admit: impl FnMut(ServerId) -> bool,
    ) -> Vec<ServerId> {
        if self.ring.is_empty() || n == 0 {
            return Vec::new();
        }
        let start = self.ring.partition_point(|(h, _)| *h < hash64(key));
        let mut out: Vec<ServerId> = Vec::with_capacity(n);
        let mut seen: Vec<ServerId> = Vec::with_capacity(self.n_servers);
        let mut fallback: Vec<ServerId> = Vec::new();
        for i in 0..self.ring.len() {
            let (_, s) = self.ring[(start + i) % self.ring.len()];
            if seen.contains(&s) {
                continue;
            }
            seen.push(s);
            if admit(s) {
                out.push(s);
                if out.len() == n {
                    return out;
                }
            } else {
                fallback.push(s);
            }
            if seen.len() == self.n_servers {
                break;
            }
        }
        // Not enough admitted servers: top up from skipped ones in ring
        // order rather than returning nothing.
        for s in fallback {
            if out.len() == n {
                break;
            }
            out.push(s);
        }
        out
    }

    /// The primary server for a key with no filtering.
    pub fn primary(&self, key: u64) -> Option<ServerId> {
        self.pick(key, 1, |_| true).first().copied()
    }
}

/// Hash key for a domain's content within a cluster: all objects of a
/// domain co-locate, so a domain's working set stays on its two servers.
pub fn domain_key(domain_idx: u32) -> u64 {
    hash64(0xD0_4A17 ^ (domain_idx as u64) << 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<ServerId> {
        (0..n).map(ServerId).collect()
    }

    #[test]
    fn picks_are_deterministic_and_distinct() {
        let ring = ConsistentRing::new(&servers(8), 64);
        let a = ring.pick(42, 3, |_| true);
        let b = ring.pick(42, 3, |_| true);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let set: std::collections::BTreeSet<_> = a.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn single_server_ring() {
        let ring = ConsistentRing::new(&servers(1), 16);
        assert_eq!(ring.pick(7, 2, |_| true), vec![ServerId(0)]);
        assert_eq!(ring.primary(7), Some(ServerId(0)));
    }

    #[test]
    fn requesting_more_than_available_returns_all() {
        let ring = ConsistentRing::new(&servers(3), 16);
        let picked = ring.pick(1, 10, |_| true);
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn filter_skips_but_never_starves() {
        let ring = ConsistentRing::new(&servers(4), 32);
        let only_even = ring.pick(9, 2, |s| s.0 % 2 == 0);
        assert_eq!(only_even.len(), 2);
        assert!(only_even.iter().all(|s| s.0 % 2 == 0));
        // All rejected: fallback still returns servers.
        let none_admitted = ring.pick(9, 2, |_| false);
        assert_eq!(none_admitted.len(), 2);
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let ring = ConsistentRing::new(&servers(8), 128);
        let mut counts = [0usize; 8];
        for key in 0..8000u64 {
            let s = ring.primary(key).unwrap();
            counts[s.0 as usize] += 1;
        }
        let expect = 1000.0;
        for (i, c) in counts.iter().enumerate() {
            let dev = (*c as f64 - expect).abs() / expect;
            assert!(dev < 0.35, "server {i} got {c} keys ({dev:.2} deviation)");
        }
    }

    #[test]
    fn adding_a_server_moves_few_keys() {
        // The consistent-hashing property: going from 8 to 9 servers
        // should move roughly 1/9 of keys, not reshuffle everything.
        let r8 = ConsistentRing::new(&servers(8), 128);
        let r9 = ConsistentRing::new(&servers(9), 128);
        let moved = (0..4000u64)
            .filter(|k| {
                let a = r8.primary(*k).unwrap();
                let b = r9.primary(*k).unwrap();
                a != b
            })
            .count();
        let frac = moved as f64 / 4000.0;
        assert!(frac < 0.25, "moved {frac:.2} of keys");
        // And every moved key must have moved *to* the new server.
        for k in 0..4000u64 {
            let a = r8.primary(k).unwrap();
            let b = r9.primary(k).unwrap();
            if a != b {
                assert_eq!(b, ServerId(8), "key {k} moved to an old server");
            }
        }
    }

    #[test]
    fn bounded_load_diverts_overflow() {
        let ring = ConsistentRing::new(&servers(4), 64);
        // Simulate a load cap of 30 keys per server.
        let mut load = [0usize; 4];
        for key in 0..100u64 {
            let picked = ring.pick(key, 1, |s| load[s.0 as usize] < 30);
            let s = picked[0];
            load[s.0 as usize] += 1;
        }
        assert!(load.iter().all(|l| *l <= 30), "loads {load:?}");
        assert_eq!(load.iter().sum::<usize>(), 100);
    }

    #[test]
    fn domain_keys_spread() {
        let ring = ConsistentRing::new(&servers(6), 64);
        let set: std::collections::BTreeSet<_> = (0..50)
            .map(|d| ring.primary(domain_key(d)).unwrap())
            .collect();
        assert!(
            set.len() >= 4,
            "50 domains landed on only {} servers",
            set.len()
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// pick returns min(n, servers) distinct servers for any key.
        #[test]
        fn pick_count_and_distinctness(
            n_servers in 1u32..12,
            vnodes in 1usize..64,
            key in any::<u64>(),
            n in 0usize..15,
        ) {
            let ids: Vec<ServerId> = (0..n_servers).map(ServerId).collect();
            let ring = ConsistentRing::new(&ids, vnodes);
            let picked = ring.pick(key, n, |_| true);
            prop_assert_eq!(picked.len(), n.min(n_servers as usize));
            let set: std::collections::BTreeSet<_> = picked.iter().collect();
            prop_assert_eq!(set.len(), picked.len());
        }

        /// The admit filter is honored whenever enough admitted servers exist.
        #[test]
        fn admit_filter_honored(key in any::<u64>()) {
            let ids: Vec<ServerId> = (0..10).map(ServerId).collect();
            let ring = ConsistentRing::new(&ids, 32);
            let picked = ring.pick(key, 3, |s| s.0 >= 5);
            prop_assert!(picked.iter().all(|s| s.0 >= 5));
        }
    }
}
