//! Codec equivalence properties for the alloc-free wire implementation:
//! the encoder/decoder pair is an identity on the message model, the
//! buffer-reusing `*_into` variants agree byte-for-byte with the
//! allocating wrappers even across reuse, and the decoder is total —
//! arbitrary and corrupted bytes produce `Err`, never a panic.

use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{
    decode_message, decode_message_into, encode_message, encode_message_into, DnsName, Flags,
    Message, Question, RData, Rcode, Record, SoaData,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec("[a-z0-9_-]{1,12}", 1..5)
        .prop_map(|labels| DnsName::from_labels(labels).unwrap())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    (
        0u8..6,
        arb_name(),
        arb_name(),
        any::<u32>(),
        any::<u64>(),
        "[ -~]{0,40}",
    )
        .prop_map(|(kind, n1, n2, word, wide, text)| match kind {
            0 => RData::A(Ipv4Addr::from(word)),
            1 => RData::Aaaa(Ipv6Addr::from((wide as u128) << 64 | word as u128)),
            2 => RData::Ns(n1),
            3 => RData::Cname(n1),
            4 => RData::Txt(text),
            _ => RData::Soa(SoaData {
                mname: n1,
                rname: n2,
                serial: word,
                refresh: (wide & 0xFFFF) as u32,
                retry: (wide >> 16 & 0xFFFF) as u32,
                expire: (wide >> 32 & 0xFFFF) as u32,
                minimum: word % 3600,
            }),
        })
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
        name,
        ttl,
        rdata,
    })
}

fn arb_flags() -> impl Strategy<Value = Flags> {
    (
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        0u8..4,
    )
        .prop_map(|((qr, aa, rd, ra), rcode)| Flags {
            qr,
            opcode: 0,
            aa,
            tc: false,
            rd,
            ra,
            rcode: match rcode {
                0 => Rcode::NoError,
                1 => Rcode::FormErr,
                2 => Rcode::NxDomain,
                _ => Rcode::Refused,
            },
        })
}

fn arb_ecs() -> impl Strategy<Value = Option<EcsOption>> {
    proptest::option::of(
        (any::<u32>(), 0u8..=32, 0u8..=32).prop_map(|(addr, src, scope)| {
            EcsOption {
                // query() masks the address to the source prefix, as any
                // well-formed sender does.
                addr: EcsOption::query(Ipv4Addr::from(addr), src).addr,
                source_prefix: src,
                scope_prefix: scope.min(src),
            }
        }),
    )
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        (
            any::<u16>(),
            arb_flags(),
            proptest::collection::vec(arb_name(), 0..3),
        ),
        (
            proptest::collection::vec(arb_record(), 0..4),
            proptest::collection::vec(arb_record(), 0..3),
            proptest::collection::vec(arb_record(), 0..3),
            arb_ecs(),
        ),
    )
        .prop_map(|((id, flags, qnames), (ans, auth, add, ecs))| {
            let mut m = Message {
                id,
                flags,
                questions: qnames.into_iter().map(Question::a).collect(),
                answers: ans,
                authorities: auth,
                additionals: add,
            };
            if let Some(e) = ecs {
                m.set_opt(OptData::with_ecs(e));
            }
            m
        })
}

proptest! {
    /// decode ∘ encode is the identity on the message model.
    #[test]
    fn round_trip_is_identity(m in arb_message()) {
        let bytes = encode_message(&m);
        let back = decode_message(&bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    /// The buffer-reusing variants agree byte-for-byte with the
    /// allocating wrappers — including when one scratch pair is reused
    /// across many different messages (stale state must never leak).
    #[test]
    fn into_variants_agree_across_reuse(msgs in proptest::collection::vec(arb_message(), 1..6)) {
        let mut buf = Vec::new();
        let mut scratch = Message::empty();
        for m in &msgs {
            encode_message_into(m, &mut buf);
            prop_assert_eq!(&buf, &encode_message(m));
            decode_message_into(&buf, &mut scratch).unwrap();
            prop_assert_eq!(&scratch, m);
        }
    }

    /// The decoder is total on arbitrary input: garbage in, `Err` out,
    /// never a panic or a hang.
    #[test]
    fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = decode_message(&bytes);
    }

    /// The decoder is total on corrupted real messages: flip any one byte
    /// of a valid encoding, or truncate it anywhere, and decoding either
    /// succeeds or fails cleanly.
    #[test]
    fn decoder_is_total_on_corruption(
        m in arb_message(),
        pos in any::<u16>(),
        bit in 0u8..8,
        cut in any::<u16>(),
    ) {
        let bytes = encode_message(&m);
        if !bytes.is_empty() {
            let mut flipped = bytes.clone();
            let i = pos as usize % flipped.len();
            flipped[i] ^= 1 << bit;
            let _ = decode_message(&flipped);
            let _ = decode_message(&bytes[..cut as usize % (bytes.len() + 1)]);
        }
    }

    /// The inline name's equality and ordering match its label sequence.
    #[test]
    fn name_order_matches_label_vectors(
        a in proptest::collection::vec("[a-z0-9_-]{1,10}", 1..5),
        b in proptest::collection::vec("[a-z0-9_-]{1,10}", 1..5),
    ) {
        let na = DnsName::from_labels(a.clone()).unwrap();
        let nb = DnsName::from_labels(b.clone()).unwrap();
        prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
        prop_assert_eq!(na == nb, a == b);
    }
}
