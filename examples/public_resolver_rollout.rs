//! Replays the paper's §4 roll-out at small scale and prints the headline
//! before/after numbers: mapping distance, RTT, TTFB, content download
//! time, and the DNS query-rate step — the results of Figures 13–20/23.
//!
//! Run with: `cargo run --release --example public_resolver_rollout`
//! (add `-- --tiny` for a sub-minute demonstration run)

use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::Metric;
use end_user_mapping::stats::Table;
use end_user_mapping::telemetry::Registry;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--tiny") {
        ScenarioConfig::tiny(0x5EED)
    } else {
        ScenarioConfig::small(0x5EED)
    };
    eprintln!("building the world and replaying Jan 1 – Jun 30, 2014 (ECS ramp Mar 28 – Apr 15)…");
    let report = Scenario::build(cfg).run_rollout();

    println!("{}", report.summary());

    let mut t = Table::new(["metric", "group", "before", "after", "improvement"]);
    for metric in [
        Metric::MappingDistance,
        Metric::Rtt,
        Metric::Ttfb,
        Metric::Download,
    ] {
        for (label, high) in [("high expectation", true), ("low expectation", false)] {
            let (pre, post) = report.before_after(metric, high);
            t.row([
                metric.label().to_string(),
                label.to_string(),
                format!("{pre:.0}"),
                format!("{post:.0}"),
                format!("{:.2}x", pre / post.max(1e-9)),
            ]);
        }
    }
    println!("{t}");

    // The measured-vs-analytic amplification table: after the timeline
    // completes the scenario replays one demand-weighted query plan
    // through a live eum-ldns resolver fleet against a real eum-authd
    // (ECS off everywhere, then the post-roll-out policy). Upstream
    // counts are measured; the analytic column is the cache-key
    // set-counting estimate the simulator reasons with.
    let fleet = &report.fleet;
    let mut amp = Table::new(["fleet amplification", "measured", "analytic"]);
    amp.row([
        "ECS off".to_string(),
        format!("{:.3}", fleet.measured_amplification_off()),
        format!("{:.3}", fleet.analytic_amplification_off()),
    ]);
    amp.row([
        "ECS on (post-roll-out)".to_string(),
        format!("{:.3}", fleet.measured_amplification_on()),
        format!("{:.3}", fleet.analytic_amplification_on()),
    ]);
    amp.row([
        "scaling (on/off)".to_string(),
        format!("{:.2}x", fleet.measured_scaling()),
        format!("{:.2}x", fleet.analytic_scaling()),
    ]);
    println!(
        "LDNS fleet replay: {} resolvers, {} downstream queries per run",
        fleet.resolvers, fleet.downstream_queries,
    );
    println!("{amp}");

    // Figure-grade flip timeline: the fleet replay's per-window hit-rate
    // curve around the ECS flip (warm plateau -> dip when the flipped
    // resolvers flush -> recovery), written as one JSON object per
    // window so a plotting script can consume it directly.
    let tl = &report.timeline;
    if let Some(flip) = tl.flip_window {
        let mut curve = Table::new(["window", "queries", "hit rate", "amplification"]);
        for w in &tl.windows {
            let mark = if w.window == flip { " <- ECS flip" } else { "" };
            curve.row([
                format!("{}{mark}", w.window),
                w.queries.to_string(),
                format!("{:.3}", w.hit_ratio()),
                format!("{:.3}", w.amplification()),
            ]);
        }
        println!("{curve}");
        let path = "results/rollout_timeline.jsonl";
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(path, tl.to_jsonl()).expect("write timeline jsonl");
        println!(
            "wrote {path}: {} windows, hit rate {:.3} -> {:.3} (dip at window {flip}) -> {:.3}\n",
            tl.windows.len(),
            tl.pre_flip_hit_ratio(),
            tl.flip_hit_ratio(),
            tl.final_hit_ratio(),
        );
    }

    let ((pre_total, pre_public), (post_total, post_public)) = report.query_rate_change();
    println!(
        "authoritative DNS queries/day: total {pre_total:.0} -> {post_total:.0} ({:.2}x), \
         public resolvers {pre_public:.0} -> {post_public:.0} ({:.2}x)",
        post_total / pre_total.max(1e-9),
        post_public / pre_public.max(1e-9),
    );
    // The report also exports its headline numbers through the shared
    // telemetry layer — the same registry/scrape format the authd serving
    // path uses (see examples/authd_serve.rs).
    let registry = Registry::new();
    report.record_metrics(&registry);
    println!("\ntelemetry scrape of the roll-out:");
    for line in registry.render_text().lines() {
        if !line.starts_with('#') {
            println!("  {line}");
        }
    }

    println!(
        "\npaper shape: distance ~8x better, RTT and download ~2x, TTFB ~30%, public queries ~8x more"
    );
}
