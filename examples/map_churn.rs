//! Replays a mid-serving map publication through one authoritative shard
//! under both cache-transition policies — keyed delta invalidation versus
//! the wholesale generation clear — and prints the windowed hit-rate
//! timelines side by side. The flip window is where they diverge: the
//! generation clear re-misses every cached query shape while the keyed
//! path re-misses only the shapes whose mapping unit the delta touched.
//!
//! Run with: `cargo run --release --example map_churn` (`--smoke` for the
//! abbreviated CI variant; exits non-zero unless the keyed dip is
//! decisively smaller).

use end_user_mapping::sim::{run_churn, ChurnConfig, ChurnTimeline, InvalidationMode};
use end_user_mapping::stats::Table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        ChurnConfig::smoke()
    } else {
        ChurnConfig::default()
    };

    println!(
        "map-churn replay: {} windows x {} passes, flip at window {}",
        cfg.windows, cfg.passes_per_window, cfg.flip_window
    );
    let keyed = run_churn(&cfg, InvalidationMode::Keyed);
    let clear = run_churn(&cfg, InvalidationMode::GenerationClear);

    let mut t = Table::new(["window", "keyed hit rate", "generation-clear hit rate"]);
    for w in 0..cfg.windows {
        let mark = if w == cfg.flip_window { " <- flip" } else { "" };
        t.row([
            format!("{w}{mark}"),
            format!("{:.3}", keyed.hit_rate[w]),
            format!("{:.3}", clear.hit_rate[w]),
        ]);
    }
    print!("{}", t.render());

    let describe = |tl: &ChurnTimeline| {
        format!(
            "dip {:.3} (keyed evictions {}, cache clears {})",
            tl.dip(),
            tl.keyed_invalidations,
            tl.generation_clears
        )
    };
    println!("keyed:            {}", describe(&keyed));
    println!("generation-clear: {}", describe(&clear));
    if let Some(units) = keyed.delta_units {
        println!("published delta covered {units} mapping units");
    }

    if keyed.dip() < clear.dip() {
        println!("MAP-CHURN PASS");
    } else {
        println!("MAP-CHURN FAIL: keyed dip did not beat generation clear");
        std::process::exit(1);
    }
}
