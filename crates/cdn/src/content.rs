//! The content catalog: hosted domains, pages, and embedded objects.
//!
//! The paper measures page loads of real web sites hosted on the CDN
//! (§4.2: "6,388 domain names and 2.5 million unique URLs"). The catalog
//! generates a hosted-domain population with Zipf popularity (which drives
//! the per-(domain, LDNS) query-rate spread of Figure 24), per-domain DNS
//! TTLs, a dynamic base page whose construction may need the origin
//! (§4.1's TTFB decomposition), and cacheable embedded objects (whose
//! delivery dominates content download time).

use eum_dns::name::DnsName;
use eum_geo::{Country, GeoPoint};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Identifies one cacheable object: (domain index, object index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContentId {
    /// Index of the owning domain in the catalog.
    pub domain: u32,
    /// Object index within the domain (0 = the base page itself).
    pub object: u32,
}

/// The traffic class of a hosted domain (§2.2: "Different scoring
/// functions that incorporate bandwidth, latency, packet loss, etc can be
/// used for different traffic classes (web, video, applications, etc)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Interactive web pages: latency-dominated.
    Web,
    /// Streaming video: sustained-throughput-dominated, loss-sensitive.
    Video,
    /// Large file downloads: throughput-dominated, latency-insensitive.
    Download,
}

impl TrafficClass {
    /// All classes.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Web,
        TrafficClass::Video,
        TrafficClass::Download,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficClass::Web => "web",
            TrafficClass::Video => "video",
            TrafficClass::Download => "download",
        }
    }
}

/// An embedded object on a page (CSS, image, JavaScript — "typically more
/// static and cacheable", §4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddedObject {
    /// Transfer size in kilobytes.
    pub size_kb: f64,
    /// Whether the CDN may cache it (a small fraction is personalized).
    pub cacheable: bool,
}

/// A domain hosted on the CDN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostedDomain {
    /// The CDN-side name the provider CNAMEs to (e.g. `e42.cdn.example`).
    pub cdn_name: DnsName,
    /// The provider's public name (e.g. `www.shop42.example`).
    pub www_name: DnsName,
    /// Zipf popularity weight (relative request rate).
    pub popularity: f64,
    /// Traffic class, selecting the mapping system's scoring function.
    pub class: TrafficClass,
    /// Authoritative A-record TTL, seconds (low, as CDNs use for agility).
    pub ttl_s: u32,
    /// Whether the base page is dynamic (needs origin on every load).
    pub dynamic_base: bool,
    /// Mean server page-construction time, ms.
    pub server_time_ms: f64,
    /// Base page size in kilobytes.
    pub base_size_kb: f64,
    /// Embedded objects.
    pub objects: Vec<EmbeddedObject>,
    /// Origin location (content provider's own hosting).
    pub origin_loc: GeoPoint,
    /// Origin country.
    pub origin_country: Country,
}

impl HostedDomain {
    /// Content ID of the base page.
    pub fn base_content(&self, domain_idx: u32) -> ContentId {
        ContentId {
            domain: domain_idx,
            object: 0,
        }
    }

    /// Content ID of embedded object `i` (0-based).
    pub fn object_content(&self, domain_idx: u32, i: u32) -> ContentId {
        ContentId {
            domain: domain_idx,
            object: i + 1,
        }
    }

    /// Total bytes of one full page view, kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.base_size_kb + self.objects.iter().map(|o| o.size_kb).sum::<f64>()
    }
}

/// Catalog generation knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Seed for the catalog's RNG stream.
    pub seed: u64,
    /// Number of hosted domains.
    pub n_domains: usize,
    /// Zipf exponent for domain popularity.
    pub zipf_s: f64,
}

impl CatalogConfig {
    /// A small catalog for tests.
    pub fn tiny(seed: u64) -> Self {
        CatalogConfig {
            seed,
            n_domains: 12,
            zipf_s: 0.9,
        }
    }

    /// The scale used by the reproduction scenario.
    pub fn paper(seed: u64) -> Self {
        CatalogConfig {
            seed,
            n_domains: 160,
            zipf_s: 0.9,
        }
    }
}

/// The set of domains hosted on the CDN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentCatalog {
    /// All hosted domains; index = `ContentId::domain`.
    pub domains: Vec<HostedDomain>,
}

/// Origin hosting locations: mostly large US/EU metros, as is typical for
/// content providers' own infrastructure.
const ORIGIN_CITIES: &[(&str, f64)] = &[
    ("New York", 3.0),
    ("San Jose", 3.0),
    ("Dallas", 2.0),
    ("Chicago", 1.5),
    ("London", 2.0),
    ("Frankfurt", 1.5),
    ("Tokyo", 1.0),
    ("Singapore", 0.5),
];

impl ContentCatalog {
    /// Generates a catalog. Deterministic in `cfg.seed`.
    pub fn generate(cfg: &CatalogConfig) -> ContentCatalog {
        let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ 0xC0_4E_7E_47);
        let mut domains = Vec::with_capacity(cfg.n_domains);
        let origin_weights: Vec<f64> = ORIGIN_CITIES.iter().map(|(_, w)| *w).collect();
        for i in 0..cfg.n_domains {
            // Zipf popularity by rank (rank 0 most popular).
            let popularity = 1.0 / ((i + 1) as f64).powf(cfg.zipf_s);
            // DNS TTLs. Production CDN A-records use ~20-60s TTLs, but the
            // simulated workload is a *sampled* RUM stream — page views are
            // thinned by roughly 100-500× relative to the demand the paper's
            // LDNSes actually see. Queries-per-TTL (the regime Figures 23/24
            // depend on) is rate × TTL, so TTLs are scaled up by the same
            // factor to preserve that product. See DESIGN.md "time thinning".
            let ttl_s = *[7_200u32, 14_400, 14_400, 28_800, 43_200]
                .get(rng.random_range(0..5usize))
                .expect("index in range");
            let n_objects = rng.random_range(4..40usize);
            let objects = (0..n_objects)
                .map(|_| EmbeddedObject {
                    // Log-uniform sizes, 2–300 KB.
                    size_kb: 2.0 * (150.0f64).powf(rng.random_range(0.0..1.0)),
                    cacheable: rng.random_bool(0.92),
                })
                .collect();
            let origin_idx = {
                let total: f64 = origin_weights.iter().sum();
                let mut r = rng.random_range(0.0..total);
                let mut chosen = 0;
                for (j, w) in origin_weights.iter().enumerate() {
                    r -= w;
                    if r <= 0.0 {
                        chosen = j;
                        break;
                    }
                }
                chosen
            };
            let city = eum_geo::GAZETTEER
                .iter()
                .find(|c| c.name == ORIGIN_CITIES[origin_idx].0)
                .expect("origin city in gazetteer");
            // ~70% web, ~20% video, ~10% download — roughly the CDN
            // traffic-class mix by request count.
            let class = {
                let roll: f64 = rng.random_range(0.0..1.0);
                if roll < 0.70 {
                    TrafficClass::Web
                } else if roll < 0.90 {
                    TrafficClass::Video
                } else {
                    TrafficClass::Download
                }
            };
            domains.push(HostedDomain {
                cdn_name: format!("e{i}.cdn.example").parse().expect("valid name"),
                www_name: format!("www.site{i}.example").parse().expect("valid name"),
                popularity,
                class,
                ttl_s,
                dynamic_base: rng.random_bool(0.6),
                server_time_ms: rng.random_range(5.0..40.0),
                base_size_kb: rng.random_range(20.0..120.0),
                objects,
                origin_loc: city.point(),
                origin_country: city.country,
            });
        }
        ContentCatalog { domains }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The domain a CDN name belongs to.
    pub fn by_cdn_name(&self, name: &DnsName) -> Option<(u32, &HostedDomain)> {
        self.domains
            .iter()
            .enumerate()
            .find(|(_, d)| d.cdn_name == *name)
            .map(|(i, d)| (i as u32, d))
    }

    /// Popularity weights for workload sampling.
    pub fn popularity_weights(&self) -> Vec<f64> {
        self.domains.iter().map(|d| d.popularity).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> ContentCatalog {
        ContentCatalog::generate(&CatalogConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = catalog();
        let b = catalog();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.domains.iter().zip(&b.domains) {
            assert_eq!(x.cdn_name, y.cdn_name);
            assert_eq!(x.ttl_s, y.ttl_s);
            assert_eq!(x.objects.len(), y.objects.len());
        }
    }

    #[test]
    fn popularity_is_zipf_decreasing() {
        let c = catalog();
        let w = c.popularity_weights();
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(w[0] / w.last().unwrap() > 5.0, "head should dominate tail");
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let c = catalog();
        let mut names: Vec<_> = c.domains.iter().map(|d| d.cdn_name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), c.len());
        let (idx, d) = c.by_cdn_name(&"e3.cdn.example".parse().unwrap()).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(d.www_name, "www.site3.example".parse().unwrap());
        assert!(c.by_cdn_name(&"nope.example".parse().unwrap()).is_none());
    }

    #[test]
    fn content_ids_distinguish_objects() {
        let c = catalog();
        let d = &c.domains[0];
        assert_eq!(
            d.base_content(0),
            ContentId {
                domain: 0,
                object: 0
            }
        );
        assert_eq!(
            d.object_content(0, 0),
            ContentId {
                domain: 0,
                object: 1
            }
        );
        assert_ne!(d.base_content(0), d.object_content(0, 0));
    }

    #[test]
    fn sizes_and_ttls_are_sane() {
        let c = catalog();
        for d in &c.domains {
            assert!(d.total_kb() > d.base_size_kb);
            assert!((7_200..=43_200).contains(&d.ttl_s));
            assert!(!d.objects.is_empty());
            for o in &d.objects {
                assert!((2.0..=300.0).contains(&o.size_kb));
            }
        }
    }

    #[test]
    fn some_domains_are_dynamic_and_some_static() {
        let c = ContentCatalog::generate(&CatalogConfig::paper(1));
        let dynamic = c.domains.iter().filter(|d| d.dynamic_base).count();
        assert!(dynamic > 0 && dynamic < c.len());
    }
}
