//! EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871).
//!
//! The Client Subnet option is the protocol mechanism end-user mapping is
//! built on (paper §2.1): a recursive resolver appends a truncated client
//! prefix to its upstream query; the authoritative answers with a *scope*
//! prefix length telling caches how widely the answer may be reused.
//!
//! Wire layout of the option (RFC 7871 §6):
//!
//! ```text
//! +0 (MSB)                            +1 (LSB)
//! |          OPTION-CODE (8)          |
//! |          OPTION-LENGTH            |
//! |            FAMILY (1=IPv4)        |
//! | SOURCE PREFIX-LEN | SCOPE PREFIX-LEN |
//! |  ADDRESS... (ceil(source/8) bytes, trailing bits zero) |
//! ```
//!
//! Decoding is slice-based and allocation-free for the serve path's only
//! hot case (a single IPv4 ECS option): [`OptData::options`] stores up to
//! two options inline and only spills to the heap beyond that, and opaque
//! payload copies are made only for options we pass through verbatim.

use bytes::BufMut;
use eum_geo::Prefix;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use crate::wire::WireError;

/// EDNS option code for Client Subnet.
pub const OPTION_CODE_ECS: u16 = 8;

/// Address family numbers (RFC 7871 uses the IANA address-family registry).
pub const FAMILY_IPV4: u16 = 1;

/// An EDNS0 Client Subnet option.
///
/// `source_prefix` is what the querier knows about the client;
/// `scope_prefix` is meaningful only in responses (queries MUST send 0 per
/// RFC 7871 §6) and states how widely the answer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcsOption {
    /// The client address, truncated to `source_prefix` bits (host bits
    /// zero — enforced at construction and on parse).
    pub addr: Ipv4Addr,
    /// SOURCE PREFIX-LENGTH: bits of `addr` that are significant.
    pub source_prefix: u8,
    /// SCOPE PREFIX-LENGTH: in a response, the coverage of the answer.
    pub scope_prefix: u8,
}

impl EcsOption {
    /// A query-side option for `client` truncated to `/source_prefix`
    /// (scope 0 as required in queries).
    pub fn query(client: Ipv4Addr, source_prefix: u8) -> EcsOption {
        let p = Prefix::of(client, source_prefix);
        EcsOption {
            addr: p.network(),
            source_prefix: p.len(),
            scope_prefix: 0,
        }
    }

    /// A response-side option echoing `source` with the authoritative
    /// scope set (RFC 7871 §7.1.3: the response must echo FAMILY, SOURCE
    /// PREFIX-LENGTH and ADDRESS).
    pub fn response(source: &EcsOption, scope_prefix: u8) -> EcsOption {
        EcsOption {
            scope_prefix,
            ..*source
        }
    }

    /// The source prefix as a [`Prefix`].
    pub fn source_block(&self) -> Prefix {
        Prefix::of(self.addr, self.source_prefix)
    }

    /// The scope prefix applied to the address, i.e. the block of clients
    /// the answer is valid for. Returns the literal scope block; the
    /// resolver's cache layer clamps a scope longer than the source back
    /// to the source block before storing.
    pub fn scope_block(&self) -> Prefix {
        Prefix::of(self.addr, self.scope_prefix)
    }

    /// Number of address octets on the wire: `ceil(source_prefix / 8)`.
    pub fn addr_octets(&self) -> usize {
        (self.source_prefix as usize).div_ceil(8)
    }

    /// Encodes the option payload (code and length handled by the caller's
    /// option framing via [`encode_option`]).
    fn put_payload(&self, buf: &mut impl BufMut) {
        buf.put_u16(FAMILY_IPV4);
        buf.put_u8(self.source_prefix);
        buf.put_u8(self.scope_prefix);
        let octets = self.addr.octets();
        // lint: allow(serve-index) — addr_octets() = ceil(prefix/8) ≤ 4
        // for the ≤ 32 prefixes this type admits; octets is [u8; 4].
        buf.put_slice(&octets[..self.addr_octets()]);
    }

    /// Full option wire encoding: OPTION-CODE, OPTION-LENGTH, payload.
    pub fn encode_option(&self, buf: &mut impl BufMut) {
        buf.put_u16(OPTION_CODE_ECS);
        buf.put_u16((4 + self.addr_octets()) as u16);
        self.put_payload(buf);
    }

    /// Decodes an option payload (the bytes after code/length).
    /// Enforces RFC 7871 §6 validity: family 1 (IPv4 — the reproduction's
    /// address plan is IPv4), prefix lengths ≤ 32, exactly
    /// `ceil(source/8)` address octets, and zero padding bits.
    pub fn decode_payload(payload: &[u8]) -> Result<EcsOption, WireError> {
        if payload.len() < 4 {
            return Err(WireError::Truncated);
        }
        // lint: allow(serve-index) — payload.len() ≥ 4 checked above
        let family = u16::from_be_bytes([payload[0], payload[1]]);
        if family != FAMILY_IPV4 {
            return Err(WireError::BadEcs("unsupported address family"));
        }
        let source_prefix = payload[2]; // lint: allow(serve-index) — len ≥ 4 checked above
        let scope_prefix = payload[3]; // lint: allow(serve-index) — len ≥ 4 checked above
        if source_prefix > 32 || scope_prefix > 32 {
            return Err(WireError::BadEcs("prefix length exceeds 32"));
        }
        let want = (source_prefix as usize).div_ceil(8);
        if payload.len() != 4 + want {
            return Err(WireError::BadEcs("address length mismatch"));
        }
        let mut octets = [0u8; 4];
        // lint: allow(serve-index) — want = ceil(source/8) ≤ 4 (source ≤
        // 32 checked), and payload.len() == 4 + want checked above.
        octets[..want].copy_from_slice(&payload[4..4 + want]);
        let addr = Ipv4Addr::from(octets);
        // RFC 7871 §6: trailing (padding) bits MUST be zero.
        if Prefix::of(addr, source_prefix).network() != addr {
            return Err(WireError::BadEcs("non-zero padding bits"));
        }
        Ok(EcsOption {
            addr,
            source_prefix,
            scope_prefix,
        })
    }
}

/// A generic EDNS option: ECS or an opaque (code, data) pair we pass
/// through untouched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdnsOption {
    /// RFC 7871 Client Subnet.
    ClientSubnet(EcsOption),
    /// Any other option, preserved verbatim.
    Other {
        /// Option code.
        code: u16,
        /// Raw option payload.
        data: Vec<u8>,
    },
}

/// A small-vector of EDNS options: the first two live inline, the rest
/// spill to the heap.
///
/// Real traffic carries zero or one option (ECS), so the spill vector is
/// `Vec::new()` — which never allocates — in steady state. This is what
/// makes decoding an ECS query allocation-free end to end.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdnsOptions {
    inline: [Option<EdnsOption>; 2],
    spill: Vec<EdnsOption>,
}

impl EdnsOptions {
    /// An empty option list (allocation-free).
    pub const fn new() -> EdnsOptions {
        EdnsOptions {
            inline: [None, None],
            spill: Vec::new(),
        }
    }

    /// Appends an option, spilling to the heap past two.
    pub fn push(&mut self, opt: EdnsOption) {
        for slot in &mut self.inline {
            if slot.is_none() {
                *slot = Some(opt);
                return;
            }
        }
        self.spill.push(opt);
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.inline.iter().filter(|s| s.is_some()).count() + self.spill.len()
    }

    /// True when no options are present.
    pub fn is_empty(&self) -> bool {
        // lint: allow(serve-index) — fixed index 0 into [Option<_>; 2]
        self.inline[0].is_none() && self.spill.is_empty()
    }

    /// Removes all options (keeps spill capacity).
    pub fn clear(&mut self) {
        self.inline = [None, None];
        self.spill.clear();
    }

    /// Iterates the options in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &EdnsOption> {
        self.inline
            .iter()
            .filter_map(Option::as_ref)
            .chain(self.spill.iter())
    }
}

impl Default for EdnsOptions {
    fn default() -> Self {
        EdnsOptions::new()
    }
}

impl PartialEq for EdnsOptions {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for EdnsOptions {}

impl From<Vec<EdnsOption>> for EdnsOptions {
    fn from(v: Vec<EdnsOption>) -> Self {
        v.into_iter().collect()
    }
}

impl FromIterator<EdnsOption> for EdnsOptions {
    fn from_iter<T: IntoIterator<Item = EdnsOption>>(iter: T) -> Self {
        let mut out = EdnsOptions::new();
        for opt in iter {
            out.push(opt);
        }
        out
    }
}

impl<'a> IntoIterator for &'a EdnsOptions {
    type Item = &'a EdnsOption;
    type IntoIter = Box<dyn Iterator<Item = &'a EdnsOption> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// The variable part of the OPT pseudo-RR (RFC 6891).
///
/// On the wire, `udp_payload_size` rides in the CLASS field and
/// (`ext_rcode`, `version`, `dnssec_ok`) ride in the TTL field; the codec
/// handles that split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptData {
    /// Requestor's UDP payload size (CLASS field).
    pub udp_payload_size: u16,
    /// Extended RCODE high bits (TTL byte 0).
    pub ext_rcode: u8,
    /// EDNS version (TTL byte 1); only version 0 exists.
    pub version: u8,
    /// The DO (DNSSEC OK) flag (TTL bit 16).
    pub dnssec_ok: bool,
    /// Options carried in RDATA.
    pub options: EdnsOptions,
}

impl Default for OptData {
    fn default() -> Self {
        OptData {
            udp_payload_size: 4096,
            ext_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: EdnsOptions::new(),
        }
    }
}

impl OptData {
    /// An OPT carrying a single ECS option.
    pub fn with_ecs(ecs: EcsOption) -> OptData {
        let mut options = EdnsOptions::new();
        options.push(EdnsOption::ClientSubnet(ecs));
        OptData {
            options,
            ..OptData::default()
        }
    }

    /// The first ECS option, if present.
    pub fn ecs(&self) -> Option<&EcsOption> {
        self.options.iter().find_map(|o| match o {
            EdnsOption::ClientSubnet(e) => Some(e),
            EdnsOption::Other { .. } => None,
        })
    }

    /// Encodes RDATA (the options sequence).
    pub fn encode_rdata(&self, buf: &mut impl BufMut) {
        for opt in self.options.iter() {
            match opt {
                EdnsOption::ClientSubnet(e) => e.encode_option(buf),
                EdnsOption::Other { code, data } => {
                    buf.put_u16(*code);
                    buf.put_u16(data.len() as u16);
                    buf.put_slice(data);
                }
            }
        }
    }

    /// Decodes RDATA into the options sequence. Only opaque pass-through
    /// options copy bytes to the heap; an IPv4 ECS option parses in place.
    pub fn decode_rdata(rdata: &[u8]) -> Result<EdnsOptions, WireError> {
        let mut options = EdnsOptions::new();
        let mut pos = 0usize;
        while pos < rdata.len() {
            if rdata.len() - pos < 4 {
                return Err(WireError::Truncated);
            }
            // lint: allow(serve-index) — rdata.len() - pos ≥ 4 checked above
            let code = u16::from_be_bytes([rdata[pos], rdata[pos + 1]]);
            // lint: allow(serve-index) — rdata.len() - pos ≥ 4 checked above
            let len = u16::from_be_bytes([rdata[pos + 2], rdata[pos + 3]]) as usize;
            pos += 4;
            let Some(payload) = rdata.get(pos..pos + len) else {
                return Err(WireError::Truncated);
            };
            if code == OPTION_CODE_ECS {
                match EcsOption::decode_payload(payload) {
                    Ok(ecs) => options.push(EdnsOption::ClientSubnet(ecs)),
                    // An unsupported (but well-formed) family is preserved
                    // verbatim: this system's address plan is IPv4, and
                    // RFC 7871 §7.1.2 lets a server treat a family it does
                    // not support as if the option were absent.
                    Err(WireError::BadEcs("unsupported address family")) => {
                        options.push(EdnsOption::Other {
                            code,
                            // lint: allow(serve-alloc) — opaque pass-through
                            // copies by design; ECS (the per-query common
                            // case) parses in place above.
                            data: payload.to_vec(),
                        })
                    }
                    Err(e) => return Err(e),
                }
            } else {
                options.push(EdnsOption::Other {
                    code,
                    // lint: allow(serve-alloc) — unknown options are kept
                    // verbatim for echo; bounded by the record's rdlen.
                    data: payload.to_vec(),
                });
            }
            pos += len;
        }
        Ok(options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_constructor_truncates_address() {
        let e = EcsOption::query(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(e.addr, Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(e.source_prefix, 24);
        assert_eq!(e.scope_prefix, 0);
        assert_eq!(e.addr_octets(), 3);
    }

    #[test]
    fn response_echoes_source_and_sets_scope() {
        let q = EcsOption::query(Ipv4Addr::new(10, 1, 2, 3), 24);
        let r = EcsOption::response(&q, 20);
        assert_eq!(r.addr, q.addr);
        assert_eq!(r.source_prefix, 24);
        assert_eq!(r.scope_prefix, 20);
    }

    #[test]
    fn option_round_trips() {
        for (ip, src, scope) in [
            (Ipv4Addr::new(10, 1, 2, 0), 24u8, 20u8),
            (Ipv4Addr::new(192, 168, 0, 0), 16, 16),
            (Ipv4Addr::new(8, 0, 0, 0), 5, 0),
            (Ipv4Addr::new(1, 2, 3, 4), 32, 32),
            (Ipv4Addr::new(0, 0, 0, 0), 0, 0),
        ] {
            let e = EcsOption {
                addr: ip,
                source_prefix: src,
                scope_prefix: scope,
            };
            let mut buf: Vec<u8> = Vec::new();
            e.encode_option(&mut buf);
            let code = u16::from_be_bytes([buf[0], buf[1]]);
            let len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
            assert_eq!(code, OPTION_CODE_ECS);
            let back = EcsOption::decode_payload(&buf[4..4 + len]).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn nonzero_padding_bits_are_rejected() {
        // /20 with a set bit in the 4 padding bits of the third octet.
        let payload = [0, 1, 20, 0, 10, 1, 0x0F]; // 10.1.15.0/20 — low 4 bits must be 0
        let err = EcsOption::decode_payload(&payload).unwrap_err();
        assert!(matches!(err, WireError::BadEcs("non-zero padding bits")));
    }

    #[test]
    fn wrong_family_and_lengths_rejected() {
        // IPv6 family — unsupported here.
        assert!(EcsOption::decode_payload(&[0, 2, 24, 0, 1, 2, 3]).is_err());
        // Prefix too long.
        assert!(EcsOption::decode_payload(&[0, 1, 33, 0, 1, 2, 3, 4, 5]).is_err());
        // One octet short for /24.
        assert!(EcsOption::decode_payload(&[0, 1, 24, 0, 1, 2]).is_err());
    }

    #[test]
    fn optdata_rdata_round_trips_with_unknown_options() {
        let opt = OptData {
            options: vec![
                EdnsOption::ClientSubnet(EcsOption::query(Ipv4Addr::new(10, 0, 0, 1), 24)),
                EdnsOption::Other {
                    code: 10,
                    data: vec![1, 2, 3, 4],
                }, // COOKIE
            ]
            .into(),
            ..OptData::default()
        };
        let mut buf: Vec<u8> = Vec::new();
        opt.encode_rdata(&mut buf);
        let back = OptData::decode_rdata(&buf).unwrap();
        assert_eq!(back, opt.options);
    }

    #[test]
    fn options_spill_past_two_and_preserve_order() {
        let opts: Vec<EdnsOption> = (0..5)
            .map(|i| EdnsOption::Other {
                code: 100 + i,
                data: vec![i as u8],
            })
            .collect();
        let small: EdnsOptions = opts.clone().into();
        assert_eq!(small.len(), 5);
        assert!(!small.is_empty());
        let back: Vec<EdnsOption> = small.iter().cloned().collect();
        assert_eq!(back, opts);
        let mut cleared = small.clone();
        cleared.clear();
        assert!(cleared.is_empty());
        assert_eq!(cleared.len(), 0);
        assert_eq!(cleared, EdnsOptions::new());
    }

    #[test]
    fn ecs_accessor_finds_the_option() {
        let e = EcsOption::query(Ipv4Addr::new(10, 0, 0, 1), 24);
        let opt = OptData::with_ecs(e);
        assert_eq!(opt.ecs(), Some(&e));
        assert_eq!(OptData::default().ecs(), None);
    }

    #[test]
    fn ipv6_ecs_option_is_preserved_as_opaque() {
        // An IPv6 (family 2) client-subnet option: RFC 7871 §7.1.2 lets a
        // v4-only server treat it as absent; we keep it byte-for-byte so
        // re-encoding round-trips.
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u16(OPTION_CODE_ECS);
        buf.put_u16(4 + 6);
        buf.put_u16(2); // family 2 = IPv6
        buf.put_u8(48);
        buf.put_u8(0);
        buf.put_slice(&[0x20, 0x01, 0x0d, 0xb8, 0x12, 0x34]);
        let opts = OptData::decode_rdata(&buf).unwrap();
        assert_eq!(opts.len(), 1);
        match opts.iter().next().unwrap() {
            EdnsOption::Other { code, data } => {
                assert_eq!(*code, OPTION_CODE_ECS);
                assert_eq!(data.len(), 10);
                assert_eq!(data[..2], [0, 2]);
            }
            other => panic!("expected opaque option, got {other:?}"),
        }
        // And a malformed *IPv4* option still errors.
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u16(OPTION_CODE_ECS);
        buf.put_u16(4 + 3);
        buf.put_u16(FAMILY_IPV4);
        buf.put_u8(20);
        buf.put_u8(0);
        buf.put_slice(&[10, 1, 0x0F]); // non-zero padding bits
        assert!(OptData::decode_rdata(&buf).is_err());
    }

    #[test]
    fn truncated_rdata_errors() {
        // Claims a 10-byte option with no payload present.
        assert!(matches!(
            OptData::decode_rdata(&[0, 8, 0, 10]).unwrap_err(),
            WireError::Truncated
        ));
    }
}
