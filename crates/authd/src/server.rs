//! The sharded authoritative serving loop.
//!
//! [`AuthServer::spawn`] starts one OS thread per transport shard. Each
//! shard owns its transport endpoint and a [`ShardState`] outright — the
//! decode scratch, the reply buffer, and the [`AnswerCache`] all live for
//! the shard's lifetime, so the steady-state serve path never allocates.
//! The only shared state is the snapshot cell (each shard holds a
//! [`crate::SnapshotReader`] whose steady-state revalidation is one
//! atomic load) and the relaxed live counters; shards never contend on a
//! lock. Per query a shard:
//!
//! 1. receives one RFC 1035 datagram,
//! 2. revalidates its map snapshot (transitioning its cache — keyed
//!    delta invalidation or a wholesale clear — if the generation
//!    changed since the last query),
//! 3. decodes into the shard's persistent [`Message`] scratch, consults
//!    the ECS-aware cache — a hit memcpys the stored wire bytes and
//!    patches them in place; a miss computes through
//!    [`eum_mapping::MappingSystem::answer`] and encodes into the reused
//!    reply buffer,
//! 4. sends the reply buffer.
//!
//! Malformed packets get a FORMERR when the header is intact (so the ID
//! can be echoed) and are dropped otherwise, like a production server.
//! The FORMERR is stamped straight into the reply buffer too — twelve
//! bytes, no encode.

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::cache::{AnswerCache, AnswerCacheStats, CacheConfig, CachedAnswer};
use crate::snapshot::{Snapshot, SnapshotHandle};
use crate::telemetry::{ShardInstruments, TelemetryConfig};
use crate::transport::{BatchServerTransport, ServerTransport, MAX_DATAGRAM};
use crate::truncate::truncate_in_place;
use eum_dns::{decode_message_into, encode_message_into, DnsName, Message, QueryContext, Rcode};
use eum_geo::Prefix;
use eum_telemetry::{QueryTrace, TraceHop, TraceOutcome, TraceRing};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The authoritative IP a shard serves when the transport does not
    /// carry one per datagram (UDP mode).
    pub default_server_ip: Ipv4Addr,
    /// Per-shard answer-cache bounds; `None` disables caching entirely
    /// (every query routes through the snapshot).
    pub cache: Option<CacheConfig>,
    /// How long `recv` blocks before re-checking the stop flag.
    pub recv_timeout: Duration,
    /// Metrics registry and trace ring; `None` serves unobserved. Stage
    /// timestamps are only taken when this is set.
    pub telemetry: Option<TelemetryConfig>,
    /// The largest UDP reply this deployment sends regardless of what
    /// the client advertises ([`ReplyCap::Datagram`]'s transport
    /// ceiling). Defaults to [`MAX_DATAGRAM`]; tests shrink it to force
    /// the truncate→TCP-retry path without multi-kilobyte answers.
    pub max_udp_reply: u16,
    /// Compute-path admission control; `None` admits everything.
    /// When set, each shard owns a token bucket priced per compute-path
    /// query (cache misses and uncacheable shapes); an empty bucket
    /// sheds the query with a REFUSED header instead of routing it.
    /// Cached hits are never shed — they are the cheap class the
    /// shedding protects.
    pub admission: Option<AdmissionConfig>,
}

impl ServerConfig {
    /// Defaults with the given fallback server IP.
    pub fn new(default_server_ip: Ipv4Addr) -> ServerConfig {
        ServerConfig {
            default_server_ip,
            cache: Some(CacheConfig::default()),
            recv_timeout: Duration::from_millis(20),
            telemetry: None,
            max_udp_reply: MAX_DATAGRAM as u16,
            admission: None,
        }
    }

    /// Same config with caching disabled.
    pub fn without_cache(mut self) -> ServerConfig {
        self.cache = None;
        self
    }

    /// Same config with the given observability wiring.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> ServerConfig {
        self.telemetry = Some(telemetry);
        self
    }

    /// Same config with a smaller UDP reply ceiling (truncation tests).
    pub fn with_max_udp_reply(mut self, max: u16) -> ServerConfig {
        self.max_udp_reply = max;
        self
    }

    /// Same config with compute-path admission control enabled.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> ServerConfig {
        self.admission = Some(admission);
        self
    }
}

/// The size regime one reply must fit, derived from the substrate its
/// query arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyCap {
    /// Datagram (UDP) query: the reply must fit the client's advertised
    /// EDNS0 payload size — 512 when absent or smaller, per RFC 6891
    /// §6.2.3 — clamped to the transport's own ceiling. Oversize replies
    /// are truncated at a record boundary with TC set (RFC 2181 §9).
    Datagram {
        /// [`ServerConfig::max_udp_reply`] for server loops; tests pass
        /// a small value to force truncation.
        transport_max: u16,
    },
    /// Stream (TCP) query: 64 KiB frames, never truncated.
    Stream,
}

impl ReplyCap {
    /// The default UDP regime: replies capped only by [`MAX_DATAGRAM`].
    pub fn udp() -> ReplyCap {
        ReplyCap::Datagram {
            transport_max: MAX_DATAGRAM as u16,
        }
    }

    /// Effective reply byte limit for a query advertising `advertised`
    /// (its EDNS0 payload size; `None` when the query carried no OPT).
    fn limit(self, advertised: Option<u16>) -> usize {
        match self {
            ReplyCap::Stream => u16::MAX as usize,
            ReplyCap::Datagram { transport_max } => {
                let adv = advertised.unwrap_or(512).max(512);
                (adv as usize).min(transport_max as usize)
            }
        }
    }
}

/// Live counters one shard exposes while running (relaxed atomics; read
/// by reporters, written only by the owning shard).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Datagrams answered.
    pub queries: AtomicU64,
    /// Answers served from the shard cache.
    pub cache_hits: AtomicU64,
    /// Datagrams that failed to decode.
    pub malformed: AtomicU64,
    /// Replies truncated to the client's UDP payload limit (TC=1).
    pub truncated: AtomicU64,
    /// Queries shed by admission control (REFUSED replies).
    pub shed: AtomicU64,
}

/// What a shard reports when joined.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Datagrams answered (including FORMERR replies).
    pub queries: u64,
    /// Datagrams dropped as undecodable without a usable header.
    pub dropped: u64,
    /// Datagrams answered FORMERR.
    pub malformed: u64,
    /// Replies truncated with TC=1.
    pub truncated: u64,
    /// Queries shed by admission control (REFUSED replies).
    pub shed: u64,
    /// Compute-path queries admitted past the token bucket (equals the
    /// non-cache-hit replies when admission is enabled; 0 otherwise).
    pub admitted: u64,
    /// Cache counters (zeros when the cache is disabled).
    pub cache: AnswerCacheStats,
    /// Snapshot generations this shard served from.
    pub generations_seen: u64,
}

/// A running sharded server; join with [`AuthServer::stop_join`].
pub struct AuthServer {
    stop: Arc<AtomicBool>,
    counters: Vec<Arc<ShardCounters>>,
    handles: Vec<JoinHandle<ShardReport>>,
}

impl AuthServer {
    /// Spawns one serving thread per transport in `transports`.
    pub fn spawn<T: ServerTransport>(
        transports: Vec<T>,
        snapshots: SnapshotHandle,
        cfg: ServerConfig,
    ) -> AuthServer {
        let stop = Arc::new(AtomicBool::new(false));
        let shards = transports.len();
        let mut counters = Vec::new();
        let mut handles = Vec::new();
        for (shard, transport) in transports.into_iter().enumerate() {
            let c = Arc::new(ShardCounters::default());
            counters.push(c.clone());
            let stop = stop.clone();
            let snapshots = snapshots.clone();
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                run_shard(shard, shards, transport, snapshots, cfg, stop, c)
            }));
        }
        AuthServer {
            stop,
            counters,
            handles,
        }
    }

    /// Spawns one serving thread per batched transport — the same shard
    /// loop as [`AuthServer::spawn`] but moving datagrams in kernel
    /// batches (`recvmmsg`/`sendmmsg`) through a
    /// [`BatchServerTransport`]: receive up to a batch, serve each query
    /// against one snapshot grab, stage every reply, flush once.
    pub fn spawn_batched<T: BatchServerTransport>(
        transports: Vec<T>,
        snapshots: SnapshotHandle,
        cfg: ServerConfig,
    ) -> AuthServer {
        let stop = Arc::new(AtomicBool::new(false));
        let shards = transports.len();
        let mut counters = Vec::new();
        let mut handles = Vec::new();
        for (shard, transport) in transports.into_iter().enumerate() {
            let c = Arc::new(ShardCounters::default());
            counters.push(c.clone());
            let stop = stop.clone();
            let snapshots = snapshots.clone();
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                run_shard_batched(shard, shards, transport, snapshots, cfg, stop, c)
            }));
        }
        AuthServer {
            stop,
            counters,
            handles,
        }
    }

    /// Live per-shard counters (for mid-run reporting).
    pub fn counters(&self) -> &[Arc<ShardCounters>] {
        &self.counters
    }

    /// Total queries answered so far across shards.
    pub fn total_queries(&self) -> u64 {
        self.counters
            .iter()
            // relaxed-ok: monotonic counter read for reporting; no data
            // is published through it
            .map(|c| c.queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Signals every shard to stop and collects their reports.
    pub fn stop_join(self) -> Vec<ShardReport> {
        self.stop.store(true, Ordering::SeqCst);
        self.handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    }
}

/// Per-generation state a shard derives once per snapshot swap instead of
/// per query.
struct GenState {
    generation: u64,
    whoami: DnsName,
    uses_ecs: bool,
    top_ip: Ipv4Addr,
}

/// Per-query stage capture filled in by [`ShardState::serve`]. Timestamps
/// are only taken when `timed` is set (telemetry configured), so
/// unobserved servers pay nothing beyond the branch.
#[derive(Debug)]
pub struct QueryStages {
    /// Whether stage timestamps are taken at all.
    pub timed: bool,
    /// Wire-decode time.
    pub decode_ns: u64,
    /// Cache probe time; on a hit this includes the replay (probe plus
    /// patch together are "what the cache saved us").
    pub cache_ns: u64,
    /// Snapshot-routing time on a miss.
    pub route_ns: u64,
    /// Wire-encode time on a miss (a hit writes the reply during the
    /// cache stage).
    pub encode_ns: u64,
    /// How the query was resolved.
    pub outcome: TraceOutcome,
}

impl QueryStages {
    /// Fresh per-query stages; timestamps are taken only when `timed`.
    pub fn new(timed: bool) -> QueryStages {
        QueryStages {
            timed,
            decode_ns: 0,
            cache_ns: 0,
            route_ns: 0,
            encode_ns: 0,
            outcome: TraceOutcome::Uncached,
        }
    }
}

/// How [`ShardState::serve`] disposed of one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// A full response is in [`ShardState::reply`].
    Replied {
        /// Whether it was replayed from the answer cache.
        cache_hit: bool,
        /// Whether the reply was truncated to the client's UDP payload
        /// limit (TC=1 set; the client should retry over TCP).
        truncated: bool,
    },
    /// The datagram did not decode but the header survived; a FORMERR
    /// echoing its ID is in [`ShardState::reply`].
    FormErr,
    /// Admission control shed the query: it decoded fine but the
    /// compute path is over budget; a REFUSED echoing its ID is in
    /// [`ShardState::reply`].
    Shed,
    /// The datagram did not even carry a usable header; nothing to send.
    Dropped,
}

/// The buffers a shard reuses across queries. `query` keeps its section
/// `Vec`s' capacity between decodes; `reply` keeps its bytes' capacity
/// between encodes/replays — after warm-up neither touches the allocator.
#[derive(Default)]
pub struct ScratchBuffers {
    query: Message,
    reply: Vec<u8>,
}

/// Everything one shard owns: scratch buffers, the answer cache, and the
/// derived per-generation state. [`AuthServer`] drives one per thread;
/// benchmarks and allocation tests can drive one directly with
/// [`ShardState::serve`].
pub struct ShardState {
    scratch: ScratchBuffers,
    cache: Option<AnswerCache>,
    admission: Option<TokenBucket>,
    gen: Option<GenState>,
    generations_seen: u64,
}

impl ShardState {
    /// Fresh shard state; `cache` bounds the answer cache (`None`
    /// disables it).
    pub fn new(cache: Option<CacheConfig>) -> ShardState {
        ShardState {
            scratch: ScratchBuffers::default(),
            cache: cache.map(AnswerCache::new),
            admission: None,
            gen: None,
            generations_seen: 0,
        }
    }

    /// Same state with compute-path admission control: the bucket is
    /// born full at `now` so a fresh shard's warm-up misses are not
    /// shed.
    pub fn with_admission(mut self, cfg: &AdmissionConfig, now: Instant) -> ShardState {
        self.admission = Some(TokenBucket::new(cfg, now));
        self
    }

    /// Syncs the shard to `snap`'s generation: on a swap, transitions the
    /// answer cache — keyed lazy invalidation when the snapshot carries a
    /// delta from the immediately preceding generation, a wholesale clear
    /// otherwise — and re-derives the per-generation constants. Returns
    /// true when the generation changed (the first observation counts).
    pub fn observe(&mut self, snap: &Snapshot) -> bool {
        if self.gen.as_ref().map(|g| g.generation) == Some(snap.generation) {
            return false;
        }
        // A shard's very first observation only initializes state —
        // nothing to clear yet.
        if let Some(g) = &self.gen {
            // A delta is only sound against the generation it was diffed
            // from; a shard that skipped generations must fall back to
            // the clear path (begin_generation(None)).
            let delta = snap
                .delta
                .as_ref()
                .filter(|_| snap.generation == g.generation + 1);
            if let Some(c) = self.cache.as_mut() {
                c.begin_generation(delta);
            }
        }
        self.gen = Some(GenState {
            generation: snap.generation,
            whoami: snap.map.whoami_name(),
            uses_ecs: snap.map.policy().uses_ecs(),
            top_ip: snap.map.top_level_ip(),
        });
        self.generations_seen += 1;
        true
    }

    /// Serves one datagram end to end: decode into the shard scratch,
    /// consult the cache, compute-and-encode or replay-and-patch into the
    /// reply buffer, and truncate to `cap`'s effective limit when the
    /// reply overflows it (RFC 2181 §9 — whole records dropped, TC set).
    /// Requires a prior [`ShardState::observe`] call for the snapshot
    /// `map` came from. Allocation-free on the cached-hit path once the
    /// buffers are warm, truncation included.
    pub fn serve(
        &mut self,
        map: &eum_mapping::MappingSystem,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        cap: ReplyCap,
        stages: &mut QueryStages,
    ) -> ServeOutcome {
        // lint: allow(serve-panic) — API precondition, documented on serve(); every
        // caller observes the snapshot first
        let gen = self.gen.as_ref().expect("observe() must precede serve()");
        let ScratchBuffers { query, reply } = &mut self.scratch;

        let t_decode = stages.timed.then(Instant::now);
        if decode_message_into(payload, query).is_err() {
            stages.decode_ns = elapsed_ns(t_decode);
            stages.outcome = TraceOutcome::Malformed;
            return if formerr_into(payload, reply) {
                ServeOutcome::FormErr
            } else {
                ServeOutcome::Dropped
            };
        }
        stages.decode_ns = elapsed_ns(t_decode);

        // The client's effective reply budget, fixed by the query's OPT
        // before any answer is built (RFC 6891 §6.2.3).
        let limit = cap.limit(query.opt().map(|o| o.udp_payload_size));

        let ctx = QueryContext {
            resolver_ip,
            now_ms: 0,
        };

        // Only single-question catalog-name queries are memoizable (the
        // cached wire echoes the question section verbatim): whoami is
        // TTL-0 by design and error responses are cheap to recompute.
        let cacheable_shape = self.cache.is_some()
            && query.questions.len() == 1
            // lint: allow(serve-index) — questions.len() == 1 checked on the previous arm
            && query.questions[0].name != gen.whoami;
        if !cacheable_shape {
            // Uncacheable shapes always route: price them like any other
            // compute-path query.
            if let Some(b) = self.admission.as_mut() {
                if !b.try_take(Instant::now()) {
                    stages.outcome = TraceOutcome::Shed;
                    return if refused_into(payload, reply) {
                        ServeOutcome::Shed
                    } else {
                        ServeOutcome::Dropped
                    };
                }
            }
            let t_route = stages.timed.then(Instant::now);
            let resp = map.answer(server_ip, query, &ctx);
            stages.route_ns = elapsed_ns(t_route);
            let t_encode = stages.timed.then(Instant::now);
            encode_message_into(&resp, reply);
            let truncated = truncate_in_place(reply, limit);
            stages.encode_ns = elapsed_ns(t_encode);
            return ServeOutcome::Replied {
                cache_hit: false,
                truncated,
            };
        }
        // lint: allow(serve-panic) — cacheable_shape implies cache.is_some()
        let cache = self.cache.as_mut().expect("checked above");
        // lint: allow(serve-index) — cacheable_shape implies exactly one question
        let q = &query.questions[0];
        let now = Instant::now();
        let ecs = query.ecs().copied();
        // The end-user (scoped) path exists only at low-level servers; the
        // top level always delegates per resolver, whatever the query
        // carries.
        let eu_path = gen.uses_ecs && ecs.is_some() && server_ip != gen.top_ip;

        let hit = if let (true, Some(e)) = (eu_path, ecs.as_ref()) {
            cache.lookup_scoped(&q.name, q.rtype, e.addr, e.source_prefix, now)
        } else {
            cache.lookup_resolver(&q.name, q.rtype, ctx.resolver_ip, server_ip, now)
        };
        if let Some(entry) = hit {
            entry.replay_into(query.id, query.flags.rd, ecs.as_ref(), now, reply);
            // The template is stored untruncated; each replay is capped
            // against *this* query's advertised size — a patch in place
            // on the memcpy'd bytes, still alloc-free.
            let truncated = truncate_in_place(reply, limit);
            stages.outcome = TraceOutcome::CacheHit;
            if stages.timed {
                stages.cache_ns = now.elapsed().as_nanos() as u64;
            }
            return ServeOutcome::Replied {
                cache_hit: true,
                truncated,
            };
        }
        if stages.timed {
            stages.cache_ns = now.elapsed().as_nanos() as u64;
        }
        // Cache miss: the expensive class. Admission prices it here —
        // an empty bucket sheds the query as REFUSED before any routing
        // work, which is exactly the cheapest-first priority (a
        // cache-busting flood is all misses; cached legit hits never
        // reach this point).
        if let Some(b) = self.admission.as_mut() {
            if !b.try_take(now) {
                stages.outcome = TraceOutcome::Shed;
                return if refused_into(payload, reply) {
                    ServeOutcome::Shed
                } else {
                    ServeOutcome::Dropped
                };
            }
        }
        stages.outcome = TraceOutcome::Computed;

        let t_route = stages.timed.then(Instant::now);
        let resp = map.answer(server_ip, query, &ctx);
        stages.route_ns = elapsed_ns(t_route);
        // Cache only clean answers with a real TTL; the minimum spans
        // every returned record (delegations live in
        // authorities/additionals).
        let min_ttl = resp
            .answers
            .iter()
            .chain(resp.authorities.iter())
            .chain(
                resp.additionals
                    .iter()
                    .filter(|r| !matches!(r.rdata, eum_dns::RData::Opt(_))),
            )
            .map(|r| r.ttl)
            .min();
        let cacheable = resp.flags.rcode == Rcode::NoError && min_ttl.is_some_and(|t| t > 0);
        if cacheable {
            // lint: allow(serve-panic) — cacheable implies min_ttl.is_some()
            let entry = CachedAnswer::from_response(&resp, min_ttl.expect("checked"), now);
            match (eu_path, resp.ecs().map(|e| e.scope_prefix)) {
                // End-user answer with a real scope: valid for the whole
                // scope block.
                (true, Some(scope)) if scope > 0 => {
                    // lint: allow(serve-panic) — eu_path is only true when ecs.is_some()
                    let e = ecs.as_ref().expect("eu_path implies ecs");
                    cache.insert_scoped(q.name.clone(), q.rtype, Prefix::of(e.addr, scope), entry);
                }
                // Scope-0 answer to an ECS query (unknown block fallback):
                // not cached. It must not enter the scoped table (a /0
                // entry would shadow real blocks) and the resolver table
                // is for queries that will probe it again — ECS queries
                // never do.
                (true, _) => {}
                // NS path (no ECS, policy ignores it, or top-level
                // delegation): per-resolver at this serving IP.
                (false, _) => {
                    cache.insert_resolver(
                        q.name.clone(),
                        q.rtype,
                        ctx.resolver_ip,
                        server_ip,
                        entry,
                    );
                }
            }
        }
        let t_encode = stages.timed.then(Instant::now);
        encode_message_into(&resp, reply);
        let truncated = truncate_in_place(reply, limit);
        stages.encode_ns = elapsed_ns(t_encode);
        ServeOutcome::Replied {
            cache_hit: false,
            truncated,
        }
    }

    /// The bytes to send for the last [`ShardState::serve`] that returned
    /// [`ServeOutcome::Replied`] or [`ServeOutcome::FormErr`].
    pub fn reply(&self) -> &[u8] {
        &self.scratch.reply
    }

    /// The last successfully decoded query (valid after a
    /// [`ServeOutcome::Replied`]; used for trace fields).
    pub fn last_query(&self) -> &Message {
        &self.scratch.query
    }

    /// The shard's answer cache, when enabled.
    pub fn cache(&self) -> Option<&AnswerCache> {
        self.cache.as_ref()
    }

    /// How many snapshot generations this shard has observed.
    pub fn generations_seen(&self) -> u64 {
        self.generations_seen
    }
}

fn elapsed_ns(since: Option<Instant>) -> u64 {
    since.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
}

fn run_shard<T: ServerTransport>(
    shard: usize,
    shards: usize,
    mut transport: T,
    snapshots: SnapshotHandle,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<ShardCounters>,
) -> ShardReport {
    let mut state = ShardState::new(cfg.cache);
    let admission_on = cfg.admission.is_some();
    if let Some(a) = &cfg.admission {
        state = state.with_admission(a, Instant::now());
    }
    // The shard's snapshot view: steady-state revalidation is one atomic
    // load — no lock, no Arc clone per query.
    let mut reader = snapshots.reader();
    let mut tel = cfg
        .telemetry
        .as_ref()
        .map(|t| ShardInstruments::register(&t.registry, shard, shards));
    let trace = cfg.telemetry.as_ref().and_then(|t| t.trace.clone());
    let mut dropped = 0u64;
    let mut malformed = 0u64;
    let mut admitted = 0u64;
    let mut received = 0u64;
    // relaxed-ok: the stop flag carries no data; shards only need to see
    // it eventually, and stop_join's SeqCst store plus thread join gives
    // the final synchronization
    while !stop.load(Ordering::Relaxed) {
        let dg = match transport.recv(cfg.recv_timeout) {
            Ok(Some(dg)) => dg,
            Ok(None) => continue,
            Err(_) => continue,
        };
        received += 1;
        // The rate lives on the ring so operators can retune it mid-run.
        let sampled = trace
            .as_ref()
            .is_some_and(|ring| ring.should_sample(received));
        let timed = tel.is_some();
        let t_start = timed.then(Instant::now);

        let snap = reader.snapshot();
        if state.observe(snap) {
            if let Some(t) = tel.as_ref() {
                t.generation.set(snap.generation as f64);
            }
        }
        let server_ip = dg.server_ip.unwrap_or(cfg.default_server_ip);
        let cap = if dg.stream {
            ReplyCap::Stream
        } else {
            ReplyCap::Datagram {
                transport_max: cfg.max_udp_reply,
            }
        };
        let mut stages = QueryStages::new(timed);
        let outcome = state.serve(
            &snap.map,
            server_ip,
            dg.resolver_ip,
            &dg.payload,
            cap,
            &mut stages,
        );
        let total_ns = elapsed_ns(t_start);
        match outcome {
            ServeOutcome::Replied {
                cache_hit,
                truncated,
            } => {
                // relaxed-ok: per-shard monotonic counters; readers only sum
                counters.queries.fetch_add(1, Ordering::Relaxed);
                if cache_hit {
                    // relaxed-ok: per-shard monotonic counter
                    counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                if truncated {
                    // relaxed-ok: per-shard monotonic counter
                    counters.truncated.fetch_add(1, Ordering::Relaxed);
                }
                if admission_on && !cache_hit {
                    admitted += 1;
                }
                let _ = transport.send(&dg.peer, state.reply());
                if let Some(t) = tel.as_mut() {
                    t.queries.inc();
                    if truncated {
                        t.truncated.inc();
                    }
                    if admission_on && !cache_hit {
                        t.admitted.inc();
                    }
                    t.record_stages(
                        stages.decode_ns,
                        stages.cache_ns,
                        stages.route_ns,
                        stages.encode_ns,
                        total_ns,
                    );
                    if let Some(c) = state.cache() {
                        t.sync_cache(c.stats(), c.len());
                    }
                }
                if sampled {
                    if let Some(ring) = trace.as_ref() {
                        push_query_trace(
                            ring,
                            shard,
                            snap.generation,
                            &state,
                            truncated,
                            &stages,
                            total_ns,
                        );
                    }
                }
            }
            ServeOutcome::FormErr => {
                // relaxed-ok: per-shard monotonic counter
                counters.malformed.fetch_add(1, Ordering::Relaxed);
                malformed += 1;
                // relaxed-ok: per-shard monotonic counter
                counters.queries.fetch_add(1, Ordering::Relaxed);
                let _ = transport.send(&dg.peer, state.reply());
                if let Some(t) = tel.as_ref() {
                    t.queries.inc();
                    t.formerr.inc();
                }
                if sampled {
                    if let Some(ring) = trace.as_ref() {
                        push_malformed_trace(ring, shard, snap.generation, &stages, total_ns);
                    }
                }
            }
            ServeOutcome::Shed => {
                // relaxed-ok: per-shard monotonic counters; readers only sum
                counters.queries.fetch_add(1, Ordering::Relaxed);
                // relaxed-ok: per-shard monotonic counter
                counters.shed.fetch_add(1, Ordering::Relaxed);
                let _ = transport.send(&dg.peer, state.reply());
                if let Some(t) = tel.as_ref() {
                    t.queries.inc();
                    t.shed.inc();
                }
                if sampled {
                    if let Some(ring) = trace.as_ref() {
                        push_query_trace(
                            ring,
                            shard,
                            snap.generation,
                            &state,
                            false,
                            &stages,
                            total_ns,
                        );
                    }
                }
            }
            ServeOutcome::Dropped => {
                // relaxed-ok: per-shard monotonic counter
                counters.malformed.fetch_add(1, Ordering::Relaxed);
                malformed += 1;
                dropped += 1;
                if let Some(t) = tel.as_ref() {
                    t.dropped.inc();
                }
                if sampled {
                    if let Some(ring) = trace.as_ref() {
                        push_malformed_trace(ring, shard, snap.generation, &stages, total_ns);
                    }
                }
            }
        }
    }
    ShardReport {
        shard,
        // relaxed-ok: the shard thread itself wrote every increment
        queries: counters.queries.load(Ordering::Relaxed),
        dropped,
        malformed,
        // relaxed-ok: the shard thread itself wrote every increment
        truncated: counters.truncated.load(Ordering::Relaxed),
        // relaxed-ok: the shard thread itself wrote every increment
        shed: counters.shed.load(Ordering::Relaxed),
        admitted,
        cache: state.cache().map(|c| c.stats()).unwrap_or_default(),
        generations_seen: state.generations_seen(),
    }
}

/// The batched sibling of [`run_shard`]: one `recv_batch` feeds the same
/// per-query serve path, all replies are staged by slot, and one `flush`
/// sends them — so a warm shard makes two syscalls per *batch* instead
/// of two per query. Batched transports are datagram-only, so every
/// query gets the UDP reply cap.
fn run_shard_batched<T: BatchServerTransport>(
    shard: usize,
    shards: usize,
    mut transport: T,
    snapshots: SnapshotHandle,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<ShardCounters>,
) -> ShardReport {
    transport.on_thread_start();
    let mut state = ShardState::new(cfg.cache);
    let admission_on = cfg.admission.is_some();
    if let Some(a) = &cfg.admission {
        state = state.with_admission(a, Instant::now());
    }
    // The shard's snapshot view: steady-state revalidation is one atomic
    // load — no lock, no Arc clone per batch.
    let mut reader = snapshots.reader();
    let mut tel = cfg
        .telemetry
        .as_ref()
        .map(|t| ShardInstruments::register(&t.registry, shard, shards));
    let trace = cfg.telemetry.as_ref().and_then(|t| t.trace.clone());
    let cap = ReplyCap::Datagram {
        transport_max: cfg.max_udp_reply,
    };
    let mut dropped = 0u64;
    let mut malformed = 0u64;
    let mut admitted = 0u64;
    let mut received = 0u64;
    // The query bytes are copied out of the transport's receive slot so
    // the slot can be restaged with the reply while `serve` runs.
    // lint: allow(serve-alloc) — one-time setup before the serve loop; the
    // capacity covers every datagram the transport can hand us
    let mut qbuf: Vec<u8> = Vec::with_capacity(MAX_DATAGRAM);
    // relaxed-ok: the stop flag carries no data; shards only need to see
    // it eventually, and stop_join's SeqCst store plus thread join gives
    // the final synchronization
    while !stop.load(Ordering::Relaxed) {
        let n = match transport.recv_batch(cfg.recv_timeout) {
            Ok(0) => continue,
            Ok(n) => n,
            Err(_) => continue,
        };
        // One snapshot revalidation serves the whole batch: every
        // datagram in it was received before this instant, so none can
        // require a newer generation than the one we pin here.
        let snap = reader.snapshot();
        if state.observe(snap) {
            if let Some(t) = tel.as_ref() {
                t.generation.set(snap.generation as f64);
            }
        }
        for i in 0..n {
            received += 1;
            let sampled = trace
                .as_ref()
                .is_some_and(|ring| ring.should_sample(received));
            let timed = tel.is_some();
            let t_start = timed.then(Instant::now);
            let (resolver_ip, server_ip) = {
                let dg = transport.datagram(i);
                qbuf.clear();
                qbuf.extend_from_slice(dg.payload);
                (dg.resolver_ip, dg.server_ip)
            };
            let server_ip = server_ip.unwrap_or(cfg.default_server_ip);
            let mut stages = QueryStages::new(timed);
            let outcome = state.serve(&snap.map, server_ip, resolver_ip, &qbuf, cap, &mut stages);
            let total_ns = elapsed_ns(t_start);
            match outcome {
                ServeOutcome::Replied {
                    cache_hit,
                    truncated,
                } => {
                    // relaxed-ok: per-shard monotonic counters; readers only sum
                    counters.queries.fetch_add(1, Ordering::Relaxed);
                    if cache_hit {
                        // relaxed-ok: per-shard monotonic counter
                        counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    if truncated {
                        // relaxed-ok: per-shard monotonic counter
                        counters.truncated.fetch_add(1, Ordering::Relaxed);
                    }
                    if admission_on && !cache_hit {
                        admitted += 1;
                    }
                    transport.stage_reply(i, state.reply());
                    if let Some(t) = tel.as_mut() {
                        t.queries.inc();
                        if truncated {
                            t.truncated.inc();
                        }
                        if admission_on && !cache_hit {
                            t.admitted.inc();
                        }
                        t.record_stages(
                            stages.decode_ns,
                            stages.cache_ns,
                            stages.route_ns,
                            stages.encode_ns,
                            total_ns,
                        );
                        if let Some(c) = state.cache() {
                            t.sync_cache(c.stats(), c.len());
                        }
                    }
                    if sampled {
                        if let Some(ring) = trace.as_ref() {
                            push_query_trace(
                                ring,
                                shard,
                                snap.generation,
                                &state,
                                truncated,
                                &stages,
                                total_ns,
                            );
                        }
                    }
                }
                ServeOutcome::FormErr => {
                    // relaxed-ok: per-shard monotonic counter
                    counters.malformed.fetch_add(1, Ordering::Relaxed);
                    malformed += 1;
                    // relaxed-ok: per-shard monotonic counter
                    counters.queries.fetch_add(1, Ordering::Relaxed);
                    transport.stage_reply(i, state.reply());
                    if let Some(t) = tel.as_ref() {
                        t.queries.inc();
                        t.formerr.inc();
                    }
                    if sampled {
                        if let Some(ring) = trace.as_ref() {
                            push_malformed_trace(ring, shard, snap.generation, &stages, total_ns);
                        }
                    }
                }
                ServeOutcome::Shed => {
                    // relaxed-ok: per-shard monotonic counters; readers only sum
                    counters.queries.fetch_add(1, Ordering::Relaxed);
                    // relaxed-ok: per-shard monotonic counter
                    counters.shed.fetch_add(1, Ordering::Relaxed);
                    transport.stage_reply(i, state.reply());
                    if let Some(t) = tel.as_ref() {
                        t.queries.inc();
                        t.shed.inc();
                    }
                    if sampled {
                        if let Some(ring) = trace.as_ref() {
                            push_query_trace(
                                ring,
                                shard,
                                snap.generation,
                                &state,
                                false,
                                &stages,
                                total_ns,
                            );
                        }
                    }
                }
                ServeOutcome::Dropped => {
                    // relaxed-ok: per-shard monotonic counter
                    counters.malformed.fetch_add(1, Ordering::Relaxed);
                    malformed += 1;
                    dropped += 1;
                    if let Some(t) = tel.as_ref() {
                        t.dropped.inc();
                    }
                    if sampled {
                        if let Some(ring) = trace.as_ref() {
                            push_malformed_trace(ring, shard, snap.generation, &stages, total_ns);
                        }
                    }
                }
            }
        }
        let _ = transport.flush();
    }
    ShardReport {
        shard,
        // relaxed-ok: the shard thread itself wrote every increment
        queries: counters.queries.load(Ordering::Relaxed),
        dropped,
        malformed,
        // relaxed-ok: the shard thread itself wrote every increment
        truncated: counters.truncated.load(Ordering::Relaxed),
        // relaxed-ok: the shard thread itself wrote every increment
        shed: counters.shed.load(Ordering::Relaxed),
        admitted,
        cache: state.cache().map(|c| c.stats()).unwrap_or_default(),
        generations_seen: state.generations_seen(),
    }
}

fn sat32(v: u64) -> u32 {
    v.min(u32::MAX as u64) as u32
}

/// Stamps one served query into the trace ring. The 16-bit wire id the
/// query arrived with is the only identity the authoritative ever sees,
/// so it becomes the record's trace id; span stitching joins it to the
/// resolver's ring through the low 16 bits of the full propagated id.
/// Alloc-free (a `TraceRing::push` of packed words).
fn push_query_trace(
    ring: &TraceRing,
    shard: usize,
    generation: u64,
    state: &ShardState,
    truncated: bool,
    stages: &QueryStages,
    total_ns: u64,
) {
    let q = state.last_query();
    ring.push(&QueryTrace {
        seq: 0,
        trace_id: q.id as u32,
        hop: TraceHop::Authd,
        shard: shard as u16,
        generation,
        ecs_scope: q.ecs().map(|e| e.source_prefix),
        outcome: stages.outcome,
        truncated,
        decode_ns: sat32(stages.decode_ns),
        cache_ns: sat32(stages.cache_ns),
        route_ns: sat32(stages.route_ns),
        encode_ns: sat32(stages.encode_ns),
        total_ns: sat32(total_ns),
    });
}

/// The malformed sibling: no decoded query to pull a wire id or ECS
/// scope from, so the record stays unattributable (trace id 0).
fn push_malformed_trace(
    ring: &TraceRing,
    shard: usize,
    generation: u64,
    stages: &QueryStages,
    total_ns: u64,
) {
    ring.push(&QueryTrace {
        shard: shard as u16,
        generation,
        outcome: TraceOutcome::Malformed,
        decode_ns: sat32(stages.decode_ns),
        total_ns: sat32(total_ns),
        ..QueryTrace::blank(0, TraceHop::Authd)
    });
}

/// Stamps a minimal FORMERR into `out` when at least the 12-byte header
/// survived: the two ID bytes are echoed, QR is set, the RCODE is
/// FORMERR, and every count is zero. No `Message` is built and nothing
/// allocates once `out` has capacity.
fn formerr_into(payload: &[u8], out: &mut Vec<u8>) -> bool {
    if payload.len() < 12 {
        return false;
    }
    out.clear();
    // lint: allow(serve-index) — payload.len() ≥ 12 checked above
    out.extend_from_slice(&payload[..2]);
    out.extend_from_slice(&[0x80, 0x01]); // QR=1, opcode 0, RCODE=FORMERR
    out.extend_from_slice(&[0; 8]); // QD/AN/NS/AR counts all zero
    true
}

/// The shed sibling of [`formerr_into`]: a minimal REFUSED (RCODE 5)
/// echoing the query ID, stamped when admission control rejects a
/// compute-path query. Same twelve bytes, no encode, no allocation once
/// `out` has capacity — shedding must stay cheaper than the cached hit
/// it protects.
fn refused_into(payload: &[u8], out: &mut Vec<u8>) -> bool {
    if payload.len() < 12 {
        return false;
    }
    out.clear();
    // lint: allow(serve-index) — payload.len() ≥ 12 checked above
    out.extend_from_slice(&payload[..2]);
    out.extend_from_slice(&[0x80, 0x05]); // QR=1, opcode 0, RCODE=REFUSED
    out.extend_from_slice(&[0; 8]); // QD/AN/NS/AR counts all zero
    true
}
