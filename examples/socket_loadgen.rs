//! Multi-process closed-loop load generation over real kernel sockets:
//! the `SO_REUSEPORT` + `recvmmsg`/`sendmmsg` batched transport against
//! the single-socket `recv_from` baseline, measured from separate client
//! *processes* so the generator never shares an allocator, a scheduler
//! run-queue decision, or a libc lock with the server it is measuring.
//!
//!     cargo run --release --example socket_loadgen                   # comparison run
//!     cargo run --release --example socket_loadgen -- --smoke        # tiny CI check
//!     cargo run --release --example socket_loadgen -- --scrape-smoke # live /metrics check
//!
//! The parent builds the seeded world, spawns the authoritative server
//! in-process (batched shards sharing one UDP port, or the plain
//! one-socket-per-shard baseline), then re-executes itself with
//! `--worker`: each worker rebuilds the same deterministic world and
//! drives a *windowed* closed loop — `window` sockets each keep one
//! query in flight, so the shard sockets queue multi-datagram bursts and
//! `recvmmsg` has real batches to harvest (a strict one-in-flight loop
//! never forms a batch and measures only scheduler noise). Every reply
//! is checked (matching ID, response bit) and every 16th fully decoded
//! and verified (NOERROR, at least one A answer) so client-side decode
//! cost does not drown the server-side syscall difference being
//! measured; each worker prints one machine-readable line, the
//! parent aggregates them into one `RESULT mode=...` line per
//! configuration, and `scripts/bench_record.sh pr6` parses exactly those
//! lines into `BENCH_pr6.json`.
//!
//! Worker demand streams differ per process; both configurations serve
//! the same world, shard count, and query budget. On a single-core host
//! the win is pure syscall arithmetic: a warm batch of N datagrams costs
//! the server 2 kernel entries instead of 2N.

use eum_authd::{AuthServer, ServerConfig, SnapshotHandle, TelemetryConfig, UdpTransport};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, Question, Rcode};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_net::{BatchConfig, ReuseportUdpTransport, ScrapeServer};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::{Registry, TraceRing, WindowCapturer};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpStream, UdpSocket};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0x10AD6;
const SHARDS: usize = 2;
const WORKERS: usize = 2;

fn world() -> (Internet, ContentCatalog, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, catalog, map)
}

/// Run sizes: (queries per worker, in-flight window per worker,
/// trials per mode — wall-clock noise on a shared host is filtered by
/// taking each mode's best trial, the standard bench convention).
fn sizes(smoke: bool) -> (usize, usize, usize) {
    if smoke {
        (200, 4, 1)
    } else {
        (8_000, 32, 5)
    }
}

// ---------------------------------------------------------------- worker

/// The fixed per-worker probe set: ECS queries across client blocks plus
/// plain (no-ECS) queries, over the catalog's hosted names.
fn probe_set(net: &Internet, catalog: &ContentCatalog, worker: u64) -> Vec<Vec<u8>> {
    let mut probes = Vec::new();
    for (i, block) in net
        .blocks
        .iter()
        .skip(worker as usize * 7)
        .take(12)
        .enumerate()
    {
        let domain = &catalog.domains[(worker as usize + i) % catalog.domains.len()];
        let opt = (i % 8 != 0).then(|| OptData::with_ecs(EcsOption::query(block.client_ip(), 24)));
        // The ID is patched per send; 0 here.
        let q = Message::query(0, Question::a(domain.cdn_name.clone()), opt);
        probes.push(encode_message(&q));
    }
    probes
}

/// `--worker <addrs_csv> <queries> <window> <worker_idx>`: drive a
/// windowed closed loop against the addresses and print one
/// `ok=... p99_us=...` line.
fn worker_main(args: &[String]) {
    let addrs: Vec<SocketAddr> = args[0]
        .split(',')
        .map(|a| a.parse().expect("worker: bad socket address"))
        .collect();
    let queries: usize = args[1].parse().expect("worker: bad query count");
    let window: usize = args[2].parse().expect("worker: bad window");
    let idx: u64 = args[3].parse().expect("worker: bad worker index");

    let (net, catalog, _map) = world();
    let probes = probe_set(&net, &catalog, idx);

    // One socket per window slot: each keeps exactly one query in
    // flight, so `window` datagrams are queued server-side at any time.
    let sockets: Vec<UdpSocket> = (0..window)
        .map(|i| {
            let s = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("worker: bind socket");
            s.connect(addrs[i % addrs.len()])
                .expect("worker: connect socket");
            s.set_read_timeout(Some(Duration::from_secs(2)))
                .expect("worker: timeout");
            s
        })
        .collect();

    let mut payload = vec![0u8; 512];
    let mut rbuf = vec![0u8; 4096];
    let mut pending: Vec<(u16, Instant)> = vec![(0, Instant::now()); window];
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(queries);
    let (mut sent, mut ok, mut err, mut bad) = (0usize, 0u64, 0u64, 0u64);
    let start = Instant::now();
    while sent < queries {
        let burst = window.min(queries - sent);
        // Fill the window: one send per socket, each with a fresh ID.
        for (slot, sock) in sockets.iter().enumerate().take(burst) {
            let probe = &probes[(sent + slot) % probes.len()];
            let id = (sent + slot) as u16;
            payload.clear();
            payload.extend_from_slice(probe);
            payload[0] = (id >> 8) as u8;
            payload[1] = (id & 0xff) as u8;
            pending[slot] = (id, Instant::now());
            sock.send(&payload).expect("worker: send");
        }
        // Drain it: every socket gets back exactly its own reply.
        for (slot, sock) in sockets.iter().enumerate().take(burst) {
            match sock.recv(&mut rbuf) {
                Ok(n) => {
                    let (id, t_send) = pending[slot];
                    // Cheap wire check on every reply; full decode +
                    // verification on a 1-in-16 sample.
                    let id_ok = n >= 12
                        && rbuf[0] == (id >> 8) as u8
                        && rbuf[1] == (id & 0xff) as u8
                        && rbuf[2] & 0x80 != 0;
                    let good = id_ok
                        && ((sent + slot) % 16 != 0
                            || decode_message(&rbuf[..n]).is_ok_and(|resp| {
                                resp.flags.rcode == Rcode::NoError && !resp.answer_ips().is_empty()
                            }));
                    if good {
                        ok += 1;
                        latencies_ns.push(t_send.elapsed().as_nanos() as u64);
                    } else {
                        bad += 1;
                    }
                }
                Err(_) => err += 1,
            }
        }
        sent += burst;
    }
    let elapsed = start.elapsed();

    latencies_ns.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let i = ((latencies_ns.len() - 1) as f64 * q).round() as usize;
        latencies_ns[i] as f64 / 1_000.0
    };
    println!(
        "ok={ok} err={err} bad={bad} elapsed_s={:.6} p50_us={:.1} p99_us={:.1}",
        elapsed.as_secs_f64(),
        quantile(0.50),
        quantile(0.99),
    );
}

// ---------------------------------------------------------------- parent

/// One worker process's parsed result line.
struct WorkerResult {
    ok: u64,
    err: u64,
    bad: u64,
    elapsed_s: f64,
    p50_us: f64,
    p99_us: f64,
}

fn field(line: &str, key: &str) -> f64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .unwrap_or_else(|| panic!("worker line missing `{key}`: {line}"))
        .parse()
        .unwrap_or_else(|_| panic!("worker line has non-numeric `{key}`: {line}"))
}

fn parse_worker_line(line: &str) -> WorkerResult {
    WorkerResult {
        ok: field(line, "ok") as u64,
        err: field(line, "err") as u64,
        bad: field(line, "bad") as u64,
        elapsed_s: field(line, "elapsed_s"),
        p50_us: field(line, "p50_us"),
        p99_us: field(line, "p99_us"),
    }
}

/// Spawns `WORKERS` copies of this binary in `--worker` mode and collects
/// their result lines (workers run concurrently; stdout is read after
/// exit, so a line is either complete or the whole run fails loudly).
fn run_workers(addrs: &[SocketAddr], queries: usize, window: usize) -> Vec<WorkerResult> {
    let exe = std::env::current_exe().expect("current_exe");
    let csv = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let children: Vec<_> = (0..WORKERS)
        .map(|idx| {
            Command::new(&exe)
                .arg("--worker")
                .arg(&csv)
                .arg(queries.to_string())
                .arg(window.to_string())
                .arg(idx.to_string())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn worker process")
        })
        .collect();
    children
        .into_iter()
        .map(|mut child| {
            let mut out = String::new();
            child
                .stdout
                .take()
                .expect("worker stdout")
                .read_to_string(&mut out)
                .expect("read worker stdout");
            let status = child.wait().expect("wait for worker");
            assert!(status.success(), "worker exited with {status}");
            parse_worker_line(out.lines().last().expect("worker printed no result"))
        })
        .collect()
}

/// One mode's aggregated trial outcome.
struct ModeResult {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    ok: u64,
    err: u64,
    served: u64,
}

/// One full configuration trial: spawn the server, run the worker
/// fleet, aggregate, print a `TRIAL` line.
fn run_mode(mode: &str, smoke: bool) -> ModeResult {
    let (queries, window, _) = sizes(smoke);
    let (_, _, map) = world();
    let low = map.ns_ips()[1];
    let snapshots = SnapshotHandle::new(map);

    let (server, addrs) = match mode {
        "batched" => {
            let (transports, addrs) =
                ReuseportUdpTransport::bind_shards(SHARDS, &BatchConfig::default())
                    .expect("bind reuseport shards");
            let server = AuthServer::spawn_batched(transports, snapshots, ServerConfig::new(low));
            (server, addrs)
        }
        "single" => {
            let mut transports = Vec::new();
            let mut addrs = Vec::new();
            for _ in 0..SHARDS {
                let t = UdpTransport::bind().expect("bind single socket");
                addrs.push(t.local_addr().expect("local addr"));
                transports.push(t);
            }
            let server = AuthServer::spawn(transports, snapshots, ServerConfig::new(low));
            (server, addrs)
        }
        other => panic!("unknown mode {other}"),
    };

    let results = run_workers(&addrs, queries, window);
    let reports = server.stop_join();

    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let err: u64 = results.iter().map(|r| r.err).sum();
    let bad: u64 = results.iter().map(|r| r.bad).sum();
    // Workers run concurrently: wall-clock is the slowest worker, and the
    // fleet's throughput is total completions over that window.
    let elapsed = results.iter().map(|r| r.elapsed_s).fold(0.0, f64::max);
    let qps = ok as f64 / elapsed.max(1e-9);
    let p50 = if ok == 0 {
        0.0
    } else {
        results.iter().map(|r| r.p50_us * r.ok as f64).sum::<f64>() / ok as f64
    };
    let p99 = results.iter().map(|r| r.p99_us).fold(0.0, f64::max);
    let served: u64 = reports.iter().map(|r| r.queries).sum();

    let expected = (WORKERS * queries) as u64;
    assert_eq!(ok + err + bad, expected, "every exchange must be accounted");
    assert_eq!(bad, 0, "no response may fail verification");
    assert!(
        served >= ok,
        "the server must have served at least every verified exchange"
    );

    println!(
        "TRIAL mode={mode} qps={qps:.0} p50_us={p50:.1} p99_us={p99:.1} \
         ok={ok} err={err} bad={bad} served={served}"
    );
    ModeResult {
        qps,
        p50_us: p50,
        p99_us: p99,
        ok,
        err,
        served,
    }
}

// ---------------------------------------------------------- scrape smoke

/// One blocking HTTP/1.0 GET against the scrape endpoint; returns
/// (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("scrape read timeout");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: scrape\r\n\r\n").expect("send scrape request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read scrape response");
    let text = String::from_utf8(raw).expect("scrape response is utf-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("scrape response has a blank line");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

/// `--scrape-smoke`: run the batched server under smoke-sized load with
/// the full observability plane on — batch instruments, trace sampling,
/// a Reporter capturing windows, and a live [`ScrapeServer`] — and GET
/// the endpoints *while the load is running*. Prints `SCRAPE PASS` only
/// if every mid-run and post-run scrape checks out; `scripts/check.sh`
/// greps for that line.
fn run_scrape_smoke() {
    let (queries, window, _) = sizes(true);
    let (_, _, map) = world();
    let low = map.ns_ips()[1];

    let registry = Arc::new(Registry::new());
    let ring = Arc::new(TraceRing::new(1 << 12));
    let (mut transports, addrs) =
        ReuseportUdpTransport::bind_shards(SHARDS, &BatchConfig::default())
            .expect("bind reuseport shards");
    for (i, t) in transports.iter_mut().enumerate() {
        t.attach_metrics(&registry, i);
    }
    let cfg = ServerConfig::new(low)
        .with_telemetry(TelemetryConfig::metrics(registry.clone()).with_trace(ring.clone(), 16));
    let server = AuthServer::spawn_batched(transports, SnapshotHandle::new(map), cfg);

    let capturer = Arc::new(WindowCapturer::new(registry.clone(), 600));
    let reporter = WindowCapturer::start(capturer.clone(), Duration::from_millis(20));
    let scrape = ScrapeServer::spawn(
        SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
        registry.clone(),
        Some(capturer.clone()),
    )
    .expect("spawn scrape endpoint");
    println!("scrape endpoint: http://{}/metrics", scrape.addr());

    // Scrape concurrently with the load: every GET must come back 200
    // with parseable Prometheus text, no matter when it lands.
    let stop = Arc::new(AtomicBool::new(false));
    let mid_run_scrapes = Arc::new(AtomicU64::new(0));
    let scraper = {
        let stop = stop.clone();
        let n = mid_run_scrapes.clone();
        let addr = scrape.addr();
        std::thread::spawn(move || {
            // relaxed-ok: lone stop flag; the join below is the sync point
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = http_get(addr, "/metrics");
                assert!(status.contains("200"), "mid-run scrape status: {status}");
                assert!(
                    body.contains("# TYPE eum_authd_queries_total counter"),
                    "mid-run scrape lost the query counter family"
                );
                // relaxed-ok: monotonic scrape counter read after join
                n.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let results = run_workers(&addrs, queries, window);
    stop.store(true, Ordering::SeqCst);
    scraper.join().expect("scraper thread");
    let ok: u64 = results.iter().map(|r| r.ok).sum();
    assert!(ok > 0, "load generated no verified exchanges");

    // Post-run: the counters saw the load, the windows carried it, and
    // the health/error routes behave.
    let (status, metrics) = http_get(scrape.addr(), "/metrics");
    assert!(status.contains("200"), "final /metrics status: {status}");
    for family in [
        "eum_authd_queries_total",
        "eum_net_recv_batch_fill",
        "eum_net_sendmmsg_partial_total",
        "eum_trace_sample_rate",
    ] {
        assert!(metrics.contains(family), "missing family {family}");
    }
    for line in metrics.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("metrics line has a value");
        value.parse::<f64>().expect("metrics value parses");
    }
    let (status, body) = http_get(scrape.addr(), "/healthz");
    assert!(status.contains("200") && body == "ok\n", "healthz broken");
    let (status, jsonl) = http_get(scrape.addr(), "/timeseries.jsonl");
    assert!(status.contains("200"), "timeseries status: {status}");
    let windows = jsonl.lines().count();
    assert!(windows >= 2, "reporter captured {windows} windows");
    let (status, _) = http_get(scrape.addr(), "/no-such-route");
    assert!(status.contains("404"), "unknown route status: {status}");

    reporter.stop();
    let reports = server.stop_join();
    scrape.stop_join();
    let served: u64 = reports.iter().map(|r| r.queries).sum();
    let traces = ring.dump().len();
    assert!(served >= ok, "server served fewer than verified exchanges");
    assert!(traces > 0, "trace sampling captured nothing");
    println!(
        "SCRAPE PASS mid_run_scrapes={} windows={windows} served={served} traces={traces}",
        mid_run_scrapes.load(Ordering::SeqCst)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        worker_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("--scrape-smoke") {
        run_scrape_smoke();
        return;
    }
    let smoke = args.first().map(String::as_str) == Some("--smoke");

    let (queries, window, trials) = sizes(smoke);
    println!(
        "socket loadgen: {WORKERS} worker processes x {queries} queries \
         (window {window}), {SHARDS} server shards, best of {trials}{}",
        if smoke { " (smoke)" } else { "" }
    );

    // Interleave the trials so a slow system phase hits both modes, then
    // keep each mode's best.
    let mut best: [Option<ModeResult>; 2] = [None, None];
    for _ in 0..trials {
        for (slot, mode) in ["single", "batched"].into_iter().enumerate() {
            let r = run_mode(mode, smoke);
            if best[slot].as_ref().is_none_or(|b| r.qps > b.qps) {
                best[slot] = Some(r);
            }
        }
    }
    let single = best[0].take().expect("single trials ran");
    let batched = best[1].take().expect("batched trials ran");
    for (mode, r) in [("single", &single), ("batched", &batched)] {
        println!(
            "RESULT mode={mode} qps={:.0} p50_us={:.1} p99_us={:.1} ok={} err={} served={} \
             shards={SHARDS} workers={WORKERS} window={window}",
            r.qps, r.p50_us, r.p99_us, r.ok, r.err, r.served
        );
    }
    println!(
        "COMPARE batched_over_single={:.2}",
        batched.qps / single.qps.max(1e-9)
    );
}
