//! The §4.5 extrapolation, simulated rather than extrapolated.
//!
//! The paper predicts what ISPs would gain from adopting ECS: clients with
//! LDNSes ≥1000 miles away should see ~50% lower RTT and download time,
//! 500–1000-mile clients ~24%, and local-LDNS clients nothing. The paper
//! could only extrapolate from public-resolver measurements; this binary
//! *runs* the broad-adoption scenario (§8's call to action): every ISP and
//! enterprise resolver turns on ECS at the roll-out end day, and the
//! improvement is reported per client-LDNS distance band over non-public
//! loads only.
//!
//! Run with: `cargo run --release -p eum-repro --bin extrap45`
//! (pass `--quick` for a smaller, faster world)

use eum_repro::{f, Scale, SEED};
use eum_sim::scenario::{Scenario, ScenarioConfig};
use eum_sim::Metric;
use eum_stats::Table;

const BANDS: [(f64, f64, &str); 4] = [
    (0.0, 100.0, "< 100 (local LDNS)"),
    (100.0, 500.0, "100-500"),
    (500.0, 1000.0, "500-1000"),
    (1000.0, f64::INFINITY, ">= 1000"),
];

fn main() {
    let scale = Scale::from_args();
    let mut cfg = match scale {
        Scale::Paper => ScenarioConfig::paper(SEED),
        Scale::Quick => ScenarioConfig::small(SEED),
    };
    // Flip every resolver to ECS once the public roll-out completes.
    cfg.rollout.isp_ecs_day = Some(cfg.rollout.end_day);
    eprintln!("[extrap45] replaying the roll-out with broad ISP adoption…");
    let report = Scenario::build(cfg).run_rollout();

    let (pre_from, pre_to) = report.cfg.pre_window();
    let (post_from, post_to) = report.cfg.post_window();
    println!(
        "=== §4.5, simulated ({} scale, seed {SEED:#x}) ===\nEvery ISP/enterprise resolver adopts ECS at day {}; non-public loads only.\n",
        scale.label(),
        report.cfg.end_day
    );
    let mut t = Table::new([
        "client-LDNS distance (mi)",
        "RTT before",
        "RTT after",
        "RTT gain",
        "download before",
        "download after",
        "download gain",
    ]);
    for (lo, hi, label) in BANDS {
        let mean = |metric: Metric, from: u32, to: u32| -> f64 {
            let vals: Vec<f64> = report
                .rum
                .samples
                .iter()
                .filter(|s| {
                    !s.public_resolver
                        && s.day >= from
                        && s.day < to
                        && s.client_ldns_miles >= lo
                        && s.client_ldns_miles < hi
                })
                .map(|s| s.metric(metric))
                .collect();
            eum_stats::mean(vals).unwrap_or(f64::NAN)
        };
        let rtt_pre = mean(Metric::Rtt, pre_from, pre_to);
        let rtt_post = mean(Metric::Rtt, post_from, post_to);
        let dl_pre = mean(Metric::Download, pre_from, pre_to);
        let dl_post = mean(Metric::Download, post_from, post_to);
        t.row([
            label.to_string(),
            f(rtt_pre),
            f(rtt_post),
            format!("{:.0}%", 100.0 * (rtt_pre - rtt_post) / rtt_pre),
            f(dl_pre),
            f(dl_post),
            format!("{:.0}%", 100.0 * (dl_pre - dl_post) / dl_pre),
        ]);
    }
    println!("{t}");
    println!(
        "paper's extrapolation: ~50% RTT/download gain for >=1000-mile clients,\n~24% for 500-1000 miles, none for local LDNSes"
    );
}
