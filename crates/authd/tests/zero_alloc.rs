//! Proof of the serve path's allocation budget: once a shard's buffers
//! are warm, a cached-hit query — decode into the persistent scratch,
//! scoped cache probe, memcpy-and-patch replay — touches the heap zero
//! times. A counting `#[global_allocator]` makes the claim checkable: the
//! allocation count across thousands of hits must not move at all.
//!
//! This file holds exactly one `#[test]` on purpose: the counter is
//! global, so a second test running on a sibling thread would pollute it.

use eum_authd::{CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, SnapshotHandle};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, Question, Rcode};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

const SEED: u64 = 0xA110C;

/// Counts every path into the heap; frees are uncounted (a zero-alloc
/// steady state cannot free what it never allocated).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards verbatim to the System allocator, so the
// GlobalAlloc contract (layout validity, no unwinding, pointer ownership)
// is exactly System's; the counter increment touches only an atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as System::alloc; forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract; layout passed through.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as System::dealloc; forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was produced by the System forwards above with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as System::realloc; forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout originate from this allocator's System forwards.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as System::alloc_zeroed; forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract; layout passed through.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn world() -> (Internet, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, map)
}

fn query(id: u16, client: Option<Ipv4Addr>) -> Vec<u8> {
    encode_message(&Message::query(
        id,
        Question::a("e0.cdn.example".parse().unwrap()),
        client.map(|c| OptData::with_ecs(EcsOption::query(c, 24))),
    ))
}

#[test]
fn cached_hits_do_not_allocate() {
    let (net, mapping) = world();
    let client = net.blocks[0].client_ip();
    let resolver = net.resolvers[0].ip;
    let low = mapping.ns_ips()[1];
    let ecs_payload = query(7, Some(client));
    let plain_payload = query(8, None);
    let snapshots = SnapshotHandle::new(mapping);
    let snap = snapshots.current();

    let mut state = ShardState::new(Some(CacheConfig::default()));
    state.observe(&snap);

    // Warm-up: first serve of each shape computes and inserts; replays
    // after that settle every buffer's capacity.
    for payload in [&ecs_payload, &plain_payload] {
        let mut stages = QueryStages::new(false);
        let first = state.serve(
            &snap.map,
            low,
            resolver,
            payload,
            ReplyCap::udp(),
            &mut stages,
        );
        assert_eq!(
            first,
            ServeOutcome::Replied {
                cache_hit: false,
                truncated: false
            }
        );
        let again = state.serve(
            &snap.map,
            low,
            resolver,
            payload,
            ReplyCap::udp(),
            &mut stages,
        );
        assert_eq!(
            again,
            ServeOutcome::Replied {
                cache_hit: true,
                truncated: false
            }
        );
    }
    // Sanity: the replayed reply is a well-formed answer for the query,
    // and its TTLs were patched to the remaining lifetime — present and
    // no larger than the catalog's configured record TTLs.
    let replayed = decode_message(state.reply()).expect("replay decodes");
    assert_eq!(replayed.id, 8);
    assert_eq!(replayed.flags.rcode, Rcode::NoError);
    assert!(!replayed.answer_ips().is_empty());
    let max_ttl = replayed.answers.iter().map(|r| r.ttl).max().unwrap_or(0);
    assert!(
        (1..=86_400).contains(&max_ttl),
        "replayed TTLs must be live remaining values, got {max_ttl}"
    );

    let before = ALLOCS.load(Ordering::SeqCst);
    for round in 0..2_000u32 {
        for payload in [&ecs_payload, &plain_payload] {
            let mut stages = QueryStages::new(false);
            let out = state.serve(
                &snap.map,
                low,
                resolver,
                payload,
                ReplyCap::udp(),
                &mut stages,
            );
            assert_eq!(
                out,
                ServeOutcome::Replied {
                    cache_hit: true,
                    truncated: false
                }
            );
            assert!(!state.reply().is_empty());
        }
        // Interleave a malformed datagram: the FORMERR path must be
        // allocation-free too.
        if round % 64 == 0 {
            let mut stages = QueryStages::new(false);
            let garbage = [0u8; 16];
            let out = state.serve(
                &snap.map,
                low,
                resolver,
                &garbage,
                ReplyCap::udp(),
                &mut stages,
            );
            assert_eq!(out, ServeOutcome::FormErr);
        }
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "cached-hit serve path allocated {delta} times over 4000 hits"
    );
}
