//! End-to-end telemetry: a sharded server plus the load generator, both
//! attached to one shared registry. Everything the scrape shows must
//! reconcile with the server's own shard reports and the load
//! generator's report — the counters, the generation gauge, the latency
//! histograms, and the sampled trace ring.

use eum_authd::loadgen::{self, LoadGenConfig};
use eum_authd::{
    channel_transports, AuthServer, ChannelClient, ServerConfig, SnapshotHandle, TelemetryConfig,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::{Registry, TraceRing};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x7E1E;
const SHARDS: usize = 2;
const CLIENTS: usize = 3;
const QUERIES: usize = 300;

struct World {
    net: Internet,
    catalog: ContentCatalog,
}

fn build_map(net: &mut Internet, cdn: &CdnPlatform, catalog: &ContentCatalog) -> MappingSystem {
    MappingSystem::build(
        net,
        cdn,
        catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    )
}

fn world() -> (World, MappingSystem, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = build_map(&mut net, &cdn, &catalog);
    let next_map = build_map(&mut net, &cdn, &catalog);
    (World { net, catalog }, map, next_map)
}

#[test]
fn scrape_reconciles_with_reports_across_a_generation_swap() {
    let (w, map, next_map) = world();
    let low = map.ns_ips()[1];
    let registry = Arc::new(Registry::new());
    let ring = Arc::new(TraceRing::new(4096));
    // Sample every query: the ring must explain all of the traffic.
    let tel = TelemetryConfig::metrics(registry.clone()).with_trace(ring.clone(), 1);

    let (transports, connector) = channel_transports(SHARDS);
    let snapshots = SnapshotHandle::new(map);
    let server = AuthServer::spawn(
        transports,
        snapshots.clone(),
        ServerConfig::new(low).with_telemetry(tel),
    );

    let cfg = LoadGenConfig {
        clients: CLIENTS,
        queries_per_client: QUERIES,
        no_ecs_fraction: 0.2,
        timeout: Duration::from_secs(5),
        seed: SEED,
        telemetry: Some(registry.clone()),
    };
    let run = |seed_bump: u64| {
        loadgen::run(
            &w.net,
            &w.catalog,
            low,
            &LoadGenConfig {
                seed: SEED + seed_bump,
                ..cfg.clone()
            },
            |_| ChannelClient::new(connector.clone()),
        )
    };
    let report1 = run(0);
    let generation = snapshots.publish(next_map);
    assert_eq!(generation, 2);
    let report2 = run(1);
    let reports = server.stop_join();

    let total = (2 * CLIENTS * QUERIES) as u64;
    assert_eq!(report1.ok + report2.ok, total, "every exchange verifies");

    // Every family the serving path and the load generator register.
    let families = registry.family_names();
    for family in [
        "eum_authd_queries_total",
        "eum_authd_formerr_total",
        "eum_authd_dropped_total",
        "eum_authd_cache_hits_total",
        "eum_authd_cache_misses_total",
        "eum_authd_cache_evictions_total",
        "eum_authd_cache_insertions_total",
        "eum_authd_cache_scoped_insertions_total",
        "eum_authd_cache_generation_clears_total",
        "eum_mapping_cache_invalidations_total",
        "eum_mapping_cache_clears_total",
        "eum_authd_cache_entries",
        "eum_authd_snapshot_generation",
        "eum_authd_stage_decode_ns",
        "eum_authd_stage_cache_ns",
        "eum_authd_stage_route_ns",
        "eum_authd_stage_encode_ns",
        "eum_authd_serve_ns",
        "eum_loadgen_upstream_exchange_ns",
        "eum_loadgen_upstream_ok_total",
        "eum_loadgen_upstream_transport_errors_total",
        "eum_loadgen_upstream_bad_responses_total",
    ] {
        assert!(
            families.iter().any(|f| f == family),
            "family {family} missing from a running server's registry: {families:?}"
        );
    }

    // Counters reconcile with the shard reports, shard by shard.
    let shard_counter = |name: &str, shard: usize| {
        registry
            .counter(name, "", &[("shard", &shard.to_string())])
            .get()
    };
    for r in &reports {
        assert_eq!(shard_counter("eum_authd_queries_total", r.shard), r.queries);
        assert_eq!(
            shard_counter("eum_authd_formerr_total", r.shard),
            r.malformed
        );
        assert_eq!(
            shard_counter("eum_authd_cache_hits_total", r.shard),
            r.cache.hits
        );
        assert_eq!(
            shard_counter("eum_authd_cache_insertions_total", r.shard),
            r.cache.insertions
        );
        assert_eq!(
            shard_counter("eum_authd_cache_generation_clears_total", r.shard),
            r.cache.generation_clears
        );
        // This run publishes without a delta, so the mapping-cache view
        // of the swap is all generational clears and no keyed evictions.
        assert_eq!(
            shard_counter("eum_mapping_cache_clears_total", r.shard),
            r.cache.generation_clears
        );
        assert_eq!(
            shard_counter("eum_mapping_cache_invalidations_total", r.shard),
            0
        );
    }
    let queries_scraped: u64 = (0..SHARDS)
        .map(|s| shard_counter("eum_authd_queries_total", s))
        .sum();
    assert_eq!(queries_scraped, total, "scrape explains all the traffic");

    // The generation gauge tracks the published snapshot, and each shard
    // that served post-swap traffic cleared its cache exactly once.
    let generation_gauge = registry
        .gauge("eum_authd_snapshot_generation", "", &[])
        .get();
    assert_eq!(generation_gauge, 2.0);
    let clears: u64 = reports.iter().map(|r| r.cache.generation_clears).sum();
    assert!(
        clears >= 1,
        "at least one shard must observe the swap and clear"
    );
    assert!(clears <= SHARDS as u64, "one clear per shard per swap");

    // Both runs recorded into the registry's exchange histogram, so the
    // second report's snapshot is cumulative and the scrape reads the
    // exact same buckets — the percentiles agree bit for bit.
    let exchange = registry
        .histogram_striped("eum_loadgen_upstream_exchange_ns", "", &[], CLIENTS)
        .snapshot();
    assert_eq!(report1.latencies.count(), total / 2);
    assert_eq!(report2.latencies.count(), total, "registry runs accumulate");
    assert_eq!(exchange.count(), total);
    for q in [0.5, 0.9, 0.99] {
        assert!(report2.latency_us(q) > 0.0);
        assert_eq!(
            report2.latencies.quantile(q),
            exchange.quantile(q),
            "loadgen report and the scrape read the same buckets (q={q})"
        );
    }

    // The serve-path histogram saw one sample per query.
    let serve = registry
        .histogram_striped("eum_authd_serve_ns", "", &[], SHARDS)
        .snapshot();
    assert_eq!(serve.count(), total);
    assert!(serve.quantile(0.99) >= serve.quantile(0.5));

    // Sampling every query, the ring was pushed once per query and the
    // retained tail spans both generations' traffic.
    assert_eq!(ring.pushed(), total);
    let traces = ring.dump();
    assert!(!traces.is_empty());
    assert!(traces
        .iter()
        .all(|t| t.generation == 1 || t.generation == 2));
    assert!(
        traces.iter().any(|t| t.generation == 2),
        "post-swap queries must appear in the trace tail"
    );
    assert!(traces.windows(2).all(|w| w[0].seq < w[1].seq));
}
