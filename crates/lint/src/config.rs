//! `lint.toml` parsing and self-checking.
//!
//! The config is a small TOML subset — tables, arrays-of-tables, string
//! and integer values, single- or multi-line string arrays — parsed by
//! hand because the linter must be zero-dependency (the container's
//! vendored crates are offline stubs). Unknown sections or keys are hard
//! errors: a typo in the config must fail the gate, not silently disable
//! a rule.

use std::collections::BTreeMap;

/// One serve-path-pure region: a file plus the fn names (with `*` glob
/// support) the purity rules apply to.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Workspace-relative file path.
    pub file: String,
    /// Fn name patterns: `*` alone matches every fn; a leading or
    /// trailing `*` matches a suffix or prefix.
    pub fns: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories to walk for `.rs` files, workspace-relative.
    pub roots: Vec<String>,
    /// Path prefixes to skip (fixtures, generated code).
    pub exclude: Vec<String>,
    /// Files whose `Ordering::Relaxed` uses are bulk counter traffic and
    /// need no per-line justification.
    pub counter_paths: Vec<String>,
    /// Files holding seqlock/publication protocols, subject to the
    /// Acquire-load/Release-store pairing audit.
    pub seqlock_files: Vec<String>,
    /// Audited concurrency files that must import atomics through the
    /// eum-mcheck facade (`crate::msync`) instead of `std::sync::atomic`.
    pub facade_files: Vec<String>,
    /// Callee names the call-graph pass never follows: bare-name
    /// resolution would bind these common std/method names to unrelated
    /// workspace fns.
    pub graph_ignore: Vec<String>,
    /// `"file.rs::fn_name"` entries where the serve-path closure stops:
    /// intentional cold calls (publication, refresh, shutdown paths).
    /// `#[cold]` fns are implicit boundaries and need no entry.
    pub boundary: Vec<String>,
    /// Pinned `unsafe` occurrence count per crate (keyed by the directory
    /// name under `crates/`, or `root` for the workspace package).
    pub unsafe_budget: BTreeMap<String, u64>,
    /// Serve-path purity regions.
    pub hot: Vec<HotPath>,
}

impl Config {
    /// Parses config text; errors carry a 1-based line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                let name = name.trim();
                if name != "hot" {
                    return Err(format!("line {}: unknown array table [[{name}]]", ln + 1));
                }
                cfg.hot.push(HotPath {
                    file: String::new(),
                    fns: Vec::new(),
                });
                section = "hot".to_string();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim();
                if !matches!(name, "scan" | "atomics" | "graph" | "unsafe_budget") {
                    return Err(format!("line {}: unknown table [{name}]", ln + 1));
                }
                section = name.to_string();
                continue;
            }
            let (key, mut val) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
            // Multi-line arrays: keep consuming until the closing bracket.
            if val.starts_with('[') && !balanced_array(&val) {
                for (_, cont) in lines.by_ref() {
                    val.push(' ');
                    val.push_str(strip_comment(cont).trim());
                    if balanced_array(&val) {
                        break;
                    }
                }
                if !balanced_array(&val) {
                    return Err(format!("line {}: unterminated array for `{key}`", ln + 1));
                }
            }
            match (section.as_str(), key.as_str()) {
                ("scan", "roots") => cfg.roots = parse_string_array(&val, ln)?,
                ("scan", "exclude") => cfg.exclude = parse_string_array(&val, ln)?,
                ("atomics", "counter_paths") => cfg.counter_paths = parse_string_array(&val, ln)?,
                ("atomics", "seqlock_files") => cfg.seqlock_files = parse_string_array(&val, ln)?,
                ("atomics", "facade_files") => cfg.facade_files = parse_string_array(&val, ln)?,
                ("graph", "ignore_names") => cfg.graph_ignore = parse_string_array(&val, ln)?,
                ("graph", "boundary") => {
                    cfg.boundary = parse_string_array(&val, ln)?;
                    for b in &cfg.boundary {
                        if !b.contains("::") {
                            return Err(format!(
                                "line {}: boundary entry `{b}` must be `file.rs::fn_name`",
                                ln + 1
                            ));
                        }
                    }
                }
                ("unsafe_budget", crate_name) => {
                    let n: u64 = val.parse().map_err(|_| {
                        format!("line {}: `{crate_name}` budget must be an integer", ln + 1)
                    })?;
                    cfg.unsafe_budget.insert(crate_name.to_string(), n);
                }
                ("hot", "file") => {
                    let entry = cfg
                        .hot
                        .last_mut()
                        .ok_or_else(|| format!("line {}: `file` outside [[hot]]", ln + 1))?;
                    entry.file = parse_string(&val, ln)?;
                }
                ("hot", "fns") => {
                    let entry = cfg
                        .hot
                        .last_mut()
                        .ok_or_else(|| format!("line {}: `fns` outside [[hot]]", ln + 1))?;
                    entry.fns = parse_string_array(&val, ln)?;
                }
                (sec, k) => {
                    return Err(format!("line {}: unknown key `{k}` in [{sec}]", ln + 1));
                }
            }
        }
        for (i, h) in cfg.hot.iter().enumerate() {
            if h.file.is_empty() {
                return Err(format!("[[hot]] entry {} is missing `file`", i + 1));
            }
            if h.fns.is_empty() {
                return Err(format!("[[hot]] {} is missing `fns`", h.file));
            }
        }
        if cfg.roots.is_empty() {
            return Err("[scan] roots must list at least one directory".to_string());
        }
        Ok(cfg)
    }

    /// Reads and parses the file at `path`.
    pub fn load(path: &std::path::Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// True when `file` (workspace-relative) matches an exclude prefix.
    pub fn is_excluded(&self, file: &str) -> bool {
        self.exclude.iter().any(|p| file.starts_with(p.as_str()))
    }

    /// Hot entries whose `file` equals `file`.
    pub fn hot_for<'a>(&'a self, file: &'a str) -> impl Iterator<Item = &'a HotPath> + 'a {
        self.hot.iter().filter(move |h| h.file == file)
    }
}

/// Does `pattern` (supporting a single leading or trailing `*`) match
/// `name`?
pub fn fn_pattern_matches(pattern: &str, name: &str) -> bool {
    if pattern == "*" {
        return true;
    }
    if let Some(suffix) = pattern.strip_prefix('*') {
        return name.ends_with(suffix);
    }
    if let Some(prefix) = pattern.strip_suffix('*') {
        return name.starts_with(prefix);
    }
    pattern == name
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True when `val` has balanced `[` / `]` (quotes ignored — config paths
/// never contain brackets).
fn balanced_array(val: &str) -> bool {
    val.matches('[').count() == val.matches(']').count()
}

fn parse_string(val: &str, ln: usize) -> Result<String, String> {
    val.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {}: expected a quoted string, got `{val}`", ln + 1))
}

fn parse_string_array(val: &str, ln: usize) -> Result<Vec<String>, String> {
    let inner = val
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {}: expected an array, got `{val}`", ln + 1))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, ln)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[scan]
roots = ["crates", "src"]
exclude = ["crates/lint/fixtures"]

[atomics]
counter_paths = [
    "a.rs",
    "b.rs", # trailing comment
]
seqlock_files = ["c.rs"]

[unsafe_budget]
authd = 9
dns = 0

[[hot]]
file = "crates/dns/src/wire.rs"
fns = ["*_into", "put_*", "name"]
"#;

    #[test]
    fn parses_the_full_shape() {
        let c = Config::parse(SAMPLE).expect("parses");
        assert_eq!(c.roots, ["crates", "src"]);
        assert_eq!(c.counter_paths, ["a.rs", "b.rs"]);
        assert_eq!(c.unsafe_budget["authd"], 9);
        assert_eq!(c.hot.len(), 1);
        assert_eq!(c.hot[0].fns.len(), 3);
        assert!(c.is_excluded("crates/lint/fixtures/x.rs"));
    }

    #[test]
    fn unknown_sections_and_keys_error() {
        assert!(Config::parse("[wat]\n").is_err());
        assert!(Config::parse("[scan]\nroots = [\"a\"]\nbogus = 1\n").is_err());
        assert!(Config::parse("[scan]\nroots = []\n").is_err());
    }

    #[test]
    fn graph_and_facade_keys_parse_and_validate() {
        let c = Config::parse(
            "[scan]\nroots = [\"a\"]\n[atomics]\nfacade_files = [\"x.rs\"]\n\
             [graph]\nignore_names = [\"len\", \"get\"]\nboundary = [\"x.rs::cold_fn\"]\n",
        )
        .expect("parses");
        assert_eq!(c.facade_files, ["x.rs"]);
        assert_eq!(c.graph_ignore, ["len", "get"]);
        assert_eq!(c.boundary, ["x.rs::cold_fn"]);
        // A boundary entry without the file::fn shape is rejected at parse.
        assert!(
            Config::parse("[scan]\nroots = [\"a\"]\n[graph]\nboundary = [\"just_a_name\"]\n")
                .is_err()
        );
    }

    #[test]
    fn hot_requires_file_and_fns() {
        assert!(Config::parse("[scan]\nroots = [\"a\"]\n[[hot]]\nfns = [\"*\"]\n").is_err());
        assert!(Config::parse("[scan]\nroots = [\"a\"]\n[[hot]]\nfile = \"x.rs\"\n").is_err());
    }

    #[test]
    fn fn_patterns_glob() {
        assert!(fn_pattern_matches("*", "anything"));
        assert!(fn_pattern_matches("*_into", "encode_message_into"));
        assert!(fn_pattern_matches("put_*", "put_name"));
        assert!(fn_pattern_matches("serve", "serve"));
        assert!(!fn_pattern_matches("serve", "observe"));
    }
}
