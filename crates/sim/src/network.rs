//! The simulated authoritative-DNS network.
//!
//! [`AuthNet`] implements the recursive resolver's [`Upstream`] transport:
//! it carries wire-encoded queries from an LDNS to the authoritative
//! server at a given IP — the mapping system's two-level name servers or
//! a static authority (the root stand-in and content providers' own DNS) —
//! charges the query one LDNS↔server RTT from the latency model, and
//! meters per-day query counts at the mapping system's servers (the data
//! behind Figures 2 and 23).

use eum_dns::{decode_message, encode_message, Message, QueryContext, Rcode};
use eum_dns::{Authority, DnsName, StaticAuthority, Upstream};
use eum_mapping::MappingSystem;
use eum_netmodel::{Endpoint, LatencyModel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Per-day query counters at the mapping system's name servers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryCounters {
    /// `(total, from public resolvers)` per day index.
    days: Vec<(u64, u64)>,
    /// Simulated client requests (page views) per day.
    views: Vec<u64>,
}

impl QueryCounters {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, day: u32) {
        if self.days.len() <= day as usize {
            self.days.resize(day as usize + 1, (0, 0));
        }
        if self.views.len() <= day as usize {
            self.views.resize(day as usize + 1, 0);
        }
    }

    /// Records one mapping-DNS query.
    pub fn add_query(&mut self, day: u32, from_public: bool) {
        self.ensure(day);
        self.days[day as usize].0 += 1;
        if from_public {
            self.days[day as usize].1 += 1;
        }
    }

    /// Records one client page view.
    pub fn add_view(&mut self, day: u32) {
        self.ensure(day);
        self.views[day as usize] += 1;
    }

    /// `(day, total queries, public queries, client views)` rows.
    pub fn rows(&self) -> Vec<(u32, u64, u64, u64)> {
        (0..self.days.len())
            .map(|d| {
                let (t, p) = self.days[d];
                (d as u32, t, p, self.views.get(d).copied().unwrap_or(0))
            })
            .collect()
    }

    /// Mean daily totals over an inclusive day window:
    /// `(total, public, views)`.
    pub fn window_means(&self, from_day: u32, to_day: u32) -> (f64, f64, f64) {
        let rows: Vec<_> = self
            .rows()
            .into_iter()
            .filter(|(d, _, _, _)| *d >= from_day && *d <= to_day)
            .collect();
        if rows.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = rows.len() as f64;
        (
            rows.iter().map(|(_, t, _, _)| *t as f64).sum::<f64>() / n,
            rows.iter().map(|(_, _, p, _)| *p as f64).sum::<f64>() / n,
            rows.iter().map(|(_, _, _, v)| *v as f64).sum::<f64>() / n,
        )
    }
}

/// One LDNS's view of the authoritative network for the duration of a
/// resolution. Borrows the scenario's shared state.
pub struct AuthNet<'a> {
    /// The mapping system (handles its own server IPs).
    pub mapping: &'a mut MappingSystem,
    /// Static authorities by server IP (root + provider DNS).
    pub static_auths: &'a HashMap<Ipv4Addr, StaticAuthority>,
    /// Endpoint of every authoritative server IP.
    pub endpoints: &'a HashMap<Ipv4Addr, Endpoint>,
    /// The latency model.
    pub latency: &'a LatencyModel,
    /// The querying LDNS's endpoint.
    pub resolver_ep: Endpoint,
    /// Whether the querying LDNS is a public resolver (for metering).
    pub resolver_is_public: bool,
    /// The root name server's IP.
    pub root_ip: Ipv4Addr,
    /// Shared query counters.
    pub counters: &'a mut QueryCounters,
    /// Current day (for metering).
    pub day: u32,
}

impl Upstream for AuthNet<'_> {
    fn query(&mut self, server: Ipv4Addr, query: &[u8], now_ms: u64) -> (Vec<u8>, f64) {
        let rtt = match self.endpoints.get(&server) {
            Some(sep) => self.latency.rtt_ms(&self.resolver_ep, sep),
            None => 100.0, // unroutable: timeout-ish flat cost
        };
        let msg = match decode_message(query) {
            Ok(m) => m,
            Err(_) => {
                // A malformed query gets a FORMERR with a zeroed id.
                let empty = Message::response_to(
                    &Message::query(0, eum_dns::Question::a(DnsName::root()), None),
                    Rcode::FormErr,
                );
                return (encode_message(&empty), rtt);
            }
        };
        let ctx = QueryContext {
            resolver_ip: self.resolver_ep.ip,
            now_ms,
        };
        let resp = if self.mapping.is_mapping_server(server) {
            self.counters.add_query(self.day, self.resolver_is_public);
            self.mapping.handle(server, &msg, &ctx)
        } else {
            match self.static_auths.get(&server) {
                Some(auth) => auth.handle(&msg, &ctx),
                None => Message::response_to(&msg, Rcode::ServFail),
            }
        };
        (encode_message(&resp), rtt)
    }

    fn referral_root(&mut self, _name: &DnsName) -> Ipv4Addr {
        self.root_ip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_window() {
        let mut c = QueryCounters::new();
        c.add_query(0, true);
        c.add_query(0, false);
        c.add_query(2, true);
        c.add_view(0);
        c.add_view(2);
        c.add_view(2);
        let rows = c.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (0, 2, 1, 1));
        assert_eq!(rows[1], (1, 0, 0, 0));
        assert_eq!(rows[2], (2, 1, 1, 2));
        let (t, p, v) = c.window_means(0, 2);
        assert!((t - 1.0).abs() < 1e-9);
        assert!((p - 2.0 / 3.0).abs() < 1e-9);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_zero() {
        let c = QueryCounters::new();
        assert_eq!(c.window_means(5, 9), (0.0, 0.0, 0.0));
    }
}
