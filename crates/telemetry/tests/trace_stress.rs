//! Cross-thread seqlock stress for [`TraceRing`]: one writer hammers a
//! deliberately tiny ring while several readers dump continuously. Every
//! field of every pushed trace is derived from one counter, so a torn
//! record — a mix of two different pushes surviving the sequence check —
//! is detectable by recomputing the relation. This is exactly the race
//! the ring's fences exist for: without the writer's release fence (or
//! the readers' acquire fence) this test fails under contention.

use eum_telemetry::{QueryTrace, TraceHop, TraceOutcome, TraceRing};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Builds the trace whose every field is a function of `i`.
fn derived(i: u32) -> QueryTrace {
    QueryTrace {
        seq: 0,
        trace_id: i.wrapping_mul(0x9E37_79B9),
        hop: match i % 3 {
            0 => TraceHop::Client,
            1 => TraceHop::Ldns,
            _ => TraceHop::Authd,
        },
        shard: (i % 997) as u16,
        generation: (i as u64).wrapping_mul(3),
        ecs_scope: Some((i % 33) as u8),
        outcome: TraceOutcome::CacheHit,
        truncated: i.is_multiple_of(7),
        decode_ns: i,
        cache_ns: i.wrapping_mul(31).wrapping_add(7),
        route_ns: i ^ 0x5A5A_5A5A,
        encode_ns: i.rotate_left(5),
        total_ns: i.wrapping_add(0x1234_5678),
    }
}

/// Checks the cross-field relation; a torn record breaks it.
fn is_consistent(t: &QueryTrace) -> bool {
    let i = t.decode_ns;
    let want = derived(i);
    t.trace_id == want.trace_id
        && t.hop == want.hop
        && t.shard == want.shard
        && t.generation == want.generation
        && t.ecs_scope == want.ecs_scope
        && t.truncated == want.truncated
        && t.cache_ns == want.cache_ns
        && t.route_ns == want.route_ns
        && t.encode_ns == want.encode_ns
        && t.total_ns == want.total_ns
}

#[test]
fn no_torn_records_under_reader_writer_contention() {
    const PUSHES: u32 = 150_000;
    const READERS: usize = 3;

    // A tiny ring maximizes writer/reader collisions on the same slot.
    let ring = Arc::new(TraceRing::new(8));
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let ring = ring.clone();
        let done = done.clone();
        readers.push(std::thread::spawn(move || {
            let mut seen = 0u64;
            let mut dumps = 0u64;
            loop {
                // Load the flag *before* dumping: when it reads true the
                // writer has already joined, so this final dump runs on a
                // quiescent ring and must accept every slot.
                let stop = done.load(Ordering::Acquire);
                for t in ring.dump() {
                    assert!(is_consistent(&t), "torn trace record observed: {t:?}");
                    seen += 1;
                }
                dumps += 1;
                if stop {
                    break;
                }
            }
            (seen, dumps)
        }));
    }

    let writer = {
        let ring = ring.clone();
        std::thread::spawn(move || {
            for i in 0..PUSHES {
                ring.push(&derived(i));
            }
        })
    };
    writer.join().expect("writer");
    done.store(true, Ordering::Release);
    for r in readers {
        let (seen, dumps) = r.join().expect("reader");
        assert!(dumps > 0);
        // Readers may race every slot mid-write occasionally, but across
        // thousands of dumps they must accept plenty of records.
        assert!(seen > 0, "reader never accepted a single record");
    }

    assert_eq!(ring.pushed(), PUSHES as u64);
    // Quiescent dump: the full ring is readable and holds the newest
    // traces (seq is the push index).
    let final_dump = ring.dump();
    assert_eq!(final_dump.len(), ring.capacity());
    for t in &final_dump {
        assert!(is_consistent(t), "torn trace in quiescent ring: {t:?}");
        assert!(t.seq >= (PUSHES as u64 - ring.capacity() as u64));
    }
}
