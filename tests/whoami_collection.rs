//! Integration: the NetSession pipeline run end to end through the
//! protocol — `whoami` probes via every (client, LDNS) pair must recover
//! exactly the client–LDNS associations the generator created.

use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::PairDataset;

#[test]
fn whoami_collection_matches_ground_truth() {
    let mut world = Scenario::build(ScenarioConfig::tiny(0x77A));
    let truth = PairDataset::collect(&world.net);
    let probed = world.collect_netsession_via_whoami();

    assert_eq!(
        probed.len(),
        truth.len(),
        "every (block, LDNS) pair must be recovered by probing"
    );
    // Index ground truth by (block, ldns).
    let mut truth_map = std::collections::HashMap::new();
    for r in &truth.records {
        truth_map.insert((r.block, r.ldns), (r.weight, r.distance_miles));
    }
    for r in &probed.records {
        let (w, d) = truth_map
            .get(&(r.block, r.ldns))
            .unwrap_or_else(|| panic!("probe invented pair {:?}/{:?}", r.block, r.ldns));
        assert!((r.weight - w).abs() < 1e-9);
        assert!((r.distance_miles - d).abs() < 1e-6);
    }
}

#[test]
fn whoami_probes_work_with_ecs_enabled() {
    // The probe path must be ECS-agnostic: enabling ECS on every resolver
    // must not change what whoami reports.
    let mut world = Scenario::build(ScenarioConfig::tiny(0x77B));
    for r in &mut world.resolvers {
        r.set_ecs(end_user_mapping::dns::EcsMode::On { source_prefix: 24 });
    }
    let truth = PairDataset::collect(&world.net);
    let probed = world.collect_netsession_via_whoami();
    assert_eq!(probed.len(), truth.len());
}
