//! Runs the eum-authd serving subsystem end to end, fully observed: a
//! sharded authoritative server answering wire-format queries from the
//! closed-loop load generator, with the eum-telemetry layer wired through
//! both sides.
//!
//!     cargo run --release --example authd_serve
//!
//! While the load generator runs, a background reporter prints periodic
//! telemetry read straight from the shared registry — per-shard cache hit
//! ratio, p50/p99 serve latency from the stage histograms, the published
//! snapshot generation, and the end-user answer amplification. After each
//! run the load generator's own histogram-backed percentiles are printed
//! next to the registry's (they read the same buckets, so they agree
//! exactly), and the final section dumps sampled per-query traces and a
//! render_text excerpt. Shard counts above the machine's core count
//! time-slice rather than parallelize; absolute q/s is whatever the
//! hardware gives.

use eum_authd::loadgen::{self, LoadGenConfig};
use eum_authd::{
    channel_transports, AuthServer, ChannelClient, ServerConfig, SnapshotHandle, TelemetryConfig,
    UdpClient, UdpTransport,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::{Registry, Reporter, TraceRing};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5E87;
const SHARDS: usize = 4;

fn world() -> (Internet, ContentCatalog, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, catalog, map)
}

fn loadgen_cfg(registry: &Arc<Registry>) -> LoadGenConfig {
    LoadGenConfig {
        clients: 4,
        queries_per_client: 5_000,
        no_ecs_fraction: 0.1,
        timeout: Duration::from_secs(5),
        seed: SEED,
        telemetry: Some(registry.clone()),
    }
}

/// One periodic line read entirely from the shared registry — exactly what
/// a scraper polling `render_text` would compute.
fn live_line(reg: &Registry) -> String {
    let mut hit_parts = Vec::new();
    for shard in 0..SHARDS {
        let s = shard.to_string();
        let l: &[(&str, &str)] = &[("shard", &s)];
        let hits = reg.counter("eum_authd_cache_hits_total", "", l).get();
        let q = reg.counter("eum_authd_queries_total", "", l).get();
        let ratio = if q == 0 { 0.0 } else { hits as f64 / q as f64 };
        hit_parts.push(format!("s{shard} {:>4.1}%", 100.0 * ratio));
    }
    let serve = reg
        .histogram_striped("eum_authd_serve_ns", "", &[], SHARDS)
        .snapshot();
    let generation = reg.gauge("eum_authd_snapshot_generation", "", &[]).get();
    format!(
        "  [live] gen {generation:<2.0} serve p50 {:>7.1} µs p99 {:>7.1} µs  amplification {:>4.2}  cache hit {}",
        serve.quantile(0.5) / 1_000.0,
        serve.quantile(0.99) / 1_000.0,
        amplification(reg),
        hit_parts.join("  "),
    )
}

/// End-user answer amplification: how many distinct scoped (per ECS
/// block) answer units the shards materialized per resolver-keyed answer
/// — the serving-side face of the paper's query amplification (§7.3).
fn amplification(reg: &Registry) -> f64 {
    let mut scoped = 0u64;
    let mut total = 0u64;
    for shard in 0..SHARDS {
        let s = shard.to_string();
        let l: &[(&str, &str)] = &[("shard", &s)];
        scoped += reg
            .counter("eum_authd_cache_scoped_insertions_total", "", l)
            .get();
        total += reg.counter("eum_authd_cache_insertions_total", "", l).get();
    }
    let resolver_keyed = total - scoped;
    if resolver_keyed == 0 {
        0.0
    } else {
        scoped as f64 / resolver_keyed as f64
    }
}

fn summary_line(label: &str, reg: &Registry, report: &loadgen::LoadReport) {
    // These are *upstream* rates: the resolver→authoritative leg the
    // load generator plays (a fleet's downstream/client-facing rate is
    // the eum_ldns_downstream_* series).
    println!(
        "{label:<30} {:>9.0} upstream q/s   p50 {:>7.1} µs   p99 {:>7.1} µs   ok {} err {} bad {}",
        report.qps(),
        report.p50_us(),
        report.p99_us(),
        report.ok,
        report.transport_errors,
        report.bad_responses,
    );
    // The report's percentiles and the registry's come from the same
    // histogram buckets; print both to make the agreement visible.
    let scraped = reg
        .histogram_striped("eum_loadgen_upstream_exchange_ns", "", &[], 1)
        .snapshot();
    println!(
        "{:<30} registry eum_loadgen_upstream_exchange_ns: p50 {:>7.1} µs   p99 {:>7.1} µs   count {}",
        "",
        scraped.quantile(0.5) / 1_000.0,
        scraped.quantile(0.99) / 1_000.0,
        scraped.count(),
    );
}

fn run_channel(
    label: &str,
    snapshots: &SnapshotHandle,
    net: &Internet,
    catalog: &ContentCatalog,
    low: Ipv4Addr,
    tel: &TelemetryConfig,
) {
    let (transports, connector) = channel_transports(SHARDS);
    let server = AuthServer::spawn(
        transports,
        snapshots.clone(),
        ServerConfig::new(low).with_telemetry(tel.clone()),
    );
    let reg = tel.registry.clone();
    let reporter = Reporter::spawn(Duration::from_millis(150), move || {
        println!("{}", live_line(&reg));
    });
    let report = loadgen::run(net, catalog, low, &loadgen_cfg(&tel.registry), |_| {
        ChannelClient::new(connector.clone())
    });
    reporter.stop();
    server.stop_join();
    summary_line(label, &tel.registry, &report);
}

fn run_udp_with_swap(
    label: &str,
    snapshots: &SnapshotHandle,
    net: &Internet,
    catalog: &ContentCatalog,
    low: Ipv4Addr,
    tel: &TelemetryConfig,
    map2: MappingSystem,
) {
    let mut transports = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..SHARDS {
        let t = UdpTransport::bind().expect("bind loopback socket");
        addrs.push(t.local_addr().expect("local addr"));
        transports.push(t);
    }
    let server = AuthServer::spawn(
        transports,
        snapshots.clone(),
        ServerConfig::new(low).with_telemetry(tel.clone()),
    );
    let reg = tel.registry.clone();
    let reporter = Reporter::spawn(Duration::from_millis(150), move || {
        println!("{}", live_line(&reg));
    });
    // Publish a new map generation while the load generator is mid-flight:
    // the serving plane never pauses, the generation gauge moves, and the
    // per-shard generation_clears counters tick.
    let publisher = {
        let snapshots = snapshots.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            snapshots.publish(map2)
        })
    };
    let report = loadgen::run(net, catalog, low, &loadgen_cfg(&tel.registry), |_| {
        UdpClient::connect(addrs.clone()).expect("bind client socket")
    });
    let generation = publisher.join().expect("publisher thread");
    reporter.stop();
    let shard_reports = server.stop_join();
    println!("  (published map generation {generation} mid-run)");
    summary_line(label, &tel.registry, &report);
    let clears: u64 = shard_reports
        .iter()
        .map(|r| r.cache.generation_clears)
        .sum();
    println!("  generation swaps cleared {clears} shard caches; zero errors during the swap");
}

fn main() {
    let (net, catalog, map) = world();
    let low = map.ns_ips()[1];
    println!(
        "world: {} client blocks, {} resolvers, {} domains; serving NS {low}, {SHARDS} shards\n",
        net.blocks.len(),
        net.resolvers.len(),
        catalog.domains.len(),
    );
    let snapshots = SnapshotHandle::new(map);
    let registry = Arc::new(Registry::new());
    let ring = Arc::new(TraceRing::new(512));
    let tel = TelemetryConfig::metrics(registry.clone()).with_trace(ring.clone(), 64);

    println!("in-process channel transport (telemetry + 1/64 query tracing):");
    run_channel("  channel, cache on", &snapshots, &net, &catalog, low, &tel);

    let (_, _, map2) = world();
    println!("\nloopback UDP with a mid-run snapshot swap:");
    run_udp_with_swap(
        "  udp, cache on, swap",
        &snapshots,
        &net,
        &catalog,
        low,
        &tel,
        map2,
    );

    let traces = ring.dump();
    println!(
        "\nsampled query traces: {} in ring ({} sampled total); last 8:",
        traces.len(),
        ring.pushed()
    );
    for t in traces.iter().rev().take(8).rev() {
        println!("  {}", t.render());
    }

    println!("\nregistry families ({}):", registry.family_names().len());
    for name in registry.family_names() {
        println!("  {name}");
    }
    println!("\nrender_text excerpt (counters and gauges):");
    for line in registry
        .render_text()
        .lines()
        .filter(|l| !l.contains("_bucket{") && !l.contains("_ns_sum") && !l.contains("_ns_count"))
    {
        println!("  {line}");
    }
}
