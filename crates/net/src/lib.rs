//! eum-net: the kernel-batched socket transport for the authoritative
//! serving stack.
//!
//! The in-repo transports (`eum_authd::transport`) stop at one
//! `recv_from` per datagram on one socket per shard. This crate closes
//! the gap to how the paper's authoritative infrastructure actually
//! meets its load (§3, §5.3: answering the full resolver population
//! within tight latency budgets):
//!
//! * [`udp::ReuseportUdpTransport`] — all shards share **one** UDP port
//!   via `SO_REUSEPORT`; the kernel hashes each resolver's 4-tuple to a
//!   shard, and each shard moves datagrams in `recvmmsg`/`sendmmsg`
//!   batches with zero warm-path allocations, optionally pinned to a
//!   core. Plugs into [`eum_authd::AuthServer::spawn_batched`].
//! * [`tcp::TcpServerTransport`] — the DNS-over-TCP fallback (RFC 1035
//!   §4.2.2): answers the server had to truncate (TC=1) under the
//!   requester's UDP payload limit complete over a length-prefixed
//!   stream. Plugs into the plain [`eum_authd::AuthServer::spawn`].
//! * [`client::SocketClient`] — the matching
//!   [`eum_authd::ClientTransport`]: UDP exchange plus the TCP retry
//!   leg, so the load generator and the eum-ldns fleet drive real
//!   sockets unchanged.
//! * [`http::ScrapeServer`] — a minimal HTTP/1.0 scrape endpoint
//!   exposing `GET /metrics` (Prometheus text), `/timeseries.jsonl`
//!   (the windowed time-series ring) and `/healthz` while a socket
//!   server runs — live observability over the same loopback stack.
//! * [`sys`] (Linux only) — the crate's entire `unsafe` surface: safe
//!   wrappers over a minimal vendored `libc` stub
//!   (`socket`/`setsockopt`/`bind`, `recvmmsg`/`sendmmsg`,
//!   `sched_setaffinity`), each call site carrying a SAFETY comment and
//!   the whole crate pinned by the eum-lint unsafe budget.
//!
//! On non-Linux targets (and under
//! [`udp::BatchConfig::force_portable`], which doubles as the benchmark
//! baseline) everything degrades to portable std socket calls with the
//! same interfaces.

pub mod client;
pub mod http;
#[cfg(target_os = "linux")]
pub mod sys;
pub mod tcp;
pub mod udp;

pub use client::SocketClient;
pub use http::ScrapeServer;
pub use tcp::TcpServerTransport;
pub use udp::{BatchConfig, ReuseportUdpTransport};
