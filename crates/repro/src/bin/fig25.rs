//! Reproduces Figure 25 of the paper. Pass `--quick` for a smaller world.

use eum_netmodel::Internet;
use eum_repro::{figures56, Scale};

fn main() {
    let scale = Scale::from_args();
    let net = Internet::generate(scale.internet_config());
    print!("{}", figures56::fig25(&net, scale));
}
