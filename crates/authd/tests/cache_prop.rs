//! Property tests for the ECS-scope-aware answer cache: RFC 7871 §7.3.1
//! reuse rules must hold for every interleaving of inserts and lookups.

use eum_authd::{AnswerCache, CacheConfig, CachedAnswer};
use eum_dns::{DnsName, Message, Question, Rcode, Record, RrType};
use eum_geo::Prefix;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Instant;

fn qname() -> DnsName {
    "e0.cdn.example".parse().unwrap()
}

/// A cache entry whose answer IP encodes `marker`, so a hit can be traced
/// back to the exact insertion that produced it.
fn entry(marker: u32) -> CachedAnswer {
    let q = Message::query(0, Question::a(qname()), None);
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.answers
        .push(Record::a(qname(), 60, Ipv4Addr::from(marker)));
    CachedAnswer::from_response(&resp, 60, Instant::now())
}

/// Recovers the marker from the entry's stored wire template.
fn marker_of(e: &CachedAnswer) -> u32 {
    let template = eum_dns::decode_message(e.wire()).expect("cached wire decodes");
    match template.answers.first().expect("marker record").rdata {
        eum_dns::RData::A(ip) => u32::from(ip),
        ref other => panic!("marker record is not an A record: {other:?}"),
    }
}

proptest! {
    /// Any scoped hit must come from an inserted block that (a) contains
    /// the querying client and (b) is no longer than the query's ECS
    /// source prefix — and among such blocks, the longest one.
    #[test]
    fn scoped_hits_respect_containment_and_narrowing(
        inserts in proptest::collection::vec((any::<u32>(), 1u8..=32), 1..24),
        probes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..32),
    ) {
        let mut cache = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        // Model: block -> marker, replace on duplicate key like the cache.
        let mut model: Vec<(Prefix, u32)> = Vec::new();
        for (i, (addr, len)) in inserts.iter().enumerate() {
            let block = Prefix::of(Ipv4Addr::from(*addr), *len);
            cache.insert_scoped(qname(), RrType::A, block, entry(i as u32));
            match model.iter_mut().find(|(b, _)| *b == block) {
                Some(slot) => slot.1 = i as u32,
                None => model.push((block, i as u32)),
            }
        }
        for (addr, max_scope) in probes {
            let client = Ipv4Addr::from(addr);
            let hit = cache.lookup_scoped(&qname(), RrType::A, client, max_scope, now);
            let expect = model
                .iter()
                .filter(|(b, _)| b.len() <= max_scope && b.contains(client))
                .max_by_key(|(b, _)| b.len());
            match (hit, expect) {
                (Some(e), Some((block, marker))) => {
                    prop_assert_eq!(marker_of(e), *marker);
                    prop_assert!(block.contains(client));
                    prop_assert!(block.len() <= max_scope);
                }
                (None, None) => {}
                (Some(e), None) => panic!(
                    "hit marker {} for client {client}/{max_scope} with no eligible block",
                    marker_of(e)
                ),
                (None, Some((block, _))) => panic!(
                    "missed eligible block {block:?} for client {client}/{max_scope}"
                ),
            }
        }
    }

    /// Answers stored without ECS scope — per-resolver entries and /0
    /// (global) answers — must never be returned to a scoped (ECS) lookup,
    /// whatever the client or source prefix.
    #[test]
    fn unscoped_answers_never_leak_to_ecs_queries(
        resolver_inserts in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..16),
        global_inserts in 1usize..4,
        probes in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..32),
    ) {
        let mut cache = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        for (i, (resolver, server)) in resolver_inserts.iter().enumerate() {
            cache.insert_resolver(
                qname(),
                RrType::A,
                Ipv4Addr::from(*resolver),
                Ipv4Addr::from(*server),
                entry(i as u32),
            );
        }
        // A hostile /0 scoped insert (the server never does this; the
        // probe order must still never surface it).
        for i in 0..global_inserts {
            cache.insert_scoped(qname(), RrType::A, Prefix::ALL, entry(1000 + i as u32));
        }
        for (addr, max_scope) in probes {
            let client = Ipv4Addr::from(addr);
            let hit = cache.lookup_scoped(&qname(), RrType::A, client, max_scope, now);
            prop_assert!(
                hit.is_none(),
                "ECS lookup for {}/{} must miss, got marker {:?}",
                client,
                max_scope,
                hit.map(marker_of),
            );
        }
        // The resolver entries are still there and still served on the
        // resolver path.
        let (resolver, server) = resolver_inserts[resolver_inserts.len() - 1];
        let got = cache.lookup_resolver(
            &qname(),
            RrType::A,
            Ipv4Addr::from(resolver),
            Ipv4Addr::from(server),
            now,
        );
        prop_assert!(got.is_some());
    }
}
