//! Daily time series.
//!
//! The roll-out figures (13, 15, 17, 19, 23) plot a daily mean of a metric
//! over the simulated January–June window. [`DailySeries`] accumulates
//! observations keyed by day index and renders `(day, mean)` rows.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulates per-day observations and reports daily aggregates.
///
/// Days are integer indices (day 0 = scenario start); the caller owns the
/// mapping from simulation time to day index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DailySeries {
    days: BTreeMap<u32, DayAccum>,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct DayAccum {
    sum: f64,
    weight: f64,
    count: u64,
}

/// One rendered day of a series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DayPoint {
    /// Day index from scenario start.
    pub day: u32,
    /// Weighted mean of the metric across the day's observations.
    pub mean: f64,
    /// Number of observations.
    pub count: u64,
    /// Total weight of observations.
    pub weight: f64,
}

impl DailySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` with weight 1 on `day`.
    pub fn add(&mut self, day: u32, value: f64) {
        self.add_weighted(day, value, 1.0);
    }

    /// Records a weighted observation on `day`. Skips non-finite values and
    /// non-positive weights.
    pub fn add_weighted(&mut self, day: u32, value: f64, weight: f64) {
        if !value.is_finite() || weight <= 0.0 {
            return;
        }
        let acc = self.days.entry(day).or_default();
        acc.sum += value * weight;
        acc.weight += weight;
        acc.count += 1;
    }

    /// Number of days with at least one observation.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The daily means in day order.
    pub fn points(&self) -> Vec<DayPoint> {
        self.days
            .iter()
            .map(|(day, acc)| DayPoint {
                day: *day,
                mean: acc.sum / acc.weight,
                count: acc.count,
                weight: acc.weight,
            })
            .collect()
    }

    /// Mean of the daily means over an inclusive day range (e.g. "before
    /// roll-out" vs "after roll-out" aggregates).
    pub fn window_mean(&self, from_day: u32, to_day: u32) -> Option<f64> {
        let vals: Vec<f64> = self
            .days
            .range(from_day..=to_day)
            .map(|(_, a)| a.sum / a.weight)
            .collect();
        crate::mean(vals)
    }

    /// Total observation count over all days.
    pub fn total_count(&self) -> u64 {
        self.days.values().map(|a| a.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series() {
        let s = DailySeries::new();
        assert!(s.is_empty());
        assert!(s.points().is_empty());
        assert_eq!(s.window_mean(0, 10), None);
    }

    #[test]
    fn daily_means_are_per_day() {
        let mut s = DailySeries::new();
        s.add(0, 10.0);
        s.add(0, 20.0);
        s.add(2, 5.0);
        let pts = s.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].day, 0);
        assert_eq!(pts[0].mean, 15.0);
        assert_eq!(pts[0].count, 2);
        assert_eq!(pts[1].day, 2);
        assert_eq!(pts[1].mean, 5.0);
    }

    #[test]
    fn weights_affect_the_mean() {
        let mut s = DailySeries::new();
        s.add_weighted(1, 0.0, 3.0);
        s.add_weighted(1, 10.0, 1.0);
        assert_eq!(s.points()[0].mean, 2.5);
    }

    #[test]
    fn window_mean_averages_daily_means() {
        let mut s = DailySeries::new();
        s.add(0, 10.0);
        s.add(1, 20.0);
        s.add(5, 1000.0); // outside window
        assert_eq!(s.window_mean(0, 1), Some(15.0));
        assert_eq!(s.window_mean(0, 5), Some(1030.0 / 3.0));
        assert_eq!(s.window_mean(2, 4), None);
    }

    #[test]
    fn bad_observations_are_skipped() {
        let mut s = DailySeries::new();
        s.add(0, f64::NAN);
        s.add_weighted(0, 1.0, 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn days_render_in_order() {
        let mut s = DailySeries::new();
        s.add(9, 1.0);
        s.add(3, 1.0);
        s.add(7, 1.0);
        let days: Vec<u32> = s.points().iter().map(|p| p.day).collect();
        assert_eq!(days, vec![3, 7, 9]);
    }
}
