//! Cross-thread seqlock stress for [`TraceRing`]: one writer hammers a
//! deliberately tiny ring while several readers dump continuously. Every
//! field of every pushed trace is derived from one counter, so a torn
//! record — a mix of two different pushes surviving the sequence check —
//! is detectable by recomputing the relation. This is exactly the race
//! the ring's fences exist for: without the writer's release fence (or
//! the readers' acquire fence) this test fails under contention.

//! Two complementary checks live in this binary:
//!
//! * the nondeterministic stress below — real threads, real contention,
//!   150k pushes against the compiled crate;
//! * model-checked variants (bottom of the file) — the *same source
//!   file* `src/trace.rs` is `#[path]`-included against the eum-mcheck
//!   modeled atomics and every reader/writer interleaving of a tiny
//!   scenario is explored exhaustively, including the stale-read
//!   reorderings real hardware rarely exhibits.
//!
//! The expensive exhaustive configuration runs under
//! `EUM_MCHECK_EXHAUSTIVE=1`; the default bound keeps `cargo test -q`
//! fast. The PR 4 fence-removal regression lives in its own binary
//! (`trace_fence_regression.rs`) because it re-binds the fence itself.

use eum_mcheck as mcheck;
use eum_telemetry::{QueryTrace, TraceHop, TraceOutcome, TraceRing};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Builds the trace whose every field is a function of `i`.
fn derived(i: u32) -> QueryTrace {
    QueryTrace {
        seq: 0,
        trace_id: i.wrapping_mul(0x9E37_79B9),
        hop: match i % 3 {
            0 => TraceHop::Client,
            1 => TraceHop::Ldns,
            _ => TraceHop::Authd,
        },
        shard: (i % 997) as u16,
        generation: (i as u64).wrapping_mul(3),
        ecs_scope: Some((i % 33) as u8),
        outcome: TraceOutcome::CacheHit,
        truncated: i.is_multiple_of(7),
        decode_ns: i,
        cache_ns: i.wrapping_mul(31).wrapping_add(7),
        route_ns: i ^ 0x5A5A_5A5A,
        encode_ns: i.rotate_left(5),
        total_ns: i.wrapping_add(0x1234_5678),
    }
}

/// Checks the cross-field relation; a torn record breaks it.
fn is_consistent(t: &QueryTrace) -> bool {
    let i = t.decode_ns;
    let want = derived(i);
    t.trace_id == want.trace_id
        && t.hop == want.hop
        && t.shard == want.shard
        && t.generation == want.generation
        && t.ecs_scope == want.ecs_scope
        && t.truncated == want.truncated
        && t.cache_ns == want.cache_ns
        && t.route_ns == want.route_ns
        && t.encode_ns == want.encode_ns
        && t.total_ns == want.total_ns
}

#[test]
fn no_torn_records_under_reader_writer_contention() {
    const PUSHES: u32 = 150_000;
    const READERS: usize = 3;

    // A tiny ring maximizes writer/reader collisions on the same slot.
    let ring = Arc::new(TraceRing::new(8));
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let ring = ring.clone();
        let done = done.clone();
        readers.push(std::thread::spawn(move || {
            let mut seen = 0u64;
            let mut dumps = 0u64;
            loop {
                // Load the flag *before* dumping: when it reads true the
                // writer has already joined, so this final dump runs on a
                // quiescent ring and must accept every slot.
                let stop = done.load(Ordering::Acquire);
                for t in ring.dump() {
                    assert!(is_consistent(&t), "torn trace record observed: {t:?}");
                    seen += 1;
                }
                dumps += 1;
                if stop {
                    break;
                }
            }
            (seen, dumps)
        }));
    }

    let writer = {
        let ring = ring.clone();
        std::thread::spawn(move || {
            for i in 0..PUSHES {
                ring.push(&derived(i));
            }
        })
    };
    writer.join().expect("writer");
    done.store(true, Ordering::Release);
    for r in readers {
        let (seen, dumps) = r.join().expect("reader");
        assert!(dumps > 0);
        // Readers may race every slot mid-write occasionally, but across
        // thousands of dumps they must accept plenty of records.
        assert!(seen > 0, "reader never accepted a single record");
    }

    assert_eq!(ring.pushed(), PUSHES as u64);
    // Quiescent dump: the full ring is readable and holds the newest
    // traces (seq is the push index).
    let final_dump = ring.dump();
    assert_eq!(final_dump.len(), ring.capacity());
    for t in &final_dump {
        assert!(is_consistent(t), "torn trace in quiescent ring: {t:?}");
        assert!(t.seq >= (PUSHES as u64 - ring.capacity() as u64));
    }
}

// ---------------------------------------------------------------------
// Model-checked variants
// ---------------------------------------------------------------------

/// Atomics surface the `#[path]`-included copy of `src/trace.rs`
/// compiles against: the eum-mcheck modeled primitives instead of the
/// production facade, so every atomic op below is a schedule point.
mod msync {
    pub use eum_mcheck::modeled::{fence, AtomicU64};
    pub use std::sync::atomic::Ordering;
}

/// The real seqlock source, re-bound against the modeled atomics. This
/// is the same text the crate compiles — not a replica — so the model
/// verdict applies to the shipped `TraceRing`.
#[path = "../src/trace.rs"]
#[allow(dead_code)]
mod trace_model;

/// A trace whose five packed words all differ between push 0 and push 1,
/// so any cross-push mix is detectable.
fn model_trace(i: u32) -> trace_model::QueryTrace {
    trace_model::QueryTrace {
        seq: 0,
        trace_id: 0xA000_0000 | i,
        hop: trace_model::TraceHop::Authd,
        shard: i as u16,
        generation: 100 + i as u64,
        ecs_scope: Some(i as u8),
        outcome: trace_model::TraceOutcome::Computed,
        truncated: false,
        decode_ns: i,
        cache_ns: 1000 + i,
        route_ns: 2000 + i,
        encode_ns: 3000 + i,
        total_ns: 4000 + i,
    }
}

/// An accepted record must be *exactly* one push's trace — every word
/// from the same push — and carry that push's ring sequence.
fn model_consistent(t: &trace_model::QueryTrace) -> bool {
    let want = trace_model::QueryTrace {
        seq: t.seq,
        ..model_trace(t.decode_ns)
    };
    *t == want && t.seq == t.decode_ns as u64
}

/// Default: exhaustive at 2 preemptions (the checker's default bound).
/// `EUM_MCHECK_EXHAUSTIVE=1` raises the bound and the execution budget.
fn model_cfg() -> mcheck::Config {
    if mcheck::exhaustive() {
        mcheck::Config::bounded(3, 10_000_000)
    } else {
        mcheck::Config::bounded(2, 2_000_000)
    }
}

/// The tentpole invariant, exhaustively: a one-slot ring maximizes slot
/// reuse; a writer pushes twice while the main thread dumps. No
/// interleaving — including stale relaxed reads the memory model allows
/// but x86 never shows — may yield a torn record surviving the seqlock
/// check.
#[test]
fn model_no_torn_record_is_ever_observable() {
    let report = mcheck::verify("trace-ring-no-torn-record", &model_cfg(), || {
        let ring = Arc::new(trace_model::TraceRing::new(1));
        let writer = {
            let ring = ring.clone();
            mcheck::spawn(move || {
                ring.push(&model_trace(0));
                ring.push(&model_trace(1));
            })
        };
        // Concurrent dump: anything accepted must be untorn.
        for t in ring.dump() {
            assert!(model_consistent(&t), "torn trace record accepted: {t:?}");
        }
        writer.join();
        // Quiescent dump after join: the newest push must be readable.
        let settled = ring.dump();
        assert_eq!(
            settled.len(),
            1,
            "quiescent one-slot ring must dump one record"
        );
        assert!(
            model_consistent(&settled[0]) && settled[0].seq == 1,
            "quiescent ring lost the newest push: {:?}",
            settled[0]
        );
    });
    eprintln!(
        "trace-ring model: {} executions, complete = {}",
        report.executions, report.complete
    );
    assert!(
        report.complete,
        "state space must be fully explored within the bound"
    );
}

/// The modeled unit tests from `src/trace.rs` also compile into this
/// binary (fallback mode — no model run active), proving the modeled
/// atomics are drop-in for the production facade.
#[test]
fn model_fallback_ring_roundtrips_outside_a_run() {
    let ring = trace_model::TraceRing::new(4);
    ring.push(&model_trace(0));
    ring.push(&model_trace(1));
    let got = ring.dump();
    assert_eq!(got.len(), 2);
    assert!(got.iter().all(model_consistent));
}
