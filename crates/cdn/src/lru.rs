//! A fixed-capacity LRU cache.
//!
//! Backs each CDN server's content cache. Implemented as a hash map into an
//! arena of doubly-linked nodes so that hit, insert, and evict are all
//! O(1) — these run on every simulated HTTP request, which is the hottest
//! loop in the roll-out scenario.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A least-recently-used set with fixed capacity (values are unit; the CDN
/// cache only needs membership + recency).
#[derive(Debug, Clone)]
pub struct LruSet<K: Eq + Hash + Clone> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    capacity: usize,
}

impl<K: Eq + Hash + Clone> LruSet<K> {
    /// Creates a cache holding at most `capacity` keys. Zero capacity is
    /// permitted and caches nothing.
    pub fn new(capacity: usize) -> Self {
        LruSet {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Checks membership and, on a hit, marks the key most-recently used.
    pub fn touch(&mut self, key: &K) -> bool {
        match self.map.get(key).copied() {
            Some(idx) => {
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                true
            }
            None => false,
        }
    }

    /// Membership test without recency update.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts a key as most-recently used, evicting the least-recently
    /// used key if at capacity. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        if self.touch(&key) {
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL);
            self.unlink(tail);
            let old = self.nodes[tail].key.clone();
            self.map.remove(&old);
            self.free.push(tail);
            evicted = Some(old);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i].key = key.clone();
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently used (test/diagnostic helper).
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut p = self.head;
        while p != NIL {
            out.push(self.nodes[p].key.clone());
            p = self.nodes[p].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_touch() {
        let mut c = LruSet::new(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), None);
        assert!(c.touch(&1));
        assert!(!c.touch(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut c = LruSet::new(2);
        c.insert(1);
        c.insert(2);
        // Touch 1 so 2 becomes LRU.
        c.touch(&1);
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        assert!(!c.contains(&2));
    }

    #[test]
    fn reinserting_existing_key_refreshes_without_evicting() {
        let mut c = LruSet::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.keys_mru(), vec![1, 2]);
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruSet::new(0);
        assert_eq!(c.insert(1), None);
        assert!(!c.contains(&1));
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_one() {
        let mut c = LruSet::new(1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), Some(1));
        assert_eq!(c.keys_mru(), vec![2]);
    }

    #[test]
    fn clear_resets() {
        let mut c = LruSet::new(4);
        for i in 0..4 {
            c.insert(i);
        }
        c.clear();
        assert!(c.is_empty());
        c.insert(9);
        assert_eq!(c.keys_mru(), vec![9]);
    }

    #[test]
    fn mru_order_tracks_touches() {
        let mut c = LruSet::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(&2);
        assert_eq!(c.keys_mru(), vec![2, 3, 1]);
    }

    #[test]
    fn node_slots_are_reused_after_eviction() {
        let mut c = LruSet::new(2);
        for i in 0..100 {
            c.insert(i);
        }
        // Arena must not grow unboundedly: 2 live + ≤1 free slack.
        assert!(c.nodes.len() <= 3, "arena grew to {}", c.nodes.len());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Reference model: VecDeque front = MRU.
    #[derive(Default)]
    struct Model {
        order: VecDeque<u8>,
        cap: usize,
    }

    impl Model {
        fn touch(&mut self, k: u8) -> bool {
            if let Some(pos) = self.order.iter().position(|x| *x == k) {
                let v = self.order.remove(pos).unwrap();
                self.order.push_front(v);
                true
            } else {
                false
            }
        }

        fn insert(&mut self, k: u8) -> Option<u8> {
            if self.cap == 0 {
                return None;
            }
            if self.touch(k) {
                return None;
            }
            let evicted = if self.order.len() >= self.cap {
                self.order.pop_back()
            } else {
                None
            };
            self.order.push_front(k);
            evicted
        }
    }

    proptest! {
        /// The arena LRU behaves identically to a naive reference model
        /// under arbitrary interleavings of inserts and touches.
        #[test]
        fn matches_reference_model(
            cap in 0usize..8,
            ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 0..200),
        ) {
            let mut lru = LruSet::new(cap);
            let mut model = Model { order: VecDeque::new(), cap };
            for (is_insert, key) in ops {
                if is_insert {
                    prop_assert_eq!(lru.insert(key), model.insert(key));
                } else {
                    prop_assert_eq!(lru.touch(&key), model.touch(key));
                }
                prop_assert_eq!(lru.keys_mru(), model.order.iter().copied().collect::<Vec<_>>());
            }
        }
    }
}
