//! Equivalence and divergence proofs for health-filter-then-score
//! cluster selection.
//!
//! The serve path now filters each unit's ranked candidate row down to
//! healthy clusters (alive and not overloaded) before taking the best
//! one, with a widening fallback chain when the filter empties the row.
//! The load-bearing claim is conservative: **when every cluster is
//! healthy the filter is the identity** — the answer bytes produced are
//! bit-exact what unfiltered selection produced, for every block, every
//! resolver, every traffic class. This suite proves that claim at the
//! wire level and then checks the divergence cases actually divert:
//!
//! * all healthy — filtered pick == first ranked candidate (the
//!   unfiltered walk's result), and a map whose overload marks were set
//!   and cleared answers byte-identically to a pristine clone;
//! * primary overloaded — traffic moves to the next ranked candidate,
//!   never off the ranking;
//! * everything overloaded — the chain falls back to the ranked primary
//!   (overload beats outage: shedding rankings entirely would stampede
//!   the escape cluster) and the answers are again byte-identical to the
//!   all-healthy map;
//! * dead primary + overloaded alternate — healthy-but-worse beats
//!   overloaded-but-better.

use eum_cdn::{
    deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig, TrafficClass,
};
use eum_dns::{encode_message, EcsOption, Message, OptData, QueryContext, Question};
use eum_mapping::{MappingConfig, MappingPolicy, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::Registry;
use std::net::Ipv4Addr;
use std::sync::Arc;

const SEED: u64 = 0xF117E5;

fn world() -> (Internet, CdnPlatform, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 12);
    let cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            policy: MappingPolicy::end_user_default(),
            max_ping_targets: 40,
            ..MappingConfig::default()
        },
    );
    (net, cdn, map)
}

fn ctx(resolver_ip: Ipv4Addr) -> QueryContext {
    QueryContext {
        resolver_ip,
        now_ms: 0,
    }
}

/// Every answer the low-level servers would produce for a full sweep of
/// the universe: per block an ECS A query, per resolver a plain A query,
/// across three domains — encoded to wire bytes.
fn answer_sweep(net: &Internet, map: &MappingSystem) -> Vec<Vec<u8>> {
    let low = map.ns_ips()[1];
    let ldns = net.resolvers[0].ip;
    let mut out = Vec::new();
    for d in 0..3u16 {
        let qname: eum_dns::DnsName = format!("e{d}.cdn.example").parse().unwrap();
        for (i, b) in net.blocks.iter().enumerate() {
            let q = Message::query(
                d * 4096 + i as u16,
                Question::a(qname.clone()),
                Some(OptData::with_ecs(EcsOption::query(b.client_ip(), 24))),
            );
            out.push(encode_message(&map.answer(low, &q, &ctx(ldns))));
        }
        for (j, r) in net.resolvers.iter().enumerate() {
            let q = Message::query(d * 4096 + 2048 + j as u16, Question::a(qname.clone()), None);
            out.push(encode_message(&map.answer(low, &q, &ctx(r.ip))));
        }
    }
    out
}

#[test]
fn all_healthy_filter_is_identity_bit_exact() {
    let (net, cdn, mut map) = world();
    let pristine = answer_sweep(&net, &map);

    // Unfiltered-selection oracle: with every cluster healthy, the
    // filtered pick must be exactly the head of each ranked candidate
    // row — what the unfiltered walk (first *alive* candidate) returns.
    for class in TrafficClass::ALL {
        for b in &net.blocks {
            let ranked = map.candidate_clusters_for_block(b.prefix, class).unwrap();
            assert!(!ranked.is_empty());
            assert_eq!(
                map.assigned_cluster_for_block_class(b.prefix, class),
                Some(ranked[0]),
                "block {}: filtered pick must be the ranked primary",
                b.prefix
            );
        }
        for r in &net.resolvers {
            // Unknown resolvers take the escape path, not a ranked row.
            let Some(ranked) = map.candidate_clusters_for_ldns(r.ip, class) else {
                continue;
            };
            assert_eq!(
                map.assigned_cluster_for_ldns_class(r.ip, class),
                Some(ranked[0]),
                "ldns {}: filtered pick must be the ranked primary",
                r.ip
            );
        }
    }

    // Exercising the filter machinery and restoring health must leave
    // the answers bit-exact: mark/clear every cluster and flip liveness
    // through a refresh round-trip.
    for c in &cdn.clusters {
        assert!(map.set_cluster_overloaded(c.id, true));
        assert!(map.cluster_overloaded(c.id));
    }
    for c in &cdn.clusters {
        assert!(map.set_cluster_overloaded(c.id, false));
        assert!(!map.cluster_overloaded(c.id));
    }
    map.refresh_liveness(&cdn);
    assert_eq!(
        pristine,
        answer_sweep(&net, &map),
        "all-healthy answers must be bit-exact after a filter round-trip"
    );
}

#[test]
fn overloaded_primary_diverts_to_next_ranked_candidate() {
    let (net, _cdn, mut map) = world();
    let reg = Arc::new(Registry::new());
    map.attach_telemetry(reg.clone());

    // Find a block with at least two distinct ranked candidates.
    let (block, ranked) = net
        .blocks
        .iter()
        .find_map(|b| {
            let r = map
                .candidate_clusters_for_block(b.prefix, TrafficClass::Web)
                .unwrap();
            (r.len() >= 2 && r[0] != r[1]).then_some((b.prefix, r))
        })
        .expect("universe has a block with a ranked alternate");

    assert!(map.set_cluster_overloaded(ranked[0], true));
    let picked = map.assigned_cluster_for_block(block).unwrap();
    assert_ne!(picked, ranked[0], "overloaded primary must be filtered");
    // Next healthy candidate in ranked order, never off the ranking.
    let expect = *ranked[1..].iter().find(|c| **c != ranked[0]).unwrap();
    assert_eq!(picked, expect);

    // The walk depth is visible as a ranked (not overloaded) fallback:
    // a healthy alternate existed.
    let ranked_ct = reg
        .counter(
            "eum_mapping_fallback_depth_total",
            "",
            &[("rank", "ranked")],
        )
        .get();
    assert!(ranked_ct >= 1, "divert must count as a ranked fallback");
}

#[test]
fn fully_overloaded_map_serves_the_ranked_primary() {
    let (net, cdn, mut map) = world();
    let pristine = answer_sweep(&net, &map);
    let reg = Arc::new(Registry::new());
    map.attach_telemetry(reg.clone());

    for c in &cdn.clusters {
        assert!(map.set_cluster_overloaded(c.id, true));
    }
    // Overload beats outage: with every cluster overloaded the chain
    // returns to the ranked primary, so the answers are byte-identical
    // to the all-healthy map — no stampede onto an escape cluster.
    assert_eq!(
        pristine,
        answer_sweep(&net, &map),
        "fully-overloaded answers must match all-healthy answers"
    );
    let overloaded_ct = reg
        .counter(
            "eum_mapping_fallback_depth_total",
            "",
            &[("rank", "overloaded")],
        )
        .get();
    assert!(
        overloaded_ct > 0,
        "serving past an emptied filter must count rank=overloaded"
    );
}

#[test]
fn dead_primary_with_overloaded_alternate_prefers_healthy_depth() {
    let (net, mut cdn, mut map) = world();
    let (block, ranked) = net
        .blocks
        .iter()
        .find_map(|b| {
            let r = map
                .candidate_clusters_for_block(b.prefix, TrafficClass::Web)
                .unwrap();
            let mut distinct = r.clone();
            distinct.dedup();
            (distinct.len() >= 3).then_some((b.prefix, r))
        })
        .expect("universe has a block with three distinct candidates");

    // Kill the primary, overload the first alternate: the healthy (if
    // worse-ranked) candidate must win over the overloaded one.
    cdn.set_cluster_alive(ranked[0], false);
    map.refresh_liveness(&cdn);
    let alt = *ranked[1..].iter().find(|c| **c != ranked[0]).unwrap();
    assert!(map.set_cluster_overloaded(alt, true));

    let picked = map.assigned_cluster_for_block(block).unwrap();
    assert_ne!(picked, ranked[0], "dead cluster must never serve");
    assert_ne!(picked, alt, "healthy-but-worse beats overloaded-but-better");
    let expect = *ranked
        .iter()
        .find(|c| **c != ranked[0] && **c != alt)
        .unwrap();
    assert_eq!(picked, expect);

    // Now overload everything else too: the ranked overloaded alternate
    // (not the dead primary) serves.
    for c in &cdn.clusters {
        assert!(map.set_cluster_overloaded(c.id, true));
    }
    let picked = map.assigned_cluster_for_block(block).unwrap();
    assert_eq!(picked, alt, "ranked overloaded beats off-ranking answers");
}
