//! The recursive resolver (LDNS).
//!
//! Implements the behaviour of the paper's "local domain name server": it
//! caches answers (honoring ECS scopes per RFC 7871), follows referrals
//! through the CDN's two-level name-server hierarchy, chases CNAMEs, and —
//! when [`EcsMode::On`] — forwards a truncated client prefix upstream,
//! which is precisely what Google Public DNS and OpenDNS turned on for the
//! roll-out the paper measures (§4).
//!
//! The resolver is transport-agnostic: it hands wire-encoded query bytes
//! to an [`Upstream`] implementation (the simulator's network) and decodes
//! the wire-encoded response, so every authoritative exchange exercises
//! the real codec.

use crate::cache::{CachedAnswer, EcsCache};
use crate::edns::{EcsOption, OptData};
use crate::message::{Message, Question, RData, Rcode, RrType};
use crate::name::DnsName;
use crate::wire::{decode_message, encode_message};
use eum_geo::Prefix;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Whether (and how) the resolver forwards EDNS0 Client Subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcsMode {
    /// No client information is forwarded — traditional NS-based mapping
    /// sees only the resolver's own IP.
    Off,
    /// Forward a `/source_prefix` of the client address. Public resolvers
    /// use /24 ("A prefix longer than /24 is discouraged to retain
    /// client's privacy", paper §2.1 fn. 4).
    On {
        /// Source prefix length sent upstream.
        source_prefix: u8,
    },
}

/// Resolver configuration.
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfig {
    /// ECS forwarding mode.
    pub ecs: EcsMode,
    /// Maximum CNAME chase depth.
    pub max_cname_chase: usize,
    /// Maximum referrals per resolution.
    pub max_referrals: usize,
    /// TTL for cached negative answers, milliseconds.
    pub negative_ttl_ms: u64,
    /// Honor ECS scopes when caching (RFC 7871 §7.3.1). Setting this to
    /// `false` is a deliberately protocol-violating ablation: answers are
    /// cached per qname only, eliminating the §5.2 query amplification at
    /// the cost of serving one client's scoped answer to every client —
    /// the counterfactual that shows the amplification is the *price of
    /// correctness*, not an implementation artifact.
    pub honor_ecs_scope: bool,
    /// Cap on total cache entries (`None` = unbounded). Real resolvers
    /// bound cache memory; per-scope ECS entries are the §5.2 growth that
    /// pressures this bound.
    pub cache_max_entries: Option<usize>,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            ecs: EcsMode::Off,
            max_cname_chase: 8,
            max_referrals: 8,
            negative_ttl_ms: 30_000,
            honor_ecs_scope: true,
            cache_max_entries: None,
        }
    }
}

/// Network access to authoritative servers, supplied by the caller.
pub trait Upstream {
    /// Sends wire bytes to the authoritative server at `server` and
    /// returns (wire response, round-trip time in ms).
    fn query(&mut self, server: Ipv4Addr, query: &[u8], now_ms: u64) -> (Vec<u8>, f64);

    /// Bootstrap referral: the IP of a name server that can start the
    /// resolution of `name` (stands in for the root/TLD infrastructure,
    /// which the paper's system sits below).
    fn referral_root(&mut self, name: &DnsName) -> Ipv4Addr;
}

/// The outcome of one client resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolution {
    /// Final A-record IPs (the CDN returns two or more, §1 fn. 2).
    pub ips: Vec<Ipv4Addr>,
    /// Final response code.
    pub rcode: Rcode,
    /// True when the answer came entirely from cache.
    pub from_cache: bool,
    /// Wall-clock spent on upstream queries, ms (zero on full cache hit).
    pub elapsed_ms: f64,
    /// Number of upstream queries issued.
    pub upstream_queries: u32,
    /// Minimum TTL across the answer chain, seconds.
    pub ttl_s: u32,
}

/// Per-resolver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolverStats {
    /// Client resolutions served.
    pub resolutions: u64,
    /// Resolutions fully served from cache.
    pub cache_answers: u64,
    /// Upstream queries issued.
    pub upstream_queries: u64,
    /// Resolutions that failed (SERVFAIL).
    pub failures: u64,
}

/// A caching recursive resolver.
#[derive(Debug, Clone)]
pub struct RecursiveResolver {
    /// The resolver's own unicast IP (sent to authorities as the source).
    pub ip: Ipv4Addr,
    cfg: ResolverConfig,
    cache: EcsCache,
    /// Delegation cache: zone apex → (name-server IP, expiry ms).
    delegations: HashMap<DnsName, (Ipv4Addr, u64)>,
    next_id: u16,
    stats: ResolverStats,
}

impl RecursiveResolver {
    /// Creates a resolver with the given unicast IP and configuration.
    pub fn new(ip: Ipv4Addr, cfg: ResolverConfig) -> Self {
        let cache = match cfg.cache_max_entries {
            Some(cap) => EcsCache::bounded(cap),
            None => EcsCache::new(),
        };
        RecursiveResolver {
            ip,
            cfg,
            cache,
            delegations: HashMap::new(),
            next_id: 1,
            stats: ResolverStats::default(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> ResolverConfig {
        self.cfg
    }

    /// Switches the ECS mode (the roll-out flips public resolvers from
    /// `Off` to `On { 24 }`).
    pub fn set_ecs(&mut self, mode: EcsMode) {
        self.cfg.ecs = mode;
    }

    /// Read-only cache access (entry counts for scaling analyses).
    pub fn cache(&self) -> &EcsCache {
        &self.cache
    }

    /// Counters so far.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    fn fresh_id(&mut self) -> u16 {
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.next_id
    }

    /// The cache-lookup client key under the current ECS mode: with ECS
    /// off, answers are client-independent (global entries only).
    fn cache_client(&self, client: Ipv4Addr) -> Option<Ipv4Addr> {
        match self.cfg.ecs {
            EcsMode::Off => None,
            EcsMode::On { .. } => Some(client),
        }
    }

    /// Extracts (final A IPs, next CNAME target) from an answer section
    /// for `qname`, following any in-message chain.
    fn walk_answers(
        records: &[crate::message::Record],
        qname: &DnsName,
    ) -> (Vec<Ipv4Addr>, Option<DnsName>, u32) {
        let mut current = qname.clone();
        let mut min_ttl = u32::MAX;
        for _ in 0..9 {
            let ips: Vec<Ipv4Addr> = records
                .iter()
                .filter(|r| r.name == current)
                .filter_map(|r| match r.rdata {
                    RData::A(ip) => Some(ip),
                    _ => None,
                })
                .collect();
            if !ips.is_empty() {
                let ttl = records
                    .iter()
                    .filter(|r| r.name == current || matches!(r.rdata, RData::Cname(_)))
                    .map(|r| r.ttl)
                    .min()
                    .unwrap_or(0);
                return (ips, None, ttl.min(min_ttl));
            }
            let cname = records.iter().find_map(|r| {
                if r.name == current {
                    if let RData::Cname(t) = &r.rdata {
                        return Some((t.clone(), r.ttl));
                    }
                }
                None
            });
            match cname {
                Some((target, ttl)) => {
                    min_ttl = min_ttl.min(ttl);
                    current = target;
                }
                None => break,
            }
        }
        let min_ttl = if min_ttl == u32::MAX { 0 } else { min_ttl };
        (
            Vec::new(),
            if current != *qname {
                Some(current)
            } else {
                None
            },
            min_ttl,
        )
    }

    /// Resolves `qname` (type A) on behalf of `client`.
    pub fn resolve(
        &mut self,
        qname: &DnsName,
        client: Ipv4Addr,
        now_ms: u64,
        upstream: &mut dyn Upstream,
    ) -> Resolution {
        self.stats.resolutions += 1;
        let mut elapsed = 0.0f64;
        let mut queries = 0u32;
        let mut current = qname.clone();
        let mut any_upstream = false;
        let mut min_ttl = u32::MAX;

        for _chase in 0..=self.cfg.max_cname_chase {
            // 1. Cache.
            if let Some(hit) =
                self.cache
                    .lookup(&current, RrType::A, self.cache_client(client), now_ms)
            {
                if hit.rcode != Rcode::NoError {
                    return self.finish(Vec::new(), hit.rcode, !any_upstream, elapsed, queries, 0);
                }
                let (ips, next, ttl) = Self::walk_answers(&hit.records, &current);
                min_ttl = min_ttl
                    .min(((hit.expires_ms.saturating_sub(now_ms)) / 1000) as u32)
                    .min(if ttl > 0 { ttl } else { u32::MAX });
                if !ips.is_empty() {
                    return self.finish(
                        ips,
                        Rcode::NoError,
                        !any_upstream,
                        elapsed,
                        queries,
                        min_ttl,
                    );
                }
                if let Some(next) = next {
                    current = next;
                    continue;
                }
                // Cached entry with neither A nor usable CNAME: fall through
                // to an upstream query.
            }

            // 2. Iterative resolution from the deepest cached delegation.
            let mut server = self
                .delegation_for(&current, now_ms)
                .unwrap_or_else(|| upstream.referral_root(&current));
            let mut resolved_here = false;
            for _hop in 0..self.cfg.max_referrals {
                let ecs = match self.cfg.ecs {
                    EcsMode::Off => None,
                    EcsMode::On { source_prefix } => {
                        Some(OptData::with_ecs(EcsOption::query(client, source_prefix)))
                    }
                };
                let query = Message::query(self.fresh_id(), Question::a(current.clone()), ecs);
                let bytes = encode_message(&query);
                let (resp_bytes, rtt) = upstream.query(server, &bytes, now_ms + elapsed as u64);
                elapsed += rtt;
                queries += 1;
                any_upstream = true;
                self.stats.upstream_queries += 1;
                let resp = match decode_message(&resp_bytes) {
                    Ok(m) => m,
                    Err(_) => {
                        return self.finish(Vec::new(), Rcode::ServFail, false, elapsed, queries, 0)
                    }
                };

                if !resp.answers.is_empty() && resp.flags.rcode == Rcode::NoError {
                    self.cache_answer(&current, &resp, now_ms);
                    let (ips, next, ttl) = Self::walk_answers(&resp.answers, &current);
                    if ttl > 0 {
                        min_ttl = min_ttl.min(ttl);
                    }
                    if !ips.is_empty() {
                        return self.finish(ips, Rcode::NoError, false, elapsed, queries, min_ttl);
                    }
                    if let Some(next) = next {
                        current = next;
                        resolved_here = true;
                        break; // re-enter outer loop (cache check first)
                    }
                    // Answer without A or CNAME for us: give up.
                    return self.finish(Vec::new(), Rcode::ServFail, false, elapsed, queries, 0);
                }

                if resp.flags.rcode == Rcode::NxDomain {
                    self.cache.insert(
                        current.clone(),
                        RrType::A,
                        CachedAnswer {
                            records: Vec::new(),
                            rcode: Rcode::NxDomain,
                            scope: Prefix::ALL,
                            expires_ms: now_ms + self.cfg.negative_ttl_ms,
                        },
                    );
                    return self.finish(Vec::new(), Rcode::NxDomain, false, elapsed, queries, 0);
                }

                // Referral?
                let referral = resp.authorities.iter().find_map(|r| match &r.rdata {
                    RData::Ns(target) => Some((r.name.clone(), target.clone(), r.ttl)),
                    _ => None,
                });
                match referral {
                    Some((zone, ns_name, ttl)) => {
                        let glue = resp.additionals.iter().find_map(|g| {
                            if g.name == ns_name {
                                if let RData::A(ip) = g.rdata {
                                    return Some(ip);
                                }
                            }
                            None
                        });
                        match glue {
                            Some(ip) => {
                                self.delegations
                                    .insert(zone, (ip, now_ms + ttl as u64 * 1000));
                                server = ip;
                            }
                            None => {
                                return self.finish(
                                    Vec::new(),
                                    Rcode::ServFail,
                                    false,
                                    elapsed,
                                    queries,
                                    0,
                                )
                            }
                        }
                    }
                    None => {
                        return self.finish(
                            Vec::new(),
                            resp.flags.rcode,
                            false,
                            elapsed,
                            queries,
                            0,
                        )
                    }
                }
            }
            if !resolved_here {
                // Referral limit exhausted.
                return self.finish(Vec::new(), Rcode::ServFail, false, elapsed, queries, 0);
            }
        }
        self.finish(Vec::new(), Rcode::ServFail, false, elapsed, queries, 0)
    }

    fn finish(
        &mut self,
        ips: Vec<Ipv4Addr>,
        rcode: Rcode,
        from_cache: bool,
        elapsed_ms: f64,
        upstream_queries: u32,
        ttl_s: u32,
    ) -> Resolution {
        if rcode == Rcode::ServFail {
            self.stats.failures += 1;
        }
        if from_cache {
            self.stats.cache_answers += 1;
        }
        Resolution {
            ips,
            rcode,
            from_cache,
            elapsed_ms,
            upstream_queries,
            ttl_s,
        }
    }

    /// Deepest unexpired cached delegation covering `name`.
    fn delegation_for(&mut self, name: &DnsName, now_ms: u64) -> Option<Ipv4Addr> {
        let mut best: Option<(usize, Ipv4Addr)> = None;
        self.delegations.retain(|_, (_, exp)| *exp > now_ms);
        for (zone, (ip, _)) in &self.delegations {
            if name.is_within(zone) {
                let depth = zone.label_count();
                if best.is_none_or(|(d, _)| depth > d) {
                    best = Some((depth, *ip));
                }
            }
        }
        best.map(|(_, ip)| ip)
    }

    /// Caches a positive answer under the ECS scope rules: the scope from
    /// the response's ECS option, or a global entry when ECS is absent or
    /// scope 0 (RFC 7871 §7.3.1). A scope longer than the source is
    /// clamped to the source block the resolver asked about.
    fn cache_answer(&mut self, qname: &DnsName, resp: &Message, now_ms: u64) {
        let ttl_s = resp.min_answer_ttl().unwrap_or(0).max(1) as u64;
        let scope = match resp.ecs() {
            Some(e) if e.scope_prefix > 0 && self.cfg.honor_ecs_scope => Prefix::of(
                e.addr,
                e.scope_prefix.min(e.source_prefix.max(e.scope_prefix)),
            )
            .truncate(e.scope_prefix),
            _ => Prefix::ALL,
        };
        self.cache.insert(
            qname.clone(),
            RrType::A,
            CachedAnswer {
                records: resp.answers.clone(),
                rcode: Rcode::NoError,
                scope,
                expires_ms: now_ms + ttl_s * 1000,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::{Authority, QueryContext, StaticAuthority};
    use crate::message::Record;
    use crate::name::name;

    /// An in-process "network" of static authorities keyed by server IP.
    struct TestNet {
        servers: HashMap<Ipv4Addr, StaticAuthority>,
        root: Ipv4Addr,
        rtt: f64,
        pub query_count: u32,
    }

    impl TestNet {
        fn new(root: Ipv4Addr) -> Self {
            TestNet {
                servers: HashMap::new(),
                root,
                rtt: 10.0,
                query_count: 0,
            }
        }

        fn install(&mut self, ip: &str, auth: StaticAuthority) {
            self.servers.insert(ip.parse().unwrap(), auth);
        }
    }

    impl Upstream for TestNet {
        fn query(&mut self, server: Ipv4Addr, query: &[u8], now_ms: u64) -> (Vec<u8>, f64) {
            self.query_count += 1;
            let msg = decode_message(query).expect("well-formed query");
            let ctx = QueryContext {
                resolver_ip: "192.0.2.53".parse().unwrap(),
                now_ms,
            };
            let resp = match self.servers.get(&server) {
                Some(auth) => auth.handle(&msg, &ctx),
                None => Message::response_to(&msg, Rcode::ServFail),
            };
            (encode_message(&resp), self.rtt)
        }

        fn referral_root(&mut self, _name: &DnsName) -> Ipv4Addr {
            self.root
        }
    }

    /// Builds the canonical paper topology: shop.example CNAMEs into
    /// cdn.example, whose top-level server delegates to a low-level server
    /// that answers A.
    fn paper_net() -> TestNet {
        let mut net = TestNet::new("198.18.0.1".parse().unwrap());

        // "Root": knows both zones by delegation.
        let mut root = StaticAuthority::new();
        root.delegate(
            name("shop.example"),
            name("ns.shop.example"),
            "198.18.1.1".parse().unwrap(),
            86_400,
        );
        root.delegate(
            name("cdn.example"),
            name("top.cdn.example"),
            "198.18.2.1".parse().unwrap(),
            86_400,
        );
        net.install("198.18.0.1", root);

        // Content provider zone: CNAME into the CDN.
        let mut shop = StaticAuthority::new();
        shop.add(Record::cname(
            name("www.shop.example"),
            300,
            name("e1.cdn.example"),
        ));
        net.install("198.18.1.1", shop);

        // CDN top-level: delegates e1.cdn.example's zone to a low-level NS.
        let mut top = StaticAuthority::new();
        top.delegate(
            name("e1.cdn.example"),
            name("n0.e1.cdn.example"),
            "198.18.3.1".parse().unwrap(),
            1800,
        );
        net.install("198.18.2.1", top);

        // CDN low-level: answers A records.
        let mut low = StaticAuthority::new();
        low.add(Record::a(
            name("e1.cdn.example"),
            20,
            "96.7.1.1".parse().unwrap(),
        ));
        low.add(Record::a(
            name("e1.cdn.example"),
            20,
            "96.7.1.2".parse().unwrap(),
        ));
        net.install("198.18.3.1", low);

        net
    }

    fn resolver(ecs: EcsMode) -> RecursiveResolver {
        RecursiveResolver::new(
            "192.0.2.53".parse().unwrap(),
            ResolverConfig {
                ecs,
                ..ResolverConfig::default()
            },
        )
    }

    #[test]
    fn full_chain_resolution_works() {
        let mut net = paper_net();
        let mut r = resolver(EcsMode::Off);
        let res = r.resolve(
            &name("www.shop.example"),
            "10.0.0.1".parse().unwrap(),
            0,
            &mut net,
        );
        assert_eq!(res.rcode, Rcode::NoError);
        assert_eq!(res.ips.len(), 2);
        assert!(!res.from_cache);
        // root → shop (CNAME) → root → cdn-top (referral) → cdn-low (A):
        // 5 upstream queries, 10ms each.
        assert_eq!(res.upstream_queries, 5);
        assert!((res.elapsed_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn second_resolution_hits_cache() {
        let mut net = paper_net();
        let mut r = resolver(EcsMode::Off);
        let client = "10.0.0.1".parse().unwrap();
        let _ = r.resolve(&name("www.shop.example"), client, 0, &mut net);
        let res = r.resolve(&name("www.shop.example"), client, 1000, &mut net);
        assert!(res.from_cache);
        assert_eq!(res.upstream_queries, 0);
        assert_eq!(res.elapsed_ms, 0.0);
        assert_eq!(res.ips.len(), 2);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let mut net = paper_net();
        let mut r = resolver(EcsMode::Off);
        let client = "10.0.0.1".parse().unwrap();
        let _ = r.resolve(&name("www.shop.example"), client, 0, &mut net);
        let before = net.query_count;
        // A-record TTL is 20s; at t=25s the terminal answer must be
        // re-fetched (the CNAME with TTL 300 may still be cached).
        let res = r.resolve(&name("www.shop.example"), client, 25_000, &mut net);
        assert!(!res.from_cache);
        assert!(net.query_count > before);
        assert_eq!(res.ips.len(), 2);
    }

    #[test]
    fn ecs_off_shares_cache_across_clients() {
        let mut net = paper_net();
        let mut r = resolver(EcsMode::Off);
        let _ = r.resolve(
            &name("www.shop.example"),
            "10.0.0.1".parse().unwrap(),
            0,
            &mut net,
        );
        let res = r.resolve(
            &name("www.shop.example"),
            "172.16.0.1".parse().unwrap(),
            100,
            &mut net,
        );
        assert!(
            res.from_cache,
            "different client should share the global cache entry"
        );
    }

    #[test]
    fn ecs_on_with_scope_zero_still_shares() {
        // StaticAuthority echoes scope 0, so even with ECS on, entries are
        // global (client-independent content).
        let mut net = paper_net();
        let mut r = resolver(EcsMode::On { source_prefix: 24 });
        let _ = r.resolve(
            &name("www.shop.example"),
            "10.0.0.1".parse().unwrap(),
            0,
            &mut net,
        );
        let res = r.resolve(
            &name("www.shop.example"),
            "172.16.0.1".parse().unwrap(),
            100,
            &mut net,
        );
        assert!(res.from_cache);
    }

    #[test]
    fn nxdomain_is_cached_negatively() {
        let mut net = paper_net();
        let mut r = resolver(EcsMode::Off);
        let client = "10.0.0.1".parse().unwrap();
        let res = r.resolve(&name("missing.shop.example"), client, 0, &mut net);
        assert_eq!(res.rcode, Rcode::NxDomain);
        let before = net.query_count;
        let res2 = r.resolve(&name("missing.shop.example"), client, 1000, &mut net);
        assert_eq!(res2.rcode, Rcode::NxDomain);
        assert_eq!(net.query_count, before, "negative answer should be cached");
    }

    #[test]
    fn unknown_server_leads_to_servfail() {
        let mut net = TestNet::new("198.18.9.9".parse().unwrap());
        let mut r = resolver(EcsMode::Off);
        let res = r.resolve(&name("x.example"), "10.0.0.1".parse().unwrap(), 0, &mut net);
        assert_eq!(res.rcode, Rcode::ServFail);
        assert_eq!(r.stats().failures, 1);
    }

    #[test]
    fn delegations_are_reused() {
        let mut net = paper_net();
        let mut r = resolver(EcsMode::Off);
        let client = "10.0.0.1".parse().unwrap();
        let _ = r.resolve(&name("www.shop.example"), client, 0, &mut net);
        let q1 = net.query_count;
        // New name in the same delegated CDN zone after the A TTL expired:
        // the resolver should go straight to the cached low-level NS.
        let _ = r.resolve(&name("e1.cdn.example"), client, 25_000, &mut net);
        let q2 = net.query_count;
        assert_eq!(q2 - q1, 1, "only the low-level query should be needed");
    }

    /// An authority whose answer depends on the ECS block (scope /24),
    /// like an end-user-mapping low-level name server.
    struct ScopedAuth;

    impl Authority for ScopedAuth {
        fn handle(&self, query: &Message, _ctx: &QueryContext) -> Message {
            let mut resp = Message::response_to(query, crate::Rcode::NoError);
            let q = query.questions.first().unwrap();
            let ecs = query.ecs().copied();
            let third_octet = ecs.map(|e| e.addr.octets()[2]).unwrap_or(0);
            resp.answers.push(Record::a(
                q.name.clone(),
                60,
                Ipv4Addr::new(96, 0, third_octet, 1),
            ));
            if let Some(e) = ecs {
                resp.set_opt(crate::edns::OptData::with_ecs(
                    crate::edns::EcsOption::response(&e, 24),
                ));
            }
            resp
        }
    }

    /// Wraps ScopedAuth in an Upstream.
    struct ScopedNet {
        auth: ScopedAuth,
        pub queries: u32,
    }

    impl Upstream for ScopedNet {
        fn query(&mut self, _server: Ipv4Addr, query: &[u8], now_ms: u64) -> (Vec<u8>, f64) {
            self.queries += 1;
            let msg = decode_message(query).unwrap();
            let ctx = QueryContext {
                resolver_ip: "192.0.2.53".parse().unwrap(),
                now_ms,
            };
            (encode_message(&self.auth.handle(&msg, &ctx)), 5.0)
        }

        fn referral_root(&mut self, _name: &DnsName) -> Ipv4Addr {
            "198.18.0.1".parse().unwrap()
        }
    }

    #[test]
    fn scoped_answers_are_cached_per_block() {
        let mut net = ScopedNet {
            auth: ScopedAuth,
            queries: 0,
        };
        let mut r = resolver(EcsMode::On { source_prefix: 24 });
        let a = r.resolve(&name("d.example"), "10.0.1.5".parse().unwrap(), 0, &mut net);
        let b = r.resolve(
            &name("d.example"),
            "10.0.2.5".parse().unwrap(),
            10,
            &mut net,
        );
        assert_ne!(
            a.ips, b.ips,
            "different blocks get different scoped answers"
        );
        assert_eq!(net.queries, 2);
        // Same-block client reuses the cached scoped entry.
        let c = r.resolve(
            &name("d.example"),
            "10.0.1.200".parse().unwrap(),
            20,
            &mut net,
        );
        assert!(c.from_cache);
        assert_eq!(c.ips, a.ips);
        assert_eq!(net.queries, 2);
    }

    #[test]
    fn scope_ignoring_ablation_kills_amplification_and_correctness() {
        // The DESIGN.md ablation: caching per qname only removes the §5.2
        // amplification but serves the first client's answer to everyone.
        let mut net = ScopedNet {
            auth: ScopedAuth,
            queries: 0,
        };
        let mut r = RecursiveResolver::new(
            "192.0.2.53".parse().unwrap(),
            ResolverConfig {
                ecs: EcsMode::On { source_prefix: 24 },
                honor_ecs_scope: false,
                ..ResolverConfig::default()
            },
        );
        let a = r.resolve(&name("d.example"), "10.0.1.5".parse().unwrap(), 0, &mut net);
        let b = r.resolve(
            &name("d.example"),
            "10.0.2.5".parse().unwrap(),
            10,
            &mut net,
        );
        assert_eq!(net.queries, 1, "no amplification under the ablation");
        assert!(b.from_cache);
        assert_eq!(
            a.ips, b.ips,
            "…because the second client got the wrong (shared) answer"
        );
    }

    #[test]
    fn stats_track_activity() {
        let mut net = paper_net();
        let mut r = resolver(EcsMode::Off);
        let client = "10.0.0.1".parse().unwrap();
        let _ = r.resolve(&name("www.shop.example"), client, 0, &mut net);
        let _ = r.resolve(&name("www.shop.example"), client, 100, &mut net);
        let s = r.stats();
        assert_eq!(s.resolutions, 2);
        assert_eq!(s.cache_answers, 1);
        assert_eq!(s.upstream_queries, 5);
    }
}
