//! The live scrape endpoint: a minimal HTTP/1.0 responder exposing the
//! registry and the windowed time-series mid-run.
//!
//! [`ScrapeServer::spawn`] binds one `TcpListener` and serves three
//! routes, one short-lived connection per request (`Connection: close`,
//! no keep-alive, no chunking — every reply carries `Content-Length`):
//!
//! * `GET /metrics` — the registry's Prometheus text exposition
//!   (`text/plain; version=0.0.4`), scrapeable by stock Prometheus;
//! * `GET /timeseries.jsonl` — the attached [`WindowCapturer`]'s
//!   retained windows, one JSON object per line (empty when no capturer
//!   is attached);
//! * `GET /healthz` — `ok\n`, a liveness probe.
//!
//! Everything else is a 404. The accept loop runs on its own thread with
//! a nonblocking listener polled against a stop flag, so
//! [`ScrapeServer::stop_join`] returns promptly; request handling is
//! deliberately synchronous — scrapes are rare (seconds apart) and tiny,
//! and the serving shards never touch this thread.

use eum_telemetry::{Registry, WindowCapturer};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one request may take to arrive on an accepted connection
/// before it is dropped (scrapers send their request line immediately).
const REQUEST_TIMEOUT: Duration = Duration::from_millis(500);

/// Largest request head (request line + headers) we read.
const MAX_REQUEST: usize = 4096;

/// A running scrape endpoint; join with [`ScrapeServer::stop_join`].
pub struct ScrapeServer {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (port 0 = ephemeral) and starts the accept loop.
    /// `capturer` backs `/timeseries.jsonl`; pass `None` to serve only
    /// the metrics and health routes.
    pub fn spawn(
        addr: SocketAddrV4,
        registry: Arc<Registry>,
        capturer: Option<Arc<WindowCapturer>>,
    ) -> io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            accept_loop(listener, registry, capturer, stop2);
        });
        Ok(ScrapeServer {
            stop,
            addr: local,
            handle: Some(handle),
        })
    }

    /// The bound address (`http://<addr>/metrics` is the scrape URL).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to stop and joins it.
    pub fn stop_join(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    capturer: Option<Arc<WindowCapturer>>,
    stop: Arc<AtomicBool>,
) {
    // relaxed-ok: the stop flag carries no data; the loop only needs to
    // observe it eventually, and stop_join's SeqCst store + join gives
    // the final synchronization.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are serialized by design: one tiny response at
                // a time, no thread per connection to leak under load.
                let _ = serve_one(stream, &registry, capturer.as_deref());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one request head and writes one response. Any I/O error just
/// drops the connection — the scraper retries on its next interval.
fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    capturer: Option<&WindowCapturer>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the head (or the cap / timeout).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < MAX_REQUEST {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        );
    }
    match path {
        "/metrics" => {
            let body = registry.render_text();
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/timeseries.jsonl" => {
            let body = capturer.map(|c| c.to_jsonl()).unwrap_or_default();
            respond(&mut stream, 200, "OK", "application/x-ndjson", &body)
        }
        "/healthz" => respond(&mut stream, 200, "OK", "text/plain", "ok\n"),
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
