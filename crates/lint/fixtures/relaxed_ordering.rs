// Fixture for the relaxed-ordering rule.

use std::sync::atomic::{AtomicU64, Ordering};

fn violating(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // line 6: fires relaxed-ordering
}

fn justified(c: &AtomicU64) {
    // relaxed-ok: monotonic counter, no data published through it
    c.fetch_add(1, Ordering::Relaxed);
}

fn clean(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exempt_in_tests() {
        let c = AtomicU64::new(0);
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }
}
