//! Microbenchmarks for the DNS wire codec and ECS options — the per-query
//! cost every authoritative exchange in the simulator pays.

use criterion::{criterion_group, criterion_main, Criterion};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::name::name;
use eum_dns::wire::{decode_message, encode_message};
use eum_dns::{Message, Question, Rcode, Record};
use std::hint::black_box;

fn typical_query() -> Message {
    let ecs = EcsOption::query("93.184.216.34".parse().unwrap(), 24);
    Message::query(
        0x1234,
        Question::a(name("e42.cdn.example")),
        Some(OptData::with_ecs(ecs)),
    )
}

fn typical_response() -> Message {
    let q = typical_query();
    let mut r = Message::response_to(&q, Rcode::NoError);
    r.answers.push(Record::a(
        name("e42.cdn.example"),
        20,
        "96.7.1.1".parse().unwrap(),
    ));
    r.answers.push(Record::a(
        name("e42.cdn.example"),
        20,
        "96.7.1.2".parse().unwrap(),
    ));
    let ecs = EcsOption {
        addr: "93.184.216.0".parse().unwrap(),
        source_prefix: 24,
        scope_prefix: 20,
    };
    r.set_opt(OptData::with_ecs(ecs));
    r
}

fn bench_codec(c: &mut Criterion) {
    let query = typical_query();
    let response = typical_response();
    let query_bytes = encode_message(&query);
    let response_bytes = encode_message(&response);

    c.bench_function("encode_ecs_query", |b| {
        b.iter(|| encode_message(black_box(&query)))
    });
    c.bench_function("encode_a_response", |b| {
        b.iter(|| encode_message(black_box(&response)))
    });
    c.bench_function("decode_ecs_query", |b| {
        b.iter(|| decode_message(black_box(&query_bytes)).unwrap())
    });
    c.bench_function("decode_a_response", |b| {
        b.iter(|| decode_message(black_box(&response_bytes)).unwrap())
    });
    c.bench_function("query_response_round_trip", |b| {
        b.iter(|| {
            let qb = encode_message(black_box(&query));
            let q = decode_message(&qb).unwrap();
            let rb = encode_message(black_box(&response));
            let r = decode_message(&rb).unwrap();
            (q, r)
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
