//! Offline stub of `rand_chacha`: a genuine ChaCha12 block cipher driving
//! [`rand::RngCore`].
//!
//! The keystream is a faithful ChaCha implementation (D. J. Bernstein's
//! quarter-round over a 16-word state, 12 rounds), so statistical quality
//! matches the real crate; only the word-consumption order is this stub's
//! own. Everything is a pure function of the 32-byte seed.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha12-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter + 64-bit nonce (zero).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word in `block`.
    index: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha12Rng {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16, // force refill on first draw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn keystream_looks_uniform() {
        // Crude sanity: bit balance within 1% over 64k words.
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let ones: u64 = (0..65_536)
            .map(|_| rng.next_u32().count_ones() as u64)
            .sum();
        let total = 65_536u64 * 32;
        let frac = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&frac), "bit fraction {frac}");
    }

    #[test]
    fn zero_and_max_seeds_differ() {
        let mut z = ChaCha12Rng::from_seed([0u8; 32]);
        let mut m = ChaCha12Rng::from_seed([0xFF; 32]);
        assert_ne!(z.next_u64(), m.next_u64());
    }
}
