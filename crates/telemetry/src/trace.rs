//! Sampled per-query structured traces in a bounded, lock-free ring.
//!
//! The serving path cannot afford allocation or locking per query, but a
//! dump of "what did the last few thousand queries actually do, stage by
//! stage" is exactly what the paper's operators leaned on during the
//! roll-out. The compromise is a fixed ring of [`QueryTrace`] slots, each
//! a handful of atomic words guarded by a per-slot sequence number
//! (seqlock discipline): a writer claims a slot with one `fetch_add` on
//! the ring head, marks the slot odd, stores the packed words, and marks
//! it even; a reader copies the words and accepts them only if the
//! sequence was even and unchanged across the copy. Writers never wait,
//! readers simply skip slots being written. If the ring wraps a full lap
//! while one writer is mid-store, a garbled (but type-safe) entry could
//! in principle survive the check — with sampling in the hundreds and
//! rings in the thousands that needs two samples racing the same slot a
//! lap apart; traces are diagnostics, so best-effort is the right trade.
//!
//! Stage timings are saturated into `u32` nanoseconds (4.29 s caps —
//! far above any serve-path stage) to pack a whole trace into five words.
//!
//! Since PR 7 every trace also carries a **propagated trace id** and a
//! **hop** tag: the sim client stamps an id, eum-ldns reuses its low 16
//! bits as the upstream DNS message id, and authd stamps the id it sees
//! on the wire — so [`crate::span::stitch`] can join the per-layer rings
//! back into end-to-end query timelines.

// Atomics come through the mcheck facade (std in production builds, the
// modeled checker under `--cfg eum_mcheck` / `#[path]` model tests); the
// `raw-atomic` lint rule keeps this file off `std::sync::atomic`.
use crate::msync::{fence, AtomicU64, Ordering};

/// What the serve path did with a traced query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered from the shard's answer cache.
    CacheHit = 0,
    /// Computed through the snapshot's mapping tables.
    Computed = 1,
    /// Served uncached by design (whoami, cacheless config, TTL-0).
    Uncached = 2,
    /// Rejected as malformed (FORMERR or drop).
    Malformed = 3,
    /// Resolution failed (SERVFAIL, retries exhausted, no answer).
    Failed = 4,
    /// Shed by admission control (REFUSED, compute path over budget).
    Shed = 5,
}

impl TraceOutcome {
    fn from_u8(v: u8) -> TraceOutcome {
        match v {
            0 => TraceOutcome::CacheHit,
            1 => TraceOutcome::Computed,
            2 => TraceOutcome::Uncached,
            4 => TraceOutcome::Failed,
            5 => TraceOutcome::Shed,
            _ => TraceOutcome::Malformed,
        }
    }

    /// Short label for dumps.
    pub fn label(&self) -> &'static str {
        match self {
            TraceOutcome::CacheHit => "hit",
            TraceOutcome::Computed => "computed",
            TraceOutcome::Uncached => "uncached",
            TraceOutcome::Malformed => "malformed",
            TraceOutcome::Failed => "failed",
            TraceOutcome::Shed => "shed",
        }
    }
}

/// Which layer of the serving stack recorded a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceHop {
    /// The stub client (sim / loadgen) that originated the query.
    Client = 0,
    /// A recursive resolver (eum-ldns).
    Ldns = 1,
    /// The authoritative server (eum-authd).
    Authd = 2,
}

impl TraceHop {
    fn from_u8(v: u8) -> TraceHop {
        match v {
            1 => TraceHop::Ldns,
            2 => TraceHop::Authd,
            _ => TraceHop::Client,
        }
    }

    /// Short label for dumps.
    pub fn label(&self) -> &'static str {
        match self {
            TraceHop::Client => "client",
            TraceHop::Ldns => "ldns",
            TraceHop::Authd => "authd",
        }
    }
}

/// One sampled query, stage by stage. All timings in nanoseconds.
///
/// The four stage fields are named for the authd serve path; the other
/// hops reinterpret them (documented per hop in DESIGN.md): an `Ldns`
/// record uses `decode_ns` for the cache probe, `cache_ns` for the
/// delegation fetch, `route_ns` for the upstream answer exchange and
/// `encode_ns` for the TCP retry leg; a `Client` record fills only
/// `total_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// Ring-assigned sequence (global sample order).
    pub seq: u64,
    /// Propagated trace id joining this record to the other hops' rings
    /// (0: unknown — the query did not carry one).
    pub trace_id: u32,
    /// Which layer recorded this trace.
    pub hop: TraceHop,
    /// Serving shard index.
    pub shard: u16,
    /// Map snapshot generation the query was answered from.
    pub generation: u64,
    /// ECS source prefix length carried by the query (`None`: no ECS).
    pub ecs_scope: Option<u8>,
    /// How the answer was produced.
    pub outcome: TraceOutcome,
    /// The answer was truncated (authd) / retried over TCP (ldns).
    pub truncated: bool,
    /// Wire-decode time.
    pub decode_ns: u32,
    /// Answer-cache probe (and replay, on a hit).
    pub cache_ns: u32,
    /// Snapshot route (mapping-table answer computation; 0 on a hit).
    pub route_ns: u32,
    /// Response encode time.
    pub encode_ns: u32,
    /// Whole serve path, receive to send.
    pub total_ns: u32,
}

impl QueryTrace {
    /// An all-zero `Client`-hop record for `trace_id` — the starting
    /// point for hops that only fill a few fields.
    pub fn blank(trace_id: u32, hop: TraceHop) -> QueryTrace {
        QueryTrace {
            seq: 0,
            trace_id,
            hop,
            shard: 0,
            generation: 0,
            ecs_scope: None,
            outcome: TraceOutcome::Computed,
            truncated: false,
            decode_ns: 0,
            cache_ns: 0,
            route_ns: 0,
            encode_ns: 0,
            total_ns: 0,
        }
    }

    fn pack(&self) -> [u64; 5] {
        let scope = self.ecs_scope.map(|s| s as u64).unwrap_or(0xFF);
        [
            self.generation,
            (self.decode_ns as u64) << 32 | self.cache_ns as u64,
            (self.route_ns as u64) << 32 | self.encode_ns as u64,
            (self.total_ns as u64) << 32
                | (self.shard as u64) << 16
                | (self.outcome as u64) << 8
                | scope,
            (self.trace_id as u64) << 32 | (self.hop as u64) << 8 | self.truncated as u64,
        ]
    }

    fn unpack(seq: u64, w: [u64; 5]) -> QueryTrace {
        let scope = (w[3] & 0xFF) as u8;
        QueryTrace {
            seq,
            trace_id: (w[4] >> 32) as u32,
            hop: TraceHop::from_u8((w[4] >> 8) as u8),
            shard: (w[3] >> 16) as u16,
            generation: w[0],
            ecs_scope: (scope != 0xFF).then_some(scope),
            outcome: TraceOutcome::from_u8((w[3] >> 8) as u8),
            truncated: w[4] & 1 == 1,
            decode_ns: (w[1] >> 32) as u32,
            cache_ns: w[1] as u32,
            route_ns: (w[2] >> 32) as u32,
            encode_ns: w[2] as u32,
            total_ns: (w[3] >> 32) as u32,
        }
    }

    /// One-line rendering for dumps.
    pub fn render(&self) -> String {
        let scope = match self.ecs_scope {
            Some(s) => format!("/{s}"),
            None => "-".to_string(),
        };
        format!(
            "#{:<6} id {:08x} {:<6} shard {} gen {} ecs {:<4} {:<9}{} decode {:>6}ns cache {:>6}ns route {:>6}ns encode {:>6}ns total {:>7}ns",
            self.seq,
            self.trace_id,
            self.hop.label(),
            self.shard,
            self.generation,
            scope,
            self.outcome.label(),
            if self.truncated { " tc" } else { "" },
            self.decode_ns,
            self.cache_ns,
            self.route_ns,
            self.encode_ns,
            self.total_ns,
        )
    }
}

struct Slot {
    /// 0: never written. Odd: write in progress. Even `2(h+1)`: slot
    /// holds the trace claimed with head value `h`.
    seq: AtomicU64,
    words: [AtomicU64; 5],
}

/// A bounded lock-free ring of sampled query traces.
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    /// Sample 1-in-N queries (0 disables sampling). Runtime-adjustable;
    /// recording loops read it per query.
    sample_every: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.pushed())
            .finish()
    }
}

impl TraceRing {
    /// A ring holding the most recent `capacity` sampled traces, with
    /// sampling initially on for every query (`sample_every = 1`).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing::with_sampling(capacity, 1)
    }

    /// A ring with an initial 1-in-`every` sampling rate (0 disables).
    pub fn with_sampling(capacity: usize, every: u64) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: Default::default(),
                })
                .collect(),
            head: AtomicU64::new(0),
            sample_every: AtomicU64::new(every),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The current 1-in-N sampling rate (0: sampling disabled).
    pub fn sample_every(&self) -> u64 {
        // relaxed-ok: a standalone config value; no data is published
        // through it.
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Changes the sampling rate at runtime; recording loops pick the
    /// new value up on their next query. Mirror the change into the
    /// `eum_trace_sample_rate` gauge (see
    /// [`crate::registry::Registry`]) so span stitching can correct
    /// counts for sampling.
    pub fn set_sample_every(&self, every: u64) {
        // relaxed-ok: a standalone config value; readers only need to
        // observe it eventually.
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// True when query number `n` (a caller-side monotone count) should
    /// be recorded under the current sampling rate.
    pub fn should_sample(&self, n: u64) -> bool {
        let every = self.sample_every();
        every > 0 && n.is_multiple_of(every)
    }

    /// Traces pushed since creation (≥ what a dump can return).
    pub fn pushed(&self) -> u64 {
        // relaxed-ok: a monotonic counter read for reporting; no data is
        // published through it.
        self.head.load(Ordering::Relaxed)
    }

    /// Records one trace, overwriting the oldest slot. `trace.seq` is
    /// ignored; the ring assigns sample order.
    pub fn push(&self, trace: &QueryTrace) {
        // relaxed-ok: fetch_add only needs a unique claim on the head
        // value; publication ordering is the per-slot seqlock's job.
        let h = self.head.fetch_add(1, Ordering::Relaxed);
        // lint: allow(serve-index) — h % slots.len() is in range by construction
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        let words = trace.pack();
        slot.seq.store(2 * h + 1, Ordering::Release);
        // The Release store above keeps *earlier* accesses before it but
        // does not stop the word stores below from floating up past it; a
        // release fence pins the odd marker before the data for any
        // reader whose first seq load acquires.
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            // relaxed-ok: ordered by the fence above and the Release
            // store of the even sequence below (seqlock write side).
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * (h + 1), Ordering::Release);
    }

    /// Copies out every readable trace, oldest first. Slots mid-write are
    /// skipped.
    pub fn dump(&self) -> Vec<QueryTrace> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let mut words = [0u64; 5];
            for (w, v) in words.iter_mut().zip(slot.words.iter()) {
                // relaxed-ok: sandwiched between the Acquire load of seq
                // and the acquire fence below (seqlock read side).
                *w = v.load(Ordering::Relaxed);
            }
            // An Acquire re-load alone would not stop the word loads
            // above from sinking below it; the acquire fence pins them
            // before the re-check, after which a Relaxed re-load suffices.
            fence(Ordering::Acquire);
            // relaxed-ok: the fence above orders the word loads; the
            // re-load only needs to observe a changed value eventually.
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue;
            }
            out.push(QueryTrace::unpack(s1 / 2 - 1, words));
        }
        out.sort_by_key(|t| t.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(i: u32) -> QueryTrace {
        QueryTrace {
            seq: 0,
            trace_id: 0xC0FFEE00 | i,
            hop: match i % 3 {
                0 => TraceHop::Client,
                1 => TraceHop::Ldns,
                _ => TraceHop::Authd,
            },
            shard: (i % 7) as u16,
            generation: 3,
            ecs_scope: i.is_multiple_of(2).then_some(24),
            outcome: if i.is_multiple_of(3) {
                TraceOutcome::CacheHit
            } else {
                TraceOutcome::Computed
            },
            truncated: i.is_multiple_of(5),
            decode_ns: 100 + i,
            cache_ns: 50,
            route_ns: 900,
            encode_ns: 120,
            total_ns: 1200 + i,
        }
    }

    #[test]
    fn roundtrips_through_packing() {
        let t = trace(4);
        let ring = TraceRing::new(8);
        ring.push(&t);
        let got = ring.dump();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], QueryTrace { seq: 0, ..t });
        let t2 = QueryTrace {
            ecs_scope: None,
            outcome: TraceOutcome::Uncached,
            ..trace(9)
        };
        ring.push(&t2);
        let got = ring.dump();
        assert_eq!(got[1], QueryTrace { seq: 1, ..t2 });
        let t3 = QueryTrace {
            outcome: TraceOutcome::Failed,
            truncated: true,
            hop: TraceHop::Ldns,
            trace_id: u32::MAX,
            ..trace(2)
        };
        ring.push(&t3);
        let got = ring.dump();
        assert_eq!(got[2], QueryTrace { seq: 2, ..t3 });
    }

    #[test]
    fn sample_rate_is_runtime_adjustable() {
        let ring = TraceRing::new(8);
        assert_eq!(ring.sample_every(), 1);
        assert!(ring.should_sample(0) && ring.should_sample(7));
        ring.set_sample_every(4);
        assert!(ring.should_sample(8));
        assert!(!ring.should_sample(9));
        ring.set_sample_every(0);
        assert!(!ring.should_sample(0), "0 disables sampling entirely");
        let off = TraceRing::with_sampling(8, 0);
        assert!(!off.should_sample(0));
    }

    #[test]
    fn ring_keeps_most_recent_capacity() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(&trace(i));
        }
        let got = ring.dump();
        assert_eq!(got.len(), 4);
        let seqs: Vec<u64> = got.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let ring = std::sync::Arc::new(TraceRing::new(1024));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let ring = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    ring.push(&trace(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = ring.dump();
        assert_eq!(got.len(), 800);
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
