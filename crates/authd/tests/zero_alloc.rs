//! Proof of the serve path's allocation budget: once a shard's buffers
//! are warm, a cached-hit query — decode into the persistent scratch,
//! scoped cache probe, memcpy-and-patch replay — touches the heap zero
//! times, **with tracing on**: every counted serve also pushes a
//! [`QueryTrace`] into a [`TraceRing`], as the sampled server loop does.
//! Window capture ([`WindowCapturer::capture`]) allocates by design, so
//! it runs outside the counted region — where the Reporter thread runs
//! it in production. A counting `#[global_allocator]` makes the claim
//! checkable: the allocation count across thousands of hits must not
//! move at all.
//!
//! This file holds exactly one `#[test]` on purpose, and the counter
//! only counts the test thread's own allocations: libtest harness
//! threads allocate at unpredictable times, and their heap traffic says
//! nothing about the serve path.

use eum_authd::{CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, SnapshotHandle};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, Question, Rcode};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::{QueryTrace, Registry, TraceHop, TraceOutcome, TraceRing, WindowCapturer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SEED: u64 = 0xA110C;

/// Counts every path into the heap taken by the test thread; frees are
/// uncounted (a zero-alloc steady state cannot free what it never
/// allocated), and sibling threads (the libtest harness) are excluded —
/// their allocations are asynchronous noise, not serve-path traffic.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static IS_TEST_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count_one() {
    // try_with: allocator calls can outlive a thread's TLS (during
    // teardown); treat those as not-the-test-thread.
    if IS_TEST_THREAD.try_with(|f| f.get()).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: every method forwards verbatim to the System allocator, so
// the GlobalAlloc contract is exactly System's; the counter increment
// touches only an atomic and a const-initialized thread-local.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as System::alloc; forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: caller upholds GlobalAlloc's contract; layout passed through.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as System::dealloc; forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was produced by the System forwards above with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as System::realloc; forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        // SAFETY: ptr/layout originate from this allocator's System forwards.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as System::alloc_zeroed; forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: caller upholds GlobalAlloc's contract; layout passed through.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn world() -> (Internet, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, map)
}

fn query(id: u16, client: Option<Ipv4Addr>) -> Vec<u8> {
    encode_message(&Message::query(
        id,
        Question::a("e0.cdn.example".parse().unwrap()),
        client.map(|c| OptData::with_ecs(EcsOption::query(c, 24))),
    ))
}

#[test]
fn cached_hits_do_not_allocate() {
    IS_TEST_THREAD.with(|f| f.set(true));
    let (net, mapping) = world();
    let client = net.blocks[0].client_ip();
    let resolver = net.resolvers[0].ip;
    let low = mapping.ns_ips()[1];
    let ecs_payload = query(7, Some(client));
    let plain_payload = query(8, None);
    let snapshots = SnapshotHandle::new(mapping);
    let snap = snapshots.current();

    let mut state = ShardState::new(Some(CacheConfig::default()));
    state.observe(&snap);

    // The observability plane, live during the counted loop: a trace
    // ring fed per serve, and a registry the capturer snapshots outside
    // the counted region.
    let registry = Arc::new(Registry::new());
    let ring = TraceRing::new(1 << 8);
    let capturer = WindowCapturer::new(registry.clone(), 16);

    // Warm-up: first serve of each shape computes and inserts; replays
    // after that settle every buffer's capacity.
    for payload in [&ecs_payload, &plain_payload] {
        let mut stages = QueryStages::new(false);
        let first = state.serve(
            &snap.map,
            low,
            resolver,
            payload,
            ReplyCap::udp(),
            &mut stages,
        );
        assert_eq!(
            first,
            ServeOutcome::Replied {
                cache_hit: false,
                truncated: false
            }
        );
        let again = state.serve(
            &snap.map,
            low,
            resolver,
            payload,
            ReplyCap::udp(),
            &mut stages,
        );
        assert_eq!(
            again,
            ServeOutcome::Replied {
                cache_hit: true,
                truncated: false
            }
        );
    }
    // Sanity: the replayed reply is a well-formed answer for the query,
    // and its TTLs were patched to the remaining lifetime — present and
    // no larger than the catalog's configured record TTLs.
    let replayed = decode_message(state.reply()).expect("replay decodes");
    assert_eq!(replayed.id, 8);
    assert_eq!(replayed.flags.rcode, Rcode::NoError);
    assert!(!replayed.answer_ips().is_empty());
    let max_ttl = replayed.answers.iter().map(|r| r.ttl).max().unwrap_or(0);
    assert!(
        (1..=86_400).contains(&max_ttl),
        "replayed TTLs must be live remaining values, got {max_ttl}"
    );

    capturer.capture();
    let before = ALLOCS.load(Ordering::SeqCst);
    for round in 0..2_000u32 {
        for payload in [&ecs_payload, &plain_payload] {
            let mut stages = QueryStages::new(false);
            let out = state.serve(
                &snap.map,
                low,
                resolver,
                payload,
                ReplyCap::udp(),
                &mut stages,
            );
            assert_eq!(
                out,
                ServeOutcome::Replied {
                    cache_hit: true,
                    truncated: false
                }
            );
            assert!(!state.reply().is_empty());
            // The sampled trace push the batched loop performs per hit.
            ring.push(&QueryTrace {
                outcome: TraceOutcome::CacheHit,
                ..QueryTrace::blank(round + 1, TraceHop::Authd)
            });
        }
        // Interleave a malformed datagram: the FORMERR path must be
        // allocation-free too.
        if round % 64 == 0 {
            let mut stages = QueryStages::new(false);
            let garbage = [0u8; 16];
            let out = state.serve(
                &snap.map,
                low,
                resolver,
                &garbage,
                ReplyCap::udp(),
                &mut stages,
            );
            assert_eq!(out, ServeOutcome::FormErr);
        }
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "cached-hit serve path allocated {delta} times over 4000 hits"
    );

    // Off the counted path, capture still works and traces landed.
    capturer.capture();
    assert!(!capturer.windows().is_empty());
    assert!(!ring.dump().is_empty(), "counted serves pushed no traces");
}
