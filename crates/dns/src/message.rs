//! DNS message structure: header, questions, resource records.
//!
//! Follows RFC 1035 §4 with the record types the mapping system uses:
//! `A` answers, `NS` delegations (the two-level name-server hierarchy of
//! paper §2.2), `CNAME` chains (content providers CNAME their domains to
//! CDN domains), `SOA`/`TXT` for completeness, `AAAA` pass-through, and
//! the `OPT` pseudo-RR carrying EDNS0/ECS.

use crate::edns::OptData;
use crate::name::DnsName;
use serde::{Deserialize, Serialize};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Resource record types (the subset this system implements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RrType {
    /// IPv4 address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name.
    Cname,
    /// Start of authority.
    Soa,
    /// Text.
    Txt,
    /// IPv6 address.
    Aaaa,
    /// EDNS0 pseudo-record.
    Opt,
}

impl RrType {
    /// The IANA type code.
    pub fn code(&self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
        }
    }

    /// Parses an IANA type code.
    pub fn from_code(code: u16) -> Option<RrType> {
        Some(match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            _ => return None,
        })
    }
}

/// Response codes (RFC 1035 §4.1.1 + RFC 6891).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
}

impl Rcode {
    /// The 4-bit wire code.
    pub fn code(&self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    /// Parses a 4-bit wire code; unknown codes map to `ServFail`.
    pub fn from_code(code: u8) -> Rcode {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => Rcode::ServFail,
        }
    }
}

/// Header flags (QR/AA/TC/RD/RA + opcode and rcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Query (false) or response (true).
    pub qr: bool,
    /// Opcode; only QUERY (0) is used here.
    pub opcode: u8,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            qr: false,
            opcode: 0,
            aa: false,
            tc: false,
            rd: false,
            ra: false,
            rcode: Rcode::NoError,
        }
    }
}

impl Flags {
    /// Packs into the 16-bit header field.
    pub fn to_u16(&self) -> u16 {
        (self.qr as u16) << 15
            | ((self.opcode as u16) & 0xF) << 11
            | (self.aa as u16) << 10
            | (self.tc as u16) << 9
            | (self.rd as u16) << 8
            | (self.ra as u16) << 7
            | (self.rcode.code() as u16 & 0xF)
    }

    /// Unpacks from the 16-bit header field.
    pub fn from_u16(v: u16) -> Flags {
        Flags {
            qr: v & 0x8000 != 0,
            opcode: ((v >> 11) & 0xF) as u8,
            aa: v & 0x0400 != 0,
            tc: v & 0x0200 != 0,
            rd: v & 0x0100 != 0,
            ra: v & 0x0080 != 0,
            rcode: Rcode::from_code((v & 0xF) as u8),
        }
    }
}

/// A question: name + type (class is always IN).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// The queried name.
    pub name: DnsName,
    /// The queried type.
    pub rtype: RrType,
}

impl Question {
    /// An A-record question, the common case for mapping.
    pub fn a(name: DnsName) -> Question {
        Question {
            name,
            rtype: RrType::A,
        }
    }
}

/// SOA RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoaData {
    /// Primary name server.
    pub mname: DnsName,
    /// Responsible mailbox.
    pub rname: DnsName,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval.
    pub refresh: u32,
    /// Retry interval.
    pub retry: u32,
    /// Expire limit.
    pub expire: u32,
    /// Negative-caching TTL.
    pub minimum: u32,
}

/// Record data.
// Variants embed the inline `DnsName` (256 bytes), so the enum is large
// by design: the footprint buys allocation-free decode into reused
// record Vecs, and records are stored in bulk nowhere latency-critical.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Delegation target.
    Ns(DnsName),
    /// Canonical name.
    Cname(DnsName),
    /// Start of authority.
    Soa(SoaData),
    /// Text strings (single string per record here).
    Txt(String),
    /// EDNS0 pseudo-record payload.
    Opt(OptData),
}

impl RData {
    /// The record type of this data.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Soa(_) => RrType::Soa,
            RData::Txt(_) => RrType::Txt,
            RData::Opt(_) => RrType::Opt,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: DnsName,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Data (type is implied by the variant).
    pub rdata: RData,
}

impl Record {
    /// Builds an A record.
    pub fn a(name: DnsName, ttl: u32, ip: Ipv4Addr) -> Record {
        Record {
            name,
            ttl,
            rdata: RData::A(ip),
        }
    }

    /// Builds an NS record.
    pub fn ns(name: DnsName, ttl: u32, target: DnsName) -> Record {
        Record {
            name,
            ttl,
            rdata: RData::Ns(target),
        }
    }

    /// Builds a CNAME record.
    pub fn cname(name: DnsName, ttl: u32, target: DnsName) -> Record {
        Record {
            name,
            ttl,
            rdata: RData::Cname(target),
        }
    }

    /// The record type.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (includes the OPT pseudo-RR when EDNS is used).
    pub additionals: Vec<Record>,
}

impl Default for Message {
    fn default() -> Self {
        Message::empty()
    }
}

impl Message {
    /// An empty message (id 0, default flags, no sections). Used as
    /// reusable decode scratch: [`crate::decode_message_into`] refills it
    /// while keeping the section vectors' capacity.
    pub fn empty() -> Message {
        Message {
            id: 0,
            flags: Flags::default(),
            questions: Vec::new(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A query for `question`, optionally carrying an OPT record.
    pub fn query(id: u16, question: Question, opt: Option<OptData>) -> Message {
        let mut additionals = Vec::new();
        if let Some(o) = opt {
            additionals.push(Record {
                name: DnsName::root(),
                ttl: 0,
                rdata: RData::Opt(o),
            });
        }
        Message {
            id,
            flags: Flags {
                rd: true,
                ..Flags::default()
            },
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals,
        }
    }

    /// A response skeleton mirroring a query's ID and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Message {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                aa: true,
                rd: query.flags.rd,
                rcode,
                ..Flags::default()
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The OPT pseudo-record's data, if present.
    pub fn opt(&self) -> Option<&OptData> {
        self.additionals.iter().find_map(|r| match &r.rdata {
            RData::Opt(o) => Some(o),
            _ => None,
        })
    }

    /// The ECS option, if present in the OPT record.
    pub fn ecs(&self) -> Option<&crate::edns::EcsOption> {
        self.opt().and_then(|o| o.ecs())
    }

    /// Attaches (replacing any existing) an OPT record.
    pub fn set_opt(&mut self, opt: OptData) {
        self.additionals
            .retain(|r| !matches!(r.rdata, RData::Opt(_)));
        self.additionals.push(Record {
            name: DnsName::root(),
            ttl: 0,
            rdata: RData::Opt(opt),
        });
    }

    /// All A-record IPs in the answer section.
    pub fn answer_ips(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|r| match r.rdata {
                RData::A(ip) => Some(ip),
                _ => None,
            })
            .collect()
    }

    /// Minimum TTL across answer records (`None` when empty).
    pub fn min_answer_ttl(&self) -> Option<u32> {
        self.answers.iter().map(|r| r.ttl).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edns::EcsOption;
    use crate::name::name;

    #[test]
    fn rrtype_codes_round_trip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Opt,
        ] {
            assert_eq!(RrType::from_code(t.code()), Some(t));
        }
        assert_eq!(RrType::from_code(999), None);
    }

    #[test]
    fn flags_pack_and_unpack() {
        let f = Flags {
            qr: true,
            opcode: 0,
            aa: true,
            tc: false,
            rd: true,
            ra: true,
            rcode: Rcode::NxDomain,
        };
        assert_eq!(Flags::from_u16(f.to_u16()), f);
        // Bit positions: QR is the MSB.
        assert_eq!(
            Flags {
                qr: true,
                ..Flags::default()
            }
            .to_u16(),
            0x8000
        );
        assert_eq!(
            Flags {
                rd: true,
                ..Flags::default()
            }
            .to_u16(),
            0x0100
        );
    }

    #[test]
    fn rcode_unknown_maps_to_servfail() {
        assert_eq!(Rcode::from_code(14), Rcode::ServFail);
    }

    #[test]
    fn query_carries_opt_and_ecs() {
        let ecs = EcsOption::query("10.1.2.3".parse().unwrap(), 24);
        let q = Message::query(
            7,
            Question::a(name("www.example.com")),
            Some(OptData::with_ecs(ecs)),
        );
        assert_eq!(q.id, 7);
        assert!(q.flags.rd);
        assert!(!q.flags.qr);
        assert_eq!(q.ecs(), Some(&ecs));
    }

    #[test]
    fn response_mirrors_query() {
        let q = Message::query(9, Question::a(name("foo.net")), None);
        let r = Message::response_to(&q, Rcode::NoError);
        assert_eq!(r.id, 9);
        assert!(r.flags.qr && r.flags.aa);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn set_opt_replaces_existing() {
        let mut m = Message::query(1, Question::a(name("a.b")), Some(OptData::default()));
        let ecs = EcsOption::query("1.2.3.4".parse().unwrap(), 24);
        m.set_opt(OptData::with_ecs(ecs));
        let opts: Vec<_> = m
            .additionals
            .iter()
            .filter(|r| matches!(r.rdata, RData::Opt(_)))
            .collect();
        assert_eq!(opts.len(), 1);
        assert_eq!(m.ecs(), Some(&ecs));
    }

    #[test]
    fn answer_ips_and_min_ttl() {
        let mut m = Message::response_to(
            &Message::query(1, Question::a(name("x.y")), None),
            Rcode::NoError,
        );
        m.answers
            .push(Record::a(name("x.y"), 60, "1.1.1.1".parse().unwrap()));
        m.answers
            .push(Record::a(name("x.y"), 20, "2.2.2.2".parse().unwrap()));
        m.answers.push(Record::cname(name("x.y"), 300, name("z.w")));
        assert_eq!(m.answer_ips().len(), 2);
        assert_eq!(m.min_answer_ttl(), Some(20));
    }
}
