//! Read-mostly snapshot publication for the serving plane.
//!
//! The paper's mapping system recomputes its map every 10–30 seconds
//! (§2.2) while the authoritative servers answer hundreds of thousands of
//! queries per second. The serving plane must therefore read a *consistent*
//! map without ever blocking on the control plane's recompute. The classic
//! shape is read-copy-update: the control plane builds a complete new
//! [`MappingSystem`] off to the side and publishes it with one atomic
//! pointer swap; answer threads grab an `Arc` to whichever generation is
//! current and keep using it for the duration of one query, so a query
//! never observes half of one map and half of another.
//!
//! `std::sync::RwLock<Arc<…>>` is the publication cell: readers hold the
//! lock only long enough to clone the `Arc` (a few nanoseconds, never
//! across the actual answer computation), writers only long enough to
//! store a pointer. Generations are numbered so per-shard caches can
//! detect a swap and drop answers computed against the old map.
//!
//! Memory-ordering audit: this file deliberately contains no raw
//! atomics. Publication ordering is delegated entirely to the `RwLock`
//! (the writer's unlock releases the fully built map, the reader's lock
//! acquires it) and to `Arc`'s reference counting, so there are no
//! Relaxed choices to justify. The file stays listed in `lint.toml`'s
//! `seqlock_files` so that any raw atomic introduced here later falls
//! under eum-lint's Acquire/Release pairing audit automatically.

use eum_mapping::MappingSystem;
use std::sync::{Arc, RwLock};

/// One published generation of the mapping system.
pub struct Snapshot {
    /// Monotonic generation number; starts at 1 for the initial map.
    pub generation: u64,
    /// The immutable map this generation serves from.
    pub map: MappingSystem,
}

// The serving plane shares snapshots across shard threads. This holds
// because `MappingSystem`'s serve path is `&self` (interior mutability is
// limited to one relaxed atomic); a compile error here means a non-Sync
// type crept into the map's serving state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

/// The swappable cell the control plane publishes into and every serving
/// shard reads from. Cloning the handle is cheap; all clones observe the
/// same publications.
#[derive(Clone)]
pub struct SnapshotHandle {
    cell: Arc<RwLock<Arc<Snapshot>>>,
}

impl SnapshotHandle {
    /// Wraps the initial map as generation 1.
    pub fn new(map: MappingSystem) -> SnapshotHandle {
        SnapshotHandle {
            cell: Arc::new(RwLock::new(Arc::new(Snapshot { generation: 1, map }))),
        }
    }

    /// The current generation's snapshot. The internal lock is held only
    /// for the `Arc` clone; callers answer queries against the returned
    /// snapshot without synchronization.
    pub fn current(&self) -> Arc<Snapshot> {
        self.cell.read().expect("snapshot cell poisoned").clone()
    }

    /// Publishes `map` as the next generation and returns its number.
    /// In-flight queries keep the generation they already cloned; new
    /// queries see the new map immediately.
    pub fn publish(&self, map: MappingSystem) -> u64 {
        let mut cell = self.cell.write().expect("snapshot cell poisoned");
        let generation = cell.generation + 1;
        *cell = Arc::new(Snapshot { generation, map });
        generation
    }

    /// The current generation number without keeping the snapshot alive.
    pub fn generation(&self) -> u64 {
        self.cell.read().expect("snapshot cell poisoned").generation
    }
}
