//! Token-bucket admission control for the compute path.
//!
//! The serve path has two cost classes: a cached hit replays stored wire
//! bytes in ~100 ns, while a miss routes through
//! [`eum_mapping::MappingSystem::answer`] at microsecond scale. A
//! cache-busting flood (random-subdomain NXDOMAIN queries) is *all*
//! misses — every flood query pays the expensive class while legit
//! traffic, resolver-cached at every layer, mostly rides the cheap one.
//! Admission control prices exactly that asymmetry: compute-path
//! admissions drain a per-shard token bucket refilled at a configured
//! sustained rate, and when the bucket is empty the shard stamps a
//! REFUSED (RCODE 5) header instead of routing — shedding the expensive
//! work while cached answers keep flowing untouched. That is the
//! cheapest-first priority: attack-shaped queries (always misses) are
//! dropped before any cached legit hit.
//!
//! The bucket is integer arithmetic over nanosecond credit with an
//! explicit clock input, so admission decisions are a pure function of
//! the arrival timestamps — property tests replay synthetic schedules
//! and the decisions reproduce exactly.

use std::time::Instant;

/// Admission-control knobs, per shard.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Sustained compute-path admissions per second (token refill rate).
    pub rate_per_s: u64,
    /// Bucket capacity in tokens: how large a miss burst is absorbed
    /// before shedding starts.
    pub burst: u64,
}

impl AdmissionConfig {
    /// A bucket refilled at `rate_per_s` holding at most `burst` tokens.
    pub fn new(rate_per_s: u64, burst: u64) -> AdmissionConfig {
        AdmissionConfig { rate_per_s, burst }
    }
}

/// Deterministic token bucket: whole tokens plus fractional nanosecond
/// credit toward the next one.
///
/// One token accrues every [`TokenBucket::ns_per_token`] nanoseconds,
/// the count caps at the burst, and a full bucket discards fractional
/// credit (idle time cannot bank more than the burst). Decisions depend
/// only on the constructor instant and the sequence of `now` values
/// passed to [`TokenBucket::try_take`], never on wall-clock reads of
/// its own. A zero refill rate is the degenerate bucket: it admits
/// exactly its initial burst and then sheds forever (tests use it to
/// pin shed behavior without a clock in the loop).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// `u64::MAX` is the no-refill sentinel (zero configured rate).
    ns_per_token: u64,
    burst: u64,
    tokens: u64,
    frac_ns: u64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket born full at `now` (a fresh shard absorbs its warm-up
    /// miss burst without shedding).
    pub fn new(cfg: &AdmissionConfig, now: Instant) -> TokenBucket {
        let ns_per_token = match cfg.rate_per_s {
            0 => u64::MAX,
            r => (1_000_000_000u64 / r).max(1),
        };
        let burst = cfg.burst.max(1);
        TokenBucket {
            ns_per_token,
            burst,
            tokens: burst,
            frac_ns: 0,
            last: now,
        }
    }

    /// Nanoseconds of credit one admission costs (`u64::MAX`: never
    /// refills).
    pub fn ns_per_token(&self) -> u64 {
        self.ns_per_token
    }

    /// Accrues tokens for the time since the last call and takes one if
    /// available. `now` values earlier than a previously seen instant
    /// accrue nothing (monotonic clamp).
    pub fn try_take(&mut self, now: Instant) -> bool {
        if self.ns_per_token != u64::MAX {
            let elapsed = now.saturating_duration_since(self.last).as_nanos();
            let total = (self.frac_ns as u128).saturating_add(elapsed);
            let minted = total / self.ns_per_token as u128;
            self.tokens = self
                .tokens
                .saturating_add(minted.min(u64::MAX as u128) as u64)
                .min(self.burst);
            // A full bucket holds no partial credit: capping discards it.
            self.frac_ns = if self.tokens == self.burst {
                0
            } else {
                (total % self.ns_per_token as u128) as u64
            };
        }
        self.last = now;
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (diagnostics and tests).
    pub fn available(&self) -> u64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn bucket(rate: u64, burst: u64) -> (TokenBucket, Instant) {
        let t0 = Instant::now();
        (TokenBucket::new(&AdmissionConfig::new(rate, burst), t0), t0)
    }

    #[test]
    fn burst_then_refusal() {
        let (mut b, t0) = bucket(1000, 4);
        for _ in 0..4 {
            assert!(b.try_take(t0));
        }
        assert!(!b.try_take(t0), "empty bucket must refuse");
    }

    #[test]
    fn refills_at_rate() {
        let (mut b, t0) = bucket(1000, 4); // 1 token per ms
        for _ in 0..4 {
            assert!(b.try_take(t0));
        }
        assert!(!b.try_take(t0));
        // 2.5 ms later: exactly 2 more tokens have accrued.
        let t1 = t0 + Duration::from_micros(2500);
        assert!(b.try_take(t1));
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
    }

    #[test]
    fn credit_caps_at_burst() {
        let (mut b, t0) = bucket(1000, 4);
        // A long idle stretch must not bank more than the burst.
        let t1 = t0 + Duration::from_secs(60);
        for _ in 0..4 {
            assert!(b.try_take(t1));
        }
        assert!(!b.try_take(t1));
    }

    #[test]
    fn non_monotonic_now_accrues_nothing() {
        let (mut b, t0) = bucket(1000, 1);
        assert!(b.try_take(t0 + Duration::from_secs(1)));
        // An earlier timestamp (clock skew across sources) must not
        // mint credit.
        assert!(!b.try_take(t0));
    }
}
