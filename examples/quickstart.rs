//! Quickstart: build a small world and watch one DNS resolution flow
//! through the whole system — client → LDNS → top-level name server →
//! low-level name server → A records — with and without EDNS0 Client
//! Subnet, exactly the interaction of the paper's Figure 4.
//!
//! Run with: `cargo run --release --example quickstart`

use end_user_mapping::dns::{EcsMode, QueryContext};
use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::{AuthNet, QueryCounters};

fn main() {
    // One call builds the synthetic Internet, the CDN, the mapping
    // system, per-LDNS recursive resolvers, and the DNS glue.
    let mut world = Scenario::build(ScenarioConfig::tiny(0x5EED));
    println!(
        "world: {} client /24 blocks, {} LDNSes, {} CDN clusters, {} hosted domains",
        world.net.blocks.len(),
        world.resolvers.len(),
        world.cdn.cluster_count(),
        world.catalog.len()
    );

    // Pick a client that uses a public resolver far from home — the kind
    // of client end-user mapping was built for.
    let (block, ldns) = world
        .net
        .blocks
        .iter()
        .flat_map(|b| b.ldns.iter().map(move |(r, _)| (b.clone(), *r)))
        .filter(|(b, r)| {
            world.net.is_public_resolver(*r) && {
                let d = b.loc.distance_miles(&world.net.resolver(*r).loc);
                d > 1500.0
            }
        })
        .max_by(|a, b| a.0.demand.partial_cmp(&b.0.demand).unwrap())
        .expect("the world contains a distant public-resolver client");
    let resolver_info = world.net.resolver(ldns).clone();
    println!(
        "\nclient block {} in {} uses public LDNS {} in {} — {:.0} miles away",
        block.prefix,
        block.country.name(),
        resolver_info.ip,
        resolver_info.country.name(),
        block.loc.distance_miles(&resolver_info.loc),
    );

    let domain = &world.catalog.domains[0];
    println!(
        "resolving {} (CNAME -> {})",
        domain.www_name, domain.cdn_name
    );

    let latency = world.net.latency;
    let mut counters = QueryCounters::new();

    // Resolve once with ECS off (traditional NS-based mapping)…
    let mut run = |ecs: EcsMode, now_ms: u64| {
        world.resolvers[ldns.index()].set_ecs(ecs);
        let mut authnet = AuthNet {
            mapping: &mut world.mapping,
            static_auths: &world.static_auths,
            endpoints: &world.endpoints,
            latency: &latency,
            resolver_ep: resolver_info.endpoint(),
            resolver_is_public: true,
            root_ip: world.root_ip,
            counters: &mut counters,
            day: 0,
        };
        let res = world.resolvers[ldns.index()].resolve(
            &domain.www_name,
            block.client_ip(),
            now_ms,
            &mut authnet,
        );
        let server_ip = res.ips[0];
        let cluster = world
            .cdn
            .server(world.cdn.server_by_ip(server_ip).unwrap())
            .cluster;
        let loc = world.cdn.cluster(cluster).loc;
        println!(
            "  {:?}: {} upstream queries, {:.0} ms DNS; answer {:?} -> cluster {} ({:.0} miles from client)",
            ecs,
            res.upstream_queries,
            res.elapsed_ms,
            res.ips,
            world.cdn.cluster(cluster).name,
            block.loc.distance_miles(&loc),
        );
    };

    println!("\nNS-based mapping (no client subnet):");
    run(EcsMode::Off, 0);
    // …then with ECS on, using a fresh cache epoch so the scoped answer
    // is actually fetched (a day later, long past every TTL).
    println!("end-user mapping (ECS /24):");
    run(EcsMode::On { source_prefix: 24 }, 200_000_000);

    let _ = QueryContext {
        resolver_ip: resolver_info.ip,
        now_ms: 0,
    };
    println!("\nThe ECS answer maps the client near itself rather than near its LDNS.");
}
