//! Benchmarks for the two caches on the hot path: the ECS-aware resolver
//! cache (whose per-scope entries are the §5.2 scaling story) and the
//! server LRU content cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eum_cdn::{ContentId, LruSet};
use eum_dns::cache::{CachedAnswer, EcsCache};
use eum_dns::name::name;
use eum_dns::{Rcode, RrType};
use eum_geo::Prefix;
use std::hint::black_box;
use std::net::Ipv4Addr;

/// Fills a cache with `n` distinct /24-scoped entries for one name — the
/// post-roll-out steady state for a popular (domain, LDNS) pair.
fn filled_cache(n: u32) -> EcsCache {
    let mut c = EcsCache::new();
    for i in 0..n {
        c.insert(
            name("popular.cdn.example"),
            RrType::A,
            CachedAnswer {
                records: Vec::new(),
                rcode: Rcode::NoError,
                scope: Prefix::new(0x0B00_0000 | (i << 8), 24),
                expires_ms: u64::MAX,
            },
        );
    }
    c
}

fn bench_ecs_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecs_cache_lookup");
    for entries in [1u32, 64, 1024, 16_384] {
        let mut cache = filled_cache(entries);
        let client = Ipv4Addr::from(0x0B00_0000 | ((entries / 2) << 8) | 7);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| {
                cache.lookup(
                    &name("popular.cdn.example"),
                    RrType::A,
                    Some(black_box(client)),
                    0,
                )
            })
        });
    }
    group.finish();

    c.bench_function("ecs_cache_insert_scoped", |b| {
        let mut cache = filled_cache(1024);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            cache.insert(
                name("popular.cdn.example"),
                RrType::A,
                CachedAnswer {
                    records: Vec::new(),
                    rcode: Rcode::NoError,
                    scope: Prefix::new(0x0C00_0000 | ((i % 4096) << 8), 24),
                    expires_ms: u64::MAX,
                },
            )
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_hit", |b| {
        let mut lru: LruSet<ContentId> = LruSet::new(4096);
        for i in 0..4096u32 {
            lru.insert(ContentId {
                domain: i % 64,
                object: i / 64,
            });
        }
        let key = ContentId {
            domain: 5,
            object: 9,
        };
        b.iter(|| lru.touch(black_box(&key)))
    });
    c.bench_function("lru_insert_evict", |b| {
        let mut lru: LruSet<ContentId> = LruSet::new(1024);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            lru.insert(ContentId {
                domain: i,
                object: 0,
            })
        })
    });
}

criterion_group!(benches, bench_ecs_cache, bench_lru);
criterion_main!(benches);
