//! Histograms over linear or logarithmic bins.
//!
//! Figures 5 and 7 show "percent of client demand" per log-scaled
//! client–LDNS-distance bin; [`Histogram`] with [`LogBins`] reproduces that
//! view directly.

use serde::{Deserialize, Serialize};

/// A bin edge specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Bins {
    /// `count` equal-width bins spanning `[lo, hi)`.
    Linear {
        /// Lower edge of the first bin.
        lo: f64,
        /// Upper edge of the last bin.
        hi: f64,
        /// Number of bins.
        count: usize,
    },
    /// Logarithmically spaced bins (see [`LogBins`]).
    Log(LogBins),
}

/// Logarithmically spaced bins spanning `[lo, hi)` with `per_decade` bins
/// per factor of ten. Values below `lo` are clamped into the first bin
/// (the paper's distance figures start at 10 miles and fold everything
/// closer into the left edge).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogBins {
    /// Lower edge of the first bin; must be positive.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Bins per decade.
    pub per_decade: usize,
}

impl LogBins {
    /// The bin layout used by the paper's distance histograms:
    /// 10 to 12,500 miles (the antipodal max), 8 bins per decade.
    pub fn paper_distance_miles() -> Self {
        LogBins {
            lo: 10.0,
            hi: 12_500.0,
            per_decade: 8,
        }
    }

    fn count(&self) -> usize {
        let decades = (self.hi / self.lo).log10();
        (decades * self.per_decade as f64).ceil() as usize
    }

    fn index(&self, value: f64) -> Option<usize> {
        if value >= self.hi {
            return None;
        }
        let v = value.max(self.lo);
        let idx = ((v / self.lo).log10() * self.per_decade as f64).floor() as usize;
        Some(idx.min(self.count() - 1))
    }

    fn edges(&self, idx: usize) -> (f64, f64) {
        let lo = self.lo * 10f64.powf(idx as f64 / self.per_decade as f64);
        let hi = self.lo * 10f64.powf((idx + 1) as f64 / self.per_decade as f64);
        (lo, hi.min(self.hi))
    }
}

/// One rendered histogram bar.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bar {
    /// Lower bin edge (inclusive).
    pub lo: f64,
    /// Upper bin edge (exclusive).
    pub hi: f64,
    /// Total weight in the bin.
    pub weight: f64,
    /// Weight as a percentage of total weight across all bins + overflow.
    pub percent: f64,
}

/// A weighted histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bins: Bins,
    weights: Vec<f64>,
    /// Weight of observations at/above the top edge.
    overflow: f64,
}

impl Histogram {
    /// Creates a histogram with `count` linear bins over `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, count: usize) -> Self {
        assert!(hi > lo && count > 0, "invalid linear bins");
        Histogram {
            bins: Bins::Linear { lo, hi, count },
            weights: vec![0.0; count],
            overflow: 0.0,
        }
    }

    /// Creates a histogram with logarithmic bins.
    pub fn log(bins: LogBins) -> Self {
        assert!(
            bins.lo > 0.0 && bins.hi > bins.lo && bins.per_decade > 0,
            "invalid log bins"
        );
        let n = bins.count();
        Histogram {
            bins: Bins::Log(bins),
            weights: vec![0.0; n],
            overflow: 0.0,
        }
    }

    /// Adds a weighted observation. Values at/above the top edge are
    /// counted in the overflow bucket; values below the bottom edge fall in
    /// the first bin.
    pub fn add(&mut self, value: f64, weight: f64) {
        if !value.is_finite() || weight <= 0.0 {
            return;
        }
        let idx = match &self.bins {
            Bins::Linear { lo, hi, count } => {
                if value >= *hi {
                    None
                } else {
                    let v = value.max(*lo);
                    let w = (hi - lo) / *count as f64;
                    Some((((v - lo) / w).floor() as usize).min(count - 1))
                }
            }
            Bins::Log(lb) => lb.index(value),
        };
        match idx {
            Some(i) => self.weights[i] += weight,
            None => self.overflow += weight,
        }
    }

    /// Total weight including overflow.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum::<f64>() + self.overflow
    }

    /// Weight captured by the overflow bucket.
    pub fn overflow_weight(&self) -> f64 {
        self.overflow
    }

    /// Renders the bars with percentages of total weight.
    pub fn bars(&self) -> Vec<Bar> {
        let total = self.total_weight();
        let denom = if total > 0.0 { total } else { 1.0 };
        self.weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let (lo, hi) = match &self.bins {
                    Bins::Linear { lo, hi, count } => {
                        let width = (hi - lo) / *count as f64;
                        (lo + i as f64 * width, lo + (i + 1) as f64 * width)
                    }
                    Bins::Log(lb) => lb.edges(i),
                };
                Bar {
                    lo,
                    hi,
                    weight: *w,
                    percent: 100.0 * w / denom,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_places_values() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        h.add(0.5, 1.0);
        h.add(9.99, 1.0);
        h.add(10.0, 1.0); // overflow
        let bars = h.bars();
        assert_eq!(bars[0].weight, 1.0);
        assert_eq!(bars[9].weight, 1.0);
        assert_eq!(h.overflow_weight(), 1.0);
        assert!((h.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn below_range_clamps_into_first_bin() {
        let mut h = Histogram::linear(5.0, 10.0, 5);
        h.add(-100.0, 2.0);
        assert_eq!(h.bars()[0].weight, 2.0);
    }

    #[test]
    fn log_bins_have_geometric_edges() {
        let lb = LogBins {
            lo: 10.0,
            hi: 1000.0,
            per_decade: 1,
        };
        let h = Histogram::log(lb);
        let bars = h.bars();
        assert_eq!(bars.len(), 2);
        assert!((bars[0].lo - 10.0).abs() < 1e-9);
        assert!((bars[0].hi - 100.0).abs() < 1e-6);
        assert!((bars[1].hi - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn log_binning_places_values() {
        let mut h = Histogram::log(LogBins {
            lo: 10.0,
            hi: 10_000.0,
            per_decade: 1,
        });
        h.add(15.0, 1.0); // [10, 100)
        h.add(150.0, 1.0); // [100, 1000)
        h.add(5000.0, 1.0); // [1000, 10000)
        h.add(3.0, 1.0); // clamped into first bin
        h.add(20_000.0, 1.0); // overflow
        let bars = h.bars();
        assert_eq!(bars[0].weight, 2.0);
        assert_eq!(bars[1].weight, 1.0);
        assert_eq!(bars[2].weight, 1.0);
        assert_eq!(h.overflow_weight(), 1.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut h = Histogram::log(LogBins::paper_distance_miles());
        for v in [12.0, 40.0, 180.0, 950.0, 4200.0, 11_000.0] {
            h.add(v, 2.5);
        }
        let sum: f64 = h.bars().iter().map(|b| b.percent).sum();
        assert!(
            (sum - 100.0).abs() < 1e-9,
            "sum {sum} (no overflow expected)"
        );
    }

    #[test]
    fn bad_inputs_are_ignored() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.add(f64::NAN, 1.0);
        h.add(0.5, 0.0);
        h.add(0.5, -1.0);
        assert_eq!(h.total_weight(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid linear bins")]
    fn linear_rejects_inverted_range() {
        let _ = Histogram::linear(10.0, 0.0, 4);
    }
}
