//! Proof of the batched socket path's allocation budget: once the
//! transport's bind-time buffers and the shard's scratch are warm, a
//! full batch cycle — `recvmmsg` a batch, serve every query (cached
//! legit hits and admission-shed REFUSED replies alike), stage every
//! reply, `sendmmsg` the batch — touches the heap zero
//! times, **with the observability plane on**: batch instruments
//! attached ([`ReuseportUdpTransport::attach_metrics`]) and every served
//! query pushed into a [`TraceRing`]. Window capture
//! ([`WindowCapturer::capture`]) allocates by design, so it runs outside
//! the counted region — exactly where the Reporter/scrape threads run it
//! in production. Same counting-allocator technique as
//! `crates/authd/tests/zero_alloc.rs`, extended over real sockets.
//!
//! This file holds exactly one `#[test]` on purpose, and the counter
//! only counts the test thread's own allocations: the libtest harness
//! threads allocate at unpredictable times (observed as rare 2-alloc
//! blips), and their heap traffic says nothing about the serving path.

use eum_authd::{
    AdmissionConfig, BatchServerTransport, CacheConfig, QueryStages, ReplyCap, ServeOutcome,
    ShardState, SnapshotHandle,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{encode_message, Message, Question};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_net::{BatchConfig, ReuseportUdpTransport};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::{QueryTrace, Registry, TraceHop, TraceOutcome, TraceRing, WindowCapturer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::{Ipv4Addr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xBA7C;
const BATCH: usize = 8;
/// Attack-shaped queries per cycle: names outside the catalog, so they
/// always miss the answer cache and hit the admission check; with the
/// bucket drained they are shed as REFUSED inside the counted loop.
const ATTACK: usize = 4;

/// Counts every path into the heap taken by the test thread; frees are
/// uncounted (a zero-alloc steady state cannot free what it never
/// allocated), and sibling threads (the libtest harness) are excluded —
/// their allocations are asynchronous noise, not serving-path traffic.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static IS_TEST_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count_one() {
    // try_with: allocator calls can outlive a thread's TLS (during
    // teardown); treat those as not-the-test-thread.
    if IS_TEST_THREAD.try_with(|f| f.get()).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: every method forwards verbatim to the System allocator, so
// the GlobalAlloc contract is exactly System's; the counter increment
// touches only an atomic and a const-initialized thread-local.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as System::alloc; forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: caller upholds GlobalAlloc's contract; layout passed through.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as System::dealloc; forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was produced by the System forwards above with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as System::realloc; forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        // SAFETY: ptr/layout originate from this allocator's System forwards.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as System::alloc_zeroed; forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: caller upholds GlobalAlloc's contract; layout passed through.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn world() -> (Internet, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, map)
}

/// One closed batch cycle, driven single-threaded: the client socket
/// sends `payloads`, the transport receives them as one or more batches,
/// the shard serves each — pushing a trace record per query, as the
/// batched server loop does when sampling — stages the reply, `flush`
/// sends them back, and the client drains its replies. Returns how many
/// were served.
#[allow(clippy::too_many_arguments)]
fn batch_cycle(
    transport: &mut ReuseportUdpTransport,
    state: &mut ShardState,
    snap: &eum_authd::Snapshot,
    low: Ipv4Addr,
    client: &UdpSocket,
    dest: std::net::SocketAddr,
    payloads: &[Vec<u8>],
    rbuf: &mut [u8],
    ring: &TraceRing,
) -> (usize, usize) {
    for p in payloads {
        client.send_to(p, dest).expect("client send");
    }
    let mut served = 0usize;
    let mut shed = 0usize;
    while served < payloads.len() {
        let n = transport
            .recv_batch(Duration::from_secs(2))
            .expect("recv_batch");
        assert!(n > 0, "queries were sent; the batch cannot time out");
        for i in 0..n {
            // The datagram borrow (into the transport's receive buffer)
            // ends before staging needs the transport mutably again.
            let out = {
                let dg = transport.datagram(i);
                let mut stages = QueryStages::new(false);
                state.serve(
                    &snap.map,
                    low,
                    dg.resolver_ip,
                    dg.payload,
                    ReplyCap::udp(),
                    &mut stages,
                )
            };
            ring.push(&QueryTrace {
                shard: 0,
                outcome: TraceOutcome::CacheHit,
                ..QueryTrace::blank(i as u32 + 1, TraceHop::Authd)
            });
            match out {
                ServeOutcome::Replied { .. } | ServeOutcome::FormErr => {
                    transport.stage_reply(i, state.reply());
                }
                ServeOutcome::Shed => {
                    // The stamped reply must be a REFUSED header
                    // (RCODE 5) — and staging it is the same alloc-free
                    // slot write as any other reply.
                    assert_eq!(state.reply()[3] & 0x0F, 5, "shed reply must be REFUSED");
                    transport.stage_reply(i, state.reply());
                    shed += 1;
                }
                ServeOutcome::Dropped => {}
            }
            served += 1;
        }
        transport.flush().expect("flush");
    }
    // Drain the replies so the next cycle starts clean.
    for _ in 0..payloads.len() {
        client.recv_from(rbuf).expect("client recv");
    }
    (served, shed)
}

#[test]
fn warm_batch_cycles_do_not_allocate() {
    IS_TEST_THREAD.with(|f| f.set(true));
    let (net, map) = world();
    let low = map.ns_ips()[1];
    let snapshots = SnapshotHandle::new(map);
    let snap = snapshots.current();

    // BATCH distinct-ID queries over two cacheable shapes, plus ATTACK
    // flood-shaped queries for names outside the catalog: those always
    // miss the cache, so once the admission bucket is drained every one
    // of them exercises the shed path (REFUSED) inside the counted loop.
    let payloads: Vec<Vec<u8>> = (0..BATCH)
        .map(|i| {
            let opt = (i % 2 == 0)
                .then(|| OptData::with_ecs(EcsOption::query(net.blocks[0].client_ip(), 24)));
            encode_message(&Message::query(
                0x2000 + i as u16,
                Question::a("e0.cdn.example".parse().unwrap()),
                opt,
            ))
        })
        .chain((0..ATTACK).map(|i| {
            encode_message(&Message::query(
                0x3000 + i as u16,
                Question::a(format!("flood{i}.cdn.example").parse().unwrap()),
                None,
            ))
        }))
        .collect();

    let cfg = BatchConfig {
        batch: BATCH,
        ..BatchConfig::default()
    };
    let (mut transports, addrs) = ReuseportUdpTransport::bind_shards(1, &cfg).expect("bind");
    let mut transport = transports.remove(0);
    #[cfg(target_os = "linux")]
    assert!(
        !transport.is_portable(),
        "on Linux this must measure the recvmmsg/sendmmsg path"
    );

    // The full observability plane, attached before warm-up: batch-fill
    // histogram + partial-send counter on the transport, and a trace
    // ring fed inside the counted loop.
    let registry = Arc::new(Registry::new());
    transport.attach_metrics(&registry, 0);
    let ring = TraceRing::new(1 << 8);
    let capturer = WindowCapturer::new(registry.clone(), 16);

    let dest = addrs[0];
    let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).expect("client bind");
    client
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("client timeout");
    let mut rbuf = vec![0u8; 4096];

    let mut state = ShardState::new(Some(CacheConfig::default()));
    state.observe(&snap);

    // Warm-up: fill the answer cache, settle every scratch capacity, and
    // let the transport apply its read timeout once. Admission is off so
    // the legit shapes all reach the cache.
    for _ in 0..5 {
        batch_cycle(
            &mut transport,
            &mut state,
            &snap,
            low,
            &client,
            dest,
            &payloads,
            &mut rbuf,
            &ring,
        );
    }

    // Enable admission with a bucket that never refills (rate 0) and
    // holds one token, then burn that token with one more warm cycle:
    // from here on every compute-path (attack-shaped) query is shed as
    // REFUSED while the cached legit shapes keep replaying.
    state = state.with_admission(&AdmissionConfig::new(0, 1), std::time::Instant::now());
    let (_, warm_shed) = batch_cycle(
        &mut transport,
        &mut state,
        &snap,
        low,
        &client,
        dest,
        &payloads,
        &mut rbuf,
        &ring,
    );
    assert_eq!(warm_shed, ATTACK - 1, "one token admits one attack query");
    capturer.capture();

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut served = 0usize;
    let mut shed = 0usize;
    for _ in 0..200 {
        let (s, sh) = batch_cycle(
            &mut transport,
            &mut state,
            &snap,
            low,
            &client,
            dest,
            &payloads,
            &mut rbuf,
            &ring,
        );
        served += s;
        shed += sh;
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(served, 200 * (BATCH + ATTACK));
    assert_eq!(
        shed,
        200 * ATTACK,
        "every attack-shaped query must shed; every cached hit must serve"
    );
    assert_eq!(
        delta, 0,
        "warm batched recv/serve/send allocated {delta} times over {served} queries \
         ({shed} shed as REFUSED)"
    );

    // Window capture (off the counted path, as the Reporter runs it)
    // sees the fills the instrumented transport recorded.
    capturer.capture();
    let windows = capturer.windows();
    let last = windows.last().expect("a window was captured");
    let fills = last
        .rows
        .iter()
        .find_map(|row| match row.value {
            eum_telemetry::WindowValue::Histogram { count, .. }
                if row.name == "eum_net_recv_batch_fill" =>
            {
                Some(count)
            }
            _ => None,
        })
        .unwrap_or(0);
    assert!(fills > 0, "counted cycles recorded no batch fills");
    assert!(!ring.dump().is_empty(), "counted cycles pushed no traces");
}
