//! Closed-loop load generation against a running [`crate::AuthServer`].
//!
//! Each client thread replays the netmodel's demand distribution: it
//! samples a `(client block, LDNS)` pair from
//! [`eum_netmodel::QueryPopulation`] and a hosted domain by Zipf
//! popularity, builds a real RFC 1035 query (with an ECS option carrying
//! the block's /24, like a public resolver would), sends it to the shard
//! the block hashes to — the stickiness ECMP gives a production
//! deployment — and waits for the response before issuing the next query
//! (closed loop, so offered load adapts to service rate). Every response
//! is verified: matching ID, NOERROR, at least one A answer, and an ECS
//! scope honoring `/y ≤ /x`.
//!
//! Latency is recorded per exchange into a telemetry histogram (one
//! stripe per client thread); [`LoadReport`] aggregates throughput,
//! histogram-backed p50/p99, and error counts across threads. Pass a
//! shared registry in [`LoadGenConfig::telemetry`] and the same
//! distribution is exported as `eum_loadgen_upstream_exchange_ns` — the
//! report and the scrape read literally the same buckets.
//!
//! Metric names carry the `upstream_` qualifier because these exchanges
//! are the resolver→authoritative leg: the generator plays the LDNS
//! population's *upstream* traffic, the same leg `eum-ldns` counts in
//! `eum_ldns_upstream_queries_total`. The resolver fleet's client-facing
//! rate lives in the `eum_ldns_downstream_*` series — keeping the two
//! directions distinct in one scrape is what makes a measured
//! amplification (upstream over downstream) readable off a dashboard.

use crate::transport::ClientTransport;
use eum_cdn::ContentCatalog;
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, DnsName, Message, Question, Rcode};
use eum_netmodel::{Internet, QueryPopulation};
use eum_telemetry::{Histogram, HistogramSnapshot, Registry};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Fraction of queries sent without ECS (resolvers that do not
    /// support it — the NS-mapped remainder of the population).
    pub no_ecs_fraction: f64,
    /// Per-exchange timeout.
    pub timeout: Duration,
    /// Seed for the demand sampling streams.
    pub seed: u64,
    /// When set, exchange latencies are recorded into this registry's
    /// `eum_loadgen_upstream_exchange_ns` histogram (and the ok/error counts into
    /// `eum_loadgen_*_total`) in addition to the returned [`LoadReport`].
    pub telemetry: Option<Arc<Registry>>,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            queries_per_client: 2_000,
            no_ecs_fraction: 0.1,
            timeout: Duration::from_secs(2),
            seed: 0x10ad,
            telemetry: None,
        }
    }
}

/// Aggregated outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Exchanges that completed and verified.
    pub ok: u64,
    /// Transport-level failures (timeouts, send errors).
    pub transport_errors: u64,
    /// Responses that decoded but failed verification (wrong ID, bad
    /// rcode, empty answer, scope violation).
    pub bad_responses: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Merged per-exchange latency distribution, nanoseconds.
    pub latencies: HistogramSnapshot,
}

impl LoadReport {
    /// Completed queries per second of wall-clock.
    pub fn qps(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `q`-quantile latency in microseconds (q in [0, 1]), read from
    /// the merged histogram (within one bucket width of exact).
    pub fn latency_us(&self, q: f64) -> f64 {
        self.latencies.quantile(q) / 1_000.0
    }

    /// Median latency, µs.
    pub fn p50_us(&self) -> f64 {
        self.latency_us(0.50)
    }

    /// Tail latency, µs.
    pub fn p99_us(&self) -> f64 {
        self.latency_us(0.99)
    }
}

/// Immutable tables every client thread shares.
struct LoadTables {
    population: QueryPopulation,
    /// Representative client IP per block, indexed by `BlockId`.
    block_ips: Vec<Ipv4Addr>,
    /// Resolver IP per `ResolverId`.
    resolver_ips: Vec<Ipv4Addr>,
    /// Hosted domains with cumulative popularity for weighted sampling.
    domains: Vec<DnsName>,
    cum_popularity: Vec<f64>,
    /// The authoritative IP to target (a low-level NS).
    server_ip: Ipv4Addr,
}

impl LoadTables {
    fn build(net: &Internet, catalog: &ContentCatalog, server_ip: Ipv4Addr) -> LoadTables {
        let mut cum = 0.0;
        let mut cum_popularity = Vec::with_capacity(catalog.domains.len());
        let mut domains = Vec::with_capacity(catalog.domains.len());
        for d in &catalog.domains {
            cum += d.popularity.max(0.0);
            domains.push(d.cdn_name.clone());
            cum_popularity.push(cum);
        }
        LoadTables {
            population: QueryPopulation::build(net),
            block_ips: net.blocks.iter().map(|b| b.client_ip()).collect(),
            resolver_ips: net.resolvers.iter().map(|r| r.ip).collect(),
            domains,
            cum_popularity,
            server_ip,
        }
    }

    fn sample_domain(&self, rng: &mut ChaCha12Rng) -> &DnsName {
        let total = *self.cum_popularity.last().expect("non-empty catalog");
        let needle = rng.random_range(0.0..total);
        let idx = self.cum_popularity.partition_point(|&c| c <= needle);
        &self.domains[idx.min(self.domains.len() - 1)]
    }
}

/// Runs the closed loop with one [`ClientTransport`] per client thread.
///
/// `make_client` is called once per client index to build its endpoint
/// (e.g. a fresh UDP socket, or a channel client sharing the connector).
/// Queries target `server_ip` — a low-level NS, the serving hot path.
pub fn run<C, F>(
    net: &Internet,
    catalog: &ContentCatalog,
    server_ip: Ipv4Addr,
    cfg: &LoadGenConfig,
    mut make_client: F,
) -> LoadReport
where
    C: ClientTransport + 'static,
    F: FnMut(usize) -> C,
{
    let tables = Arc::new(LoadTables::build(net, catalog, server_ip));
    let clients = cfg.clients.max(1);
    // One stripe per client thread; with a registry configured the very
    // same histogram backs the `eum_loadgen_upstream_exchange_ns` export, so the
    // report's percentiles and a scrape can never disagree.
    let latencies = match cfg.telemetry.as_ref() {
        Some(reg) => reg.histogram_striped(
            "eum_loadgen_upstream_exchange_ns",
            "Closed-loop exchange latency, send to verified response",
            &[],
            clients,
        ),
        None => Arc::new(Histogram::striped(clients)),
    };
    let start = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..clients {
        let mut transport = make_client(client_idx);
        let tables = tables.clone();
        let cfg = cfg.clone();
        let latencies = latencies.clone();
        handles.push(std::thread::spawn(move || {
            client_loop(client_idx, &mut transport, &tables, &cfg, &latencies)
        }));
    }
    let mut ok = 0u64;
    let mut transport_errors = 0u64;
    let mut bad_responses = 0u64;
    for h in handles {
        let out = h.join().expect("client thread panicked");
        ok += out.ok;
        transport_errors += out.transport_errors;
        bad_responses += out.bad_responses;
    }
    if let Some(reg) = cfg.telemetry.as_ref() {
        reg.counter(
            "eum_loadgen_upstream_ok_total",
            "Exchanges completed and verified",
            &[],
        )
        .add(ok);
        reg.counter(
            "eum_loadgen_upstream_transport_errors_total",
            "Exchanges lost to timeouts or send errors",
            &[],
        )
        .add(transport_errors);
        reg.counter(
            "eum_loadgen_upstream_bad_responses_total",
            "Responses that decoded but failed verification",
            &[],
        )
        .add(bad_responses);
    }
    LoadReport {
        ok,
        transport_errors,
        bad_responses,
        elapsed: start.elapsed(),
        latencies: latencies.snapshot(),
    }
}

struct ClientOutcome {
    ok: u64,
    transport_errors: u64,
    bad_responses: u64,
}

fn client_loop<C: ClientTransport>(
    client_idx: usize,
    transport: &mut C,
    tables: &LoadTables,
    cfg: &LoadGenConfig,
    latencies: &Histogram,
) -> ClientOutcome {
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ (client_idx as u64).wrapping_mul(0x9E37));
    let shards = transport.num_shards().max(1);
    let mut out = ClientOutcome {
        ok: 0,
        transport_errors: 0,
        bad_responses: 0,
    };
    for i in 0..cfg.queries_per_client {
        let origin = tables.population.sample(&mut rng);
        let client_ip = tables.block_ips[origin.block.index()];
        let resolver_ip = tables.resolver_ips[origin.resolver.index()];
        let qname = tables.sample_domain(&mut rng).clone();
        let with_ecs = !rng.random_bool(cfg.no_ecs_fraction);
        let id = (client_idx as u16)
            .wrapping_mul(31)
            .wrapping_add(i as u16)
            .wrapping_mul(2654435761u32 as u16 | 1);
        let ecs = with_ecs.then(|| EcsOption::query(client_ip, 24));
        let query = Message::query(id, Question::a(qname.clone()), ecs.map(OptData::with_ecs));
        let payload = encode_message(&query);
        // Sticky sharding by block, like ECMP hashing the source flow.
        let shard = origin.block.index() % shards;

        let t0 = Instant::now();
        let resp = transport.exchange(shard, tables.server_ip, resolver_ip, &payload, cfg.timeout);
        let dt = t0.elapsed();
        let bytes = match resp {
            Ok(b) => b,
            Err(_) => {
                out.transport_errors += 1;
                continue;
            }
        };
        match verify(&bytes, id, &qname, ecs.as_ref()) {
            true => {
                out.ok += 1;
                latencies.record_at(client_idx, dt.as_nanos() as u64);
            }
            false => out.bad_responses += 1,
        }
    }
    out
}

/// A response is good when it decodes, echoes the ID and question, says
/// NOERROR with at least one A answer, and — if ECS was sent — echoes the
/// option with scope ≤ source.
fn verify(bytes: &[u8], id: u16, qname: &DnsName, sent_ecs: Option<&EcsOption>) -> bool {
    let Ok(resp) = decode_message(bytes) else {
        return false;
    };
    if resp.id != id || !resp.flags.qr || resp.flags.rcode != Rcode::NoError {
        return false;
    }
    if resp.questions.first().map(|q| &q.name) != Some(qname) {
        return false;
    }
    if resp.answer_ips().is_empty() {
        return false;
    }
    if let Some(sent) = sent_ecs {
        let Some(echo) = resp.ecs() else {
            return false;
        };
        if echo.scope_prefix > sent.source_prefix || echo.addr != sent.addr {
            return false;
        }
    }
    true
}
