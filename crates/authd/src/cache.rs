//! The authoritative-side answer cache, ECS-scope aware.
//!
//! Computing an answer means routing through the snapshot's candidate
//! tables and consistent-hash rings. For a hot domain the result is
//! identical for every client inside the answer's ECS *scope* (the `/y`
//! of Figure 4's `/y ≤ /x` narrowing), so each serving shard memoizes
//! finished answers and replays them for equivalent queries.
//!
//! Entries store the answer **already encoded**: [`CachedAnswer`] holds
//! the full wire bytes of a response template (transaction ID zero, no
//! OPT record). A hit replays by copying those bytes into the shard's
//! reply buffer and patching the per-query parts in place — the ID, the
//! RD flag, and (for ECS queries) an appended OPT record echoing the
//! querier's subnet with the stored scope. No `Message` is rebuilt, no
//! record is cloned, and nothing allocates.
//!
//! Two strictly separated tables keep the RFC 7871 reuse rules honest:
//!
//! * **Scoped answers** (`scope > 0`, the end-user path) are keyed by
//!   `(qname, qtype, scope block)`. A lookup probes the client's address
//!   truncated to each scope length present in the cache, longest first,
//!   so an entry is only ever reused for clients *inside* the stored
//!   scope.
//! * **Resolver answers** (no ECS in the query, a policy that ignores
//!   it, or a top-level delegation) are keyed by `(qname, qtype,
//!   resolver ip, serving ip)`. They are never consulted for ECS queries
//!   on the end-user path, so a `/0` answer cannot leak to a client the
//!   map would have steered elsewhere.
//!
//! Entries expire with the answer's record TTL, capacity is bounded with
//! FIFO eviction, and hits/misses/evictions are counted per shard (each
//! shard owns its cache outright — no cross-shard locking).

use crate::truncate::skip_name;
use eum_dns::edns::EcsOption;
use eum_dns::{encode_message, DnsName, Flags, Message, RData, RrType};
use eum_geo::Prefix;
use eum_mapping::MapDelta;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many generation deltas the cache keeps for lazy keyed
/// invalidation. An entry untouched for longer than this many
/// generations can no longer prove itself clean, so the cache falls back
/// to a wholesale clear rather than growing the history without bound.
const MAX_DELTA_HISTORY: usize = 8;

/// Cache sizing and policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum entries across both tables (FIFO eviction beyond this).
    pub max_entries: usize,
    /// Cap on any entry's lifetime, seconds, regardless of record TTL —
    /// bounds how long a control-plane change can be masked by the cache
    /// when the generation does not change.
    pub max_ttl_s: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 65_536,
            max_ttl_s: 300,
        }
    }
}

/// Per-shard cache counters. Counters are **cumulative over the cache's
/// lifetime**: [`AnswerCache::clear`] drops the entries but never the
/// stats, so hit ratios stay meaningful across snapshot-generation swaps
/// (each swap is itself counted in `generation_clears`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnswerCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to compute the answer.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Subset of `insertions` keyed by ECS scope block (the end-user
    /// path); the rest were resolver-keyed.
    pub scoped_insertions: u64,
    /// Times the cache was wholesale-cleared for a new map generation.
    pub generation_clears: u64,
    /// Entries evicted individually because a generation delta named
    /// their mapping unit (the keyed replacement for a generation clear).
    pub keyed_invalidations: u64,
}

/// A memoized answer, stored as encoded wire bytes.
///
/// The template is a complete response with transaction ID 0, RD clear,
/// and no OPT record; [`CachedAnswer::replay_into`] memcpys it and
/// patches the per-query parts in place — including every record's TTL
/// field, rewritten to the *remaining* TTL so downstream resolvers see
/// decrementing values instead of a frozen insert-time snapshot.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The encoded response template.
    wire: Vec<u8>,
    /// The answered ECS scope (`None` for resolver-keyed entries).
    scope: Option<u8>,
    expires: Instant,
    /// When the template was captured; TTLs decrement from this instant.
    created: Instant,
    /// Byte offset of each record's 4-byte TTL field in `wire`, paired
    /// with the TTL value at capture time. Built once at insert (the
    /// cold path), replayed alloc-free on every hit.
    ttl_offsets: Vec<(u16, u32)>,
    /// The cache epoch the entry was last validated at (stamped by
    /// `AnswerCache::insert` and re-stamped on every clean hit). An entry
    /// behind the cache's epoch must prove itself against the deltas
    /// published since before it can be served again.
    epoch: u64,
}

impl CachedAnswer {
    /// Captures the cacheable parts of a computed response: everything
    /// except the per-query transaction ID, RD flag, and OPT/ECS record,
    /// pre-encoded so a hit is a copy, not an encode.
    pub fn from_response(resp: &Message, ttl_s: u32, now: Instant) -> CachedAnswer {
        let template = Message {
            id: 0,
            flags: Flags {
                qr: true,
                // Delegations are not authoritative data.
                aa: resp.authorities.is_empty(),
                rcode: resp.flags.rcode,
                ..Flags::default()
            },
            questions: resp.questions.clone(),
            answers: resp.answers.clone(),
            authorities: resp.authorities.clone(),
            additionals: resp
                .additionals
                .iter()
                .filter(|r| !matches!(r.rdata, RData::Opt(_)))
                .cloned()
                .collect(),
        };
        let wire = encode_message(&template);
        let ttl_offsets = record_ttl_offsets(&wire);
        CachedAnswer {
            wire,
            scope: resp.ecs().map(|e| e.scope_prefix),
            expires: now + Duration::from_secs(ttl_s as u64),
            created: now,
            ttl_offsets,
            epoch: 0,
        }
    }

    /// The stored response template bytes (ID 0, RD clear, no OPT).
    pub fn wire(&self) -> &[u8] {
        &self.wire
    }

    /// The stored ECS scope (`None` for resolver-keyed entries).
    pub fn scope(&self) -> Option<u8> {
        self.scope
    }

    /// Replays the entry into `out` for one specific query: memcpy the
    /// template, patch the transaction ID, RD bit, and every record's
    /// remaining TTL in place, and — when the query carried ECS — append
    /// an OPT record echoing the querier's subnet with the stored scope
    /// (clamped to `/y ≤ /x`). Allocation-free once `out` has warmed
    /// capacity.
    pub fn replay_into(
        &self,
        id: u16,
        rd: bool,
        ecs: Option<&EcsOption>,
        now: Instant,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        out.extend_from_slice(&self.wire);
        // lint: allow(serve-index) — the template always starts with a 12-byte header
        out[0] = (id >> 8) as u8;
        // lint: allow(serve-index) — header byte, see above
        out[1] = (id & 0xFF) as u8;
        // Decrement TTLs by the entry's age. Entries expire at the
        // answer's minimum TTL (or sooner), so remaining TTLs never
        // underflow on a live hit — saturating_sub only guards the
        // lookup-at-deadline race.
        let age_s = now.saturating_duration_since(self.created).as_secs() as u32;
        for &(off, orig) in &self.ttl_offsets {
            let off = off as usize;
            let remaining = orig.saturating_sub(age_s);
            // lint: allow(serve-index) — offsets were computed against this same template at insert
            out[off..off + 4].copy_from_slice(&remaining.to_be_bytes());
        }
        if rd {
            // lint: allow(serve-index) — header byte, see above
            out[2] |= 0x01; // RD is the low bit of header byte 2
        }
        if let Some(e) = ecs {
            // ARCOUNT += 1 for the appended OPT.
            // lint: allow(serve-index) — ARCOUNT lives inside the 12-byte header
            let ar = u16::from_be_bytes([out[10], out[11]]) + 1;
            // lint: allow(serve-index) — header bytes, see above
            out[10..12].copy_from_slice(&ar.to_be_bytes());
            // OPT pseudo-RR: root owner, TYPE 41, CLASS = UDP size,
            // TTL = extended fields (all zero).
            out.push(0);
            out.extend_from_slice(&41u16.to_be_bytes());
            out.extend_from_slice(&4096u16.to_be_bytes());
            out.extend_from_slice(&0u32.to_be_bytes());
            let octets = e.addr_octets();
            out.extend_from_slice(&((4 + 4 + octets) as u16).to_be_bytes()); // RDLEN
            out.extend_from_slice(&8u16.to_be_bytes()); // OPTION-CODE: ECS
            out.extend_from_slice(&((4 + octets) as u16).to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes()); // FAMILY: IPv4
            out.push(e.source_prefix);
            out.push(self.scope.unwrap_or(0).min(e.source_prefix));
            // lint: allow(serve-index) — octets ≤ 4 = the length of an IPv4 address
            out.extend_from_slice(&e.addr.octets()[..octets]);
        }
    }

    /// True once the entry's TTL has run out.
    pub fn expired(&self, now: Instant) -> bool {
        now >= self.expires
    }
}

/// Walks a freshly encoded response template and records the byte offset
/// and capture-time value of every record's TTL field, so replays can
/// patch remaining TTLs in place without re-encoding. Runs once per
/// cache insert (the cold path); the walk trusts nothing — a malformed
/// template (impossible for self-encoded bytes) just yields fewer
/// offsets, never a panic.
fn record_ttl_offsets(wire: &[u8]) -> Vec<(u16, u32)> {
    let mut offsets = Vec::new();
    let rd_u16 = |pos: usize| -> Option<u16> {
        Some(u16::from_be_bytes([*wire.get(pos)?, *wire.get(pos + 1)?]))
    };
    let Some(qdcount) = rd_u16(4) else {
        return offsets;
    };
    let records = [rd_u16(6), rd_u16(8), rd_u16(10)]
        .iter()
        .map(|c| c.unwrap_or(0) as usize)
        .sum::<usize>();
    let mut pos = 12usize;
    for _ in 0..qdcount {
        let Some(past_name) = skip_name(wire, pos) else {
            return offsets;
        };
        pos = past_name + 4; // QTYPE + QCLASS
    }
    for _ in 0..records {
        let Some(past_name) = skip_name(wire, pos) else {
            return offsets;
        };
        let ttl_at = past_name + 4; // past TYPE + CLASS
        let (Some(hi), Some(lo)) = (rd_u16(ttl_at), rd_u16(ttl_at + 2)) else {
            return offsets;
        };
        let Some(rdlen) = rd_u16(ttl_at + 4) else {
            return offsets;
        };
        if let Ok(off) = u16::try_from(ttl_at) {
            offsets.push((off, ((hi as u32) << 16) | lo as u32));
        }
        pos = ttl_at + 6 + rdlen as usize;
    }
    offsets
}

/// Which table an entry lives in.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// End-user answers, valid inside a scope block. Low-level answers do
    /// not depend on which cluster NS received the query, so the serving
    /// IP is not part of the key.
    Scoped(DnsName, RrType, Prefix),
    /// Resolver-derived answers, valid for one LDNS *at one serving IP* —
    /// the same name yields a delegation at the top level but an A answer
    /// at a low level, so the server IP must split those entries.
    Resolver(DnsName, RrType, Ipv4Addr, Ipv4Addr),
}

/// Outcome of probing one cache key (see [`AnswerCache::probe`]).
enum Probe {
    /// No entry under this key.
    Absent,
    /// Entry present and live.
    Hit,
    /// Entry present but past its TTL.
    Expired,
    /// Entry present but a generation delta names its mapping unit.
    DeltaStale,
}

/// The per-shard answer cache.
pub struct AnswerCache {
    cfg: CacheConfig,
    map: HashMap<Key, CachedAnswer>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
    /// How many live entries use each scope length — lookups probe only
    /// lengths actually present.
    scope_lens: [u32; 33],
    /// The current generation epoch; bumped by
    /// [`AnswerCache::begin_generation`] when a keyed delta arrives.
    epoch: u64,
    /// Deltas published since the oldest entry epoch still in play,
    /// oldest first: `(epoch the delta introduced, the delta)`. An entry
    /// stamped at epoch `e` is clean iff no delta with epoch `> e` names
    /// its unit.
    deltas: VecDeque<(u64, Arc<MapDelta>)>,
    stats: AnswerCacheStats,
}

impl AnswerCache {
    /// An empty cache with the given bounds.
    pub fn new(cfg: CacheConfig) -> AnswerCache {
        AnswerCache {
            cfg,
            map: HashMap::new(),
            order: VecDeque::new(),
            scope_lens: [0; 33],
            epoch: 0,
            deltas: VecDeque::new(),
            stats: AnswerCacheStats::default(),
        }
    }

    /// Transitions the cache to a new snapshot generation. With a keyed
    /// delta, entries survive and are invalidated lazily on first touch
    /// (zero work now, zero allocations later); without one — or when the
    /// delta is full, or the history window is exhausted — the cache
    /// falls back to the wholesale generation clear.
    pub fn begin_generation(&mut self, delta: Option<&Arc<MapDelta>>) {
        match delta {
            // Nothing changed: current entries stay valid as-is.
            Some(d) if d.is_empty() => {}
            Some(d) if !d.is_full() && self.deltas.len() < MAX_DELTA_HISTORY => {
                self.epoch += 1;
                self.deltas.push_back((self.epoch, d.clone()));
            }
            _ => self.clear(),
        }
    }

    /// True when some delta published after `entry_epoch` names the
    /// entry's mapping unit. Walks the (short, bounded) delta history
    /// newest-first and stops at the entry's own epoch; no allocations.
    fn delta_affected(&self, entry_epoch: u64, key: &Key) -> bool {
        for (epoch, delta) in self.deltas.iter().rev() {
            if *epoch <= entry_epoch {
                break;
            }
            let affected = match key {
                Key::Scoped(_, _, p) => delta.affects_scoped(*p),
                Key::Resolver(_, _, resolver, _) => delta.affects_resolver(*resolver),
            };
            if affected {
                return true;
            }
        }
        false
    }

    /// Looks up a scoped (end-user) answer for `client`, probing the scope
    /// lengths present in the cache from most to least specific. Scopes
    /// longer than `max_scope` (the query's ECS source prefix) are never
    /// reused — the answer's `/y ≤ /x` guarantee must survive caching.
    /// Counts a hit or miss. Returns a reference — replaying borrows the
    /// entry's bytes instead of cloning records.
    pub fn lookup_scoped(
        &mut self,
        qname: &DnsName,
        qtype: RrType,
        client: Ipv4Addr,
        max_scope: u8,
        now: Instant,
    ) -> Option<&CachedAnswer> {
        let mut hit: Option<Key> = None;
        for len in (1..=max_scope.min(32)).rev() {
            // lint: allow(serve-index) — len ≤ 32 by the loop bound; the table has 33 slots
            if self.scope_lens[len as usize] == 0 {
                continue;
            }
            // DnsName is inline, so cloning it into a probe key is a flat
            // copy, not a heap allocation.
            let key = Key::Scoped(qname.clone(), qtype, Prefix::of(client, len));
            match self.probe(&key, now) {
                Probe::Hit => {
                    hit = Some(key);
                    break;
                }
                Probe::Expired => self.remove(&key),
                Probe::DeltaStale => {
                    self.remove(&key);
                    self.stats.keyed_invalidations += 1;
                }
                Probe::Absent => {}
            }
        }
        match hit {
            Some(key) => {
                self.stats.hits += 1;
                // Re-stamp: the entry just proved itself clean against
                // every delta up to the current epoch.
                if let Some(e) = self.map.get_mut(&key) {
                    e.epoch = self.epoch;
                }
                self.map.get(&key)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Classifies a key's entry without mutating anything (hot path:
    /// no allocations).
    fn probe(&self, key: &Key, now: Instant) -> Probe {
        match self.map.get(key) {
            None => Probe::Absent,
            Some(e) if e.expired(now) => Probe::Expired,
            Some(e) if e.epoch != self.epoch && self.delta_affected(e.epoch, key) => {
                Probe::DeltaStale
            }
            Some(_) => Probe::Hit,
        }
    }

    /// Looks up a resolver-keyed answer for queries `resolver` sent to
    /// the authoritative IP `server`. Counts a hit or miss.
    pub fn lookup_resolver(
        &mut self,
        qname: &DnsName,
        qtype: RrType,
        resolver: Ipv4Addr,
        server: Ipv4Addr,
        now: Instant,
    ) -> Option<&CachedAnswer> {
        let key = Key::Resolver(qname.clone(), qtype, resolver, server);
        match self.probe(&key, now) {
            Probe::Hit => {
                self.stats.hits += 1;
                if let Some(e) = self.map.get_mut(&key) {
                    e.epoch = self.epoch;
                }
            }
            Probe::Expired => {
                self.remove(&key);
                self.stats.misses += 1;
                return None;
            }
            Probe::DeltaStale => {
                self.remove(&key);
                self.stats.keyed_invalidations += 1;
                self.stats.misses += 1;
                return None;
            }
            Probe::Absent => {
                self.stats.misses += 1;
                return None;
            }
        }
        self.map.get(&key)
    }

    /// Inserts a scoped answer valid for `scope_block`.
    pub fn insert_scoped(
        &mut self,
        qname: DnsName,
        qtype: RrType,
        scope_block: Prefix,
        answer: CachedAnswer,
    ) {
        self.insert(Key::Scoped(qname, qtype, scope_block), answer);
    }

    /// Inserts a resolver-keyed answer for the given serving IP.
    pub fn insert_resolver(
        &mut self,
        qname: DnsName,
        qtype: RrType,
        resolver: Ipv4Addr,
        server: Ipv4Addr,
        answer: CachedAnswer,
    ) {
        self.insert(Key::Resolver(qname, qtype, resolver, server), answer);
    }

    fn insert(&mut self, key: Key, mut answer: CachedAnswer) {
        answer.epoch = self.epoch;
        let cap = Instant::now() + Duration::from_secs(self.cfg.max_ttl_s as u64);
        if answer.expires > cap {
            answer.expires = cap;
        }
        while self.map.len() >= self.cfg.max_entries.max(1) {
            match self.order.pop_front() {
                Some(oldest) => {
                    if self.map.remove(&oldest).is_some() {
                        self.on_removed(&oldest);
                        self.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        if let Key::Scoped(_, _, p) = &key {
            self.scope_lens[p.len() as usize] += 1;
            self.stats.scoped_insertions += 1;
        }
        if self.map.insert(key.clone(), answer).is_none() {
            self.order.push_back(key);
        } else if let Key::Scoped(_, _, p) = &key {
            // Replaced in place: undo the double count.
            self.scope_lens[p.len() as usize] -= 1;
        }
        self.stats.insertions += 1;
    }

    fn remove(&mut self, key: &Key) {
        if self.map.remove(key).is_some() {
            self.on_removed(key);
            self.order.retain(|k| k != key);
        }
    }

    fn on_removed(&mut self, key: &Key) {
        if let Key::Scoped(_, _, p) = key {
            self.scope_lens[p.len() as usize] -= 1;
        }
    }

    /// Drops every entry (used when a new snapshot generation lands).
    /// Stats survive — they are cumulative across generations — and the
    /// clear itself is counted.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.scope_lens = [0; 33];
        // With no entries left, history proves nothing — drop it so the
        // keyed path gets its full window back.
        self.deltas.clear();
        self.stats.generation_clears += 1;
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> AnswerCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_dns::edns::OptData;
    use eum_dns::name::name;
    use eum_dns::{decode_message, Message, Question, Rcode, Record};

    fn ns() -> Ipv4Addr {
        "192.0.2.2".parse().unwrap()
    }

    /// A cached entry carrying one A answer with the given TTL and an ECS
    /// response scope of /24.
    fn entry(ttl_s: u32) -> CachedAnswer {
        let q = Message::query(
            7,
            Question::a(name("e0.cdn.example")),
            Some(OptData::with_ecs(EcsOption::query(
                "10.1.2.3".parse().unwrap(),
                24,
            ))),
        );
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers.push(Record::a(
            name("e0.cdn.example"),
            ttl_s,
            [9, 9, 9, 9].into(),
        ));
        resp.set_opt(OptData::with_ecs(EcsOption::response(q.ecs().unwrap(), 24)));
        CachedAnswer::from_response(&resp, ttl_s, Instant::now())
    }

    #[test]
    fn template_strips_per_query_parts() {
        let e = entry(30);
        let template = decode_message(e.wire()).unwrap();
        assert_eq!(template.id, 0);
        assert!(!template.flags.rd, "RD is patched per query");
        assert!(template.opt().is_none(), "OPT is appended per query");
        assert_eq!(template.answer_ips(), vec![Ipv4Addr::new(9, 9, 9, 9)]);
        assert_eq!(e.scope(), Some(24));
    }

    #[test]
    fn replay_patches_id_rd_and_appends_ecs() {
        let e = entry(30);
        let ecs = EcsOption::query("10.1.2.200".parse().unwrap(), 28);
        let mut out = Vec::new();
        e.replay_into(0xBEEF, true, Some(&ecs), Instant::now(), &mut out);
        let resp = decode_message(&out).expect("replayed bytes decode");
        assert_eq!(resp.id, 0xBEEF);
        assert!(resp.flags.qr && resp.flags.rd);
        assert_eq!(resp.answer_ips(), vec![Ipv4Addr::new(9, 9, 9, 9)]);
        let echo = resp.ecs().expect("ECS echoed");
        // RFC 7871 §7.1.3: family/source/address echo the query; the
        // scope is the stored one clamped to the source.
        assert_eq!(echo.addr, Ipv4Addr::new(10, 1, 2, 192));
        assert_eq!(echo.source_prefix, 28);
        assert_eq!(echo.scope_prefix, 24);
    }

    #[test]
    fn replay_without_ecs_appends_nothing() {
        let e = entry(30);
        let mut out = Vec::new();
        e.replay_into(42, false, None, Instant::now(), &mut out);
        let resp = decode_message(&out).expect("replayed bytes decode");
        assert_eq!(resp.id, 42);
        assert!(!resp.flags.rd);
        assert!(resp.opt().is_none());
        assert_eq!(out.len(), e.wire().len());
    }

    #[test]
    fn replay_reuses_buffer_capacity() {
        let e = entry(30);
        let mut out = Vec::new();
        let now = Instant::now();
        e.replay_into(1, false, None, now, &mut out);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        for id in 2..50u16 {
            e.replay_into(
                id,
                true,
                None,
                now + Duration::from_secs(id as u64),
                &mut out,
            );
        }
        assert_eq!(out.capacity(), cap, "replay must not reallocate");
        assert_eq!(out.as_ptr(), ptr, "replay must not move the buffer");
    }

    #[test]
    fn replay_decrements_record_ttls() {
        let t0 = Instant::now();
        let q = Message::query(7, Question::a(name("e0.cdn.example")), None);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.answers
            .push(Record::a(name("e0.cdn.example"), 30, [9, 9, 9, 9].into()));
        resp.answers
            .push(Record::a(name("e0.cdn.example"), 45, [9, 9, 9, 8].into()));
        let e = CachedAnswer::from_response(&resp, 30, t0);
        let ttls = |out: &[u8]| {
            let m = decode_message(out).expect("replayed bytes decode");
            m.answers.iter().map(|r| r.ttl).collect::<Vec<_>>()
        };
        let mut out = Vec::new();
        e.replay_into(1, false, None, t0, &mut out);
        assert_eq!(ttls(&out), vec![30, 45], "fresh replay keeps full TTLs");
        e.replay_into(2, false, None, t0 + Duration::from_secs(10), &mut out);
        assert_eq!(ttls(&out), vec![20, 35], "TTLs decrement with entry age");
        // Way past the record TTL the patch saturates at zero rather
        // than wrapping (only reachable through the expiry race).
        e.replay_into(3, false, None, t0 + Duration::from_secs(1000), &mut out);
        assert_eq!(ttls(&out), vec![0, 0]);
    }

    #[test]
    fn ttl_patching_handles_compressed_owner_names() {
        // A delegation-shaped response: NS authorities plus glue, all
        // sharing suffixes, so the encoded template contains RFC 1035
        // compression pointers in owner names. The offset walk must step
        // over them correctly.
        let t0 = Instant::now();
        let q = Message::query(7, Question::a(name("www.cdn.example")), None);
        let mut resp = Message::response_to(&q, Rcode::NoError);
        resp.authorities.push(Record::ns(
            name("cdn.example"),
            600,
            name("ns1.cdn.example"),
        ));
        resp.authorities.push(Record::ns(
            name("cdn.example"),
            600,
            name("ns2.cdn.example"),
        ));
        resp.additionals
            .push(Record::a(name("ns1.cdn.example"), 300, [9, 0, 0, 1].into()));
        resp.additionals
            .push(Record::a(name("ns2.cdn.example"), 300, [9, 0, 0, 2].into()));
        let e = CachedAnswer::from_response(&resp, 300, t0);
        let mut out = Vec::new();
        e.replay_into(9, false, None, t0 + Duration::from_secs(100), &mut out);
        let m = decode_message(&out).expect("replayed bytes decode");
        assert_eq!(
            m.authorities.iter().map(|r| r.ttl).collect::<Vec<_>>(),
            vec![500, 500]
        );
        assert_eq!(
            m.additionals.iter().map(|r| r.ttl).collect::<Vec<_>>(),
            vec![200, 200]
        );
    }

    #[test]
    fn scoped_hit_requires_client_inside_scope() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_some());
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.3.77".parse().unwrap(),
                24,
                now
            )
            .is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn longest_scope_wins_over_broader_one() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        let broad = {
            let mut e = entry(30);
            e.scope = Some(16);
            e
        };
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.0.0/16".parse().unwrap(),
            broad,
        );
        let narrow = {
            let mut e = entry(30);
            e.scope = Some(24);
            e
        };
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            narrow,
        );
        let got = c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.5".parse().unwrap(),
                24,
                now,
            )
            .unwrap();
        assert_eq!(got.scope(), Some(24));
        let got = c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.9.5".parse().unwrap(),
                24,
                now,
            )
            .unwrap();
        assert_eq!(got.scope(), Some(16));
    }

    #[test]
    fn resolver_entries_do_not_answer_scoped_lookups() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        let ldns: Ipv4Addr = "8.8.8.8".parse().unwrap();
        c.insert_resolver(name("e0.cdn.example"), RrType::A, ldns, ns(), entry(30));
        // The very client the resolver serves still misses the scoped path.
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_none());
        assert!(c
            .lookup_resolver(&name("e0.cdn.example"), RrType::A, ldns, ns(), now)
            .is_some());
    }

    #[test]
    fn expiry_removes_entries() {
        let mut c = AnswerCache::new(CacheConfig::default());
        c.insert_resolver(
            name("e0.cdn.example"),
            RrType::A,
            "8.8.8.8".parse().unwrap(),
            ns(),
            entry(0),
        );
        let later = Instant::now() + Duration::from_millis(1);
        assert!(c
            .lookup_resolver(
                &name("e0.cdn.example"),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                later
            )
            .is_none());
        assert!(c.is_empty(), "expired entry must be dropped on lookup");
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let mut c = AnswerCache::new(CacheConfig {
            max_entries: 2,
            max_ttl_s: 300,
        });
        let now = Instant::now();
        for i in 0..3u8 {
            c.insert_resolver(
                name(&format!("e{i}.cdn.example")),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                entry(30),
            );
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c
            .lookup_resolver(
                &name("e0.cdn.example"),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                now
            )
            .is_none());
        assert!(c
            .lookup_resolver(
                &name("e2.cdn.example"),
                RrType::A,
                "8.8.8.8".parse().unwrap(),
                ns(),
                now
            )
            .is_some());
    }

    #[test]
    fn stats_accumulate_across_generation_clears() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        let _ = c.lookup_scoped(
            &name("e0.cdn.example"),
            RrType::A,
            "10.1.2.77".parse().unwrap(),
            24,
            now,
        );
        c.clear();
        c.insert_resolver(
            name("e0.cdn.example"),
            RrType::A,
            "8.8.8.8".parse().unwrap(),
            ns(),
            entry(30),
        );
        let _ = c.lookup_resolver(
            &name("e0.cdn.example"),
            RrType::A,
            "8.8.8.8".parse().unwrap(),
            ns(),
            now,
        );
        c.clear();
        let s = c.stats();
        assert_eq!(s.hits, 2, "hits must survive clears");
        assert_eq!(s.insertions, 2);
        assert_eq!(s.scoped_insertions, 1);
        assert_eq!(s.generation_clears, 2);
    }

    #[test]
    fn keyed_delta_evicts_only_affected_scoped_entries() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        for block in ["10.1.2.0/24", "10.1.3.0/24"] {
            c.insert_scoped(
                name("e0.cdn.example"),
                RrType::A,
                block.parse().unwrap(),
                entry(30),
            );
        }
        // New generation: only 10.1.2.0/24 changed.
        let delta = Arc::new(MapDelta::from_dirty(&["10.1.2.0/24".parse().unwrap()], &[]));
        c.begin_generation(Some(&delta));
        assert_eq!(c.len(), 2, "keyed transition keeps entries for lazy checks");
        assert!(
            c.lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_none(),
            "entry named by the delta must be evicted on first touch"
        );
        assert!(
            c.lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.3.77".parse().unwrap(),
                24,
                now
            )
            .is_some(),
            "unaffected entry survives the generation swap"
        );
        let s = c.stats();
        assert_eq!(s.keyed_invalidations, 1);
        assert_eq!(s.generation_clears, 0);
    }

    #[test]
    fn keyed_delta_evicts_only_affected_resolver_entries() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        let dirty: Ipv4Addr = "8.8.8.8".parse().unwrap();
        let clean: Ipv4Addr = "9.9.9.9".parse().unwrap();
        for r in [dirty, clean] {
            c.insert_resolver(name("e0.cdn.example"), RrType::A, r, ns(), entry(30));
        }
        let delta = Arc::new(MapDelta::from_dirty(&[], &[dirty]));
        c.begin_generation(Some(&delta));
        assert!(c
            .lookup_resolver(&name("e0.cdn.example"), RrType::A, dirty, ns(), now)
            .is_none());
        assert!(c
            .lookup_resolver(&name("e0.cdn.example"), RrType::A, clean, ns(), now)
            .is_some());
        assert_eq!(c.stats().keyed_invalidations, 1);
    }

    #[test]
    fn hit_restamps_entry_past_older_deltas() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.3.0/24".parse().unwrap(),
            entry(300),
        );
        // Several unaffecting generations; the entry must keep hitting
        // even after the deltas that predate its last validation pile up.
        for _ in 0..3 {
            let delta = Arc::new(MapDelta::from_dirty(&["10.9.0.0/24".parse().unwrap()], &[]));
            c.begin_generation(Some(&delta));
            assert!(c
                .lookup_scoped(
                    &name("e0.cdn.example"),
                    RrType::A,
                    "10.1.3.77".parse().unwrap(),
                    24,
                    now
                )
                .is_some());
        }
        assert_eq!(c.stats().keyed_invalidations, 0);
        // A later delta that *does* name the unit still evicts.
        let delta = Arc::new(MapDelta::from_dirty(&["10.1.3.0/24".parse().unwrap()], &[]));
        c.begin_generation(Some(&delta));
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.3.77".parse().unwrap(),
                24,
                now
            )
            .is_none());
        assert_eq!(c.stats().keyed_invalidations, 1);
    }

    #[test]
    fn full_or_missing_delta_falls_back_to_generation_clear() {
        let mut c = AnswerCache::new(CacheConfig::default());
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        c.begin_generation(Some(&Arc::new(MapDelta::full(10))));
        assert!(c.is_empty(), "full delta must clear");
        assert_eq!(c.stats().generation_clears, 1);
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        c.begin_generation(None);
        assert!(c.is_empty(), "delta-less publish must clear");
        assert_eq!(c.stats().generation_clears, 2);
    }

    #[test]
    fn empty_delta_is_a_noop_transition() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        c.begin_generation(Some(&Arc::new(MapDelta::from_dirty(&[], &[]))));
        assert_eq!(c.len(), 1);
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_some());
        assert_eq!(c.stats().generation_clears, 0);
        assert_eq!(c.stats().keyed_invalidations, 0);
    }

    #[test]
    fn delta_history_overflow_degrades_to_clear() {
        let mut c = AnswerCache::new(CacheConfig::default());
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(300),
        );
        // Fill the history window with keyed transitions…
        for _ in 0..MAX_DELTA_HISTORY {
            c.begin_generation(Some(&Arc::new(MapDelta::from_dirty(
                &["10.9.0.0/24".parse().unwrap()],
                &[],
            ))));
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().generation_clears, 0);
        // …the next one can no longer be tracked and must clear.
        c.begin_generation(Some(&Arc::new(MapDelta::from_dirty(
            &["10.9.0.0/24".parse().unwrap()],
            &[],
        ))));
        assert!(c.is_empty());
        assert_eq!(c.stats().generation_clears, 1);
        // The clear resets the window, so keyed transitions resume.
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(300),
        );
        c.begin_generation(Some(&Arc::new(MapDelta::from_dirty(
            &["10.9.0.0/24".parse().unwrap()],
            &[],
        ))));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().generation_clears, 1);
    }

    #[test]
    fn clear_resets_scope_probe_table() {
        let mut c = AnswerCache::new(CacheConfig::default());
        let now = Instant::now();
        c.insert_scoped(
            name("e0.cdn.example"),
            RrType::A,
            "10.1.2.0/24".parse().unwrap(),
            entry(30),
        );
        c.clear();
        assert!(c.is_empty());
        assert!(c
            .lookup_scoped(
                &name("e0.cdn.example"),
                RrType::A,
                "10.1.2.77".parse().unwrap(),
                24,
                now
            )
            .is_none());
    }
}
