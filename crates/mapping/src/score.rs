//! Scoring: how good would cluster C be for mapping unit U?
//!
//! §2.2: "The topological map is then used to evaluate what performance
//! clients of each LDNS is likely to see if they are assigned to each
//! Akamai server cluster, a process called scoring. Different scoring
//! functions that incorporate bandwidth, latency, packet loss, etc can be
//! used for different traffic classes."
//!
//! A score is "expected badness in milliseconds": measured ping latency
//! plus a loss penalty expressed in equivalent milliseconds. Lower wins.

use crate::measure::{PingMatrix, PingTargets};
use crate::units::{MapUnits, UnitId};
use eum_netmodel::{Endpoint, Internet};
use serde::{Deserialize, Serialize};

/// Weights of the scoring function (traffic-class dependent; the defaults
/// model the web traffic class the paper's RUM metrics measure).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScoringWeights {
    /// Multiplier on measured latency.
    pub latency: f64,
    /// Milliseconds of penalty per 1% packet loss (loss devastates
    /// short web transfers via retransmission stalls).
    pub loss_ms_per_pct: f64,
}

impl Default for ScoringWeights {
    fn default() -> Self {
        ScoringWeights {
            latency: 1.0,
            loss_ms_per_pct: 15.0,
        }
    }
}

impl ScoringWeights {
    /// Combines a latency measurement and loss rate into a score.
    pub fn combine(&self, rtt_ms: f64, loss_rate: f64) -> f64 {
        self.latency * rtt_ms + self.loss_ms_per_pct * (loss_rate * 100.0)
    }

    /// The scoring function for a traffic class (§2.2): web is
    /// latency-dominated; video and downloads are throughput-bound, where
    /// loss (which caps TCP throughput) dwarfs propagation delay.
    pub fn for_class(class: eum_cdn::TrafficClass) -> ScoringWeights {
        match class {
            eum_cdn::TrafficClass::Web => ScoringWeights {
                latency: 1.0,
                loss_ms_per_pct: 15.0,
            },
            eum_cdn::TrafficClass::Video => ScoringWeights {
                latency: 0.4,
                loss_ms_per_pct: 45.0,
            },
            eum_cdn::TrafficClass::Download => ScoringWeights {
                latency: 0.15,
                loss_ms_per_pct: 60.0,
            },
        }
    }
}

/// How a unit's network position is represented for scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreBasis {
    /// Score latency from the unit's own vantage (NS-based: the LDNS
    /// endpoint; end-user: the client block centroid) via its ping target.
    UnitVantage,
    /// Score the demand-weighted latency over the unit's member client
    /// blocks — Client-Aware NS-based mapping (§6, "CANS").
    MemberClients,
}

/// The dense unit × cluster score table the global load balancer consumes.
#[derive(Debug, Clone)]
pub struct ScoreTable {
    n_clusters: usize,
    /// Row-major: `scores[unit * n_clusters + cluster]`.
    scores: Vec<f32>,
}

impl ScoreTable {
    /// Scores every unit against every cluster.
    ///
    /// `cluster_endpoints[i]` must be the endpoint of cluster `i` in the
    /// same order the load balancer uses. Latency is read from the ping
    /// matrix via each unit's (or member's) nearest target, exactly as the
    /// production pipeline proxies unmeasured points; loss comes from the
    /// model between the cluster and the unit's vantage.
    ///
    /// For [`ScoreBasis::MemberClients`] the per-member latencies are
    /// demand-weighted; member counts are capped at `member_cap` highest-
    /// demand members to bound cost (the tail adds almost no weight).
    #[allow(clippy::too_many_arguments)] // the pipeline's nine inputs are clearer spelled out
    pub fn build(
        net: &Internet,
        units: &MapUnits,
        unit_vantages: &[Endpoint],
        cluster_endpoints: &[Endpoint],
        targets: &PingTargets,
        matrix: &PingMatrix,
        weights: ScoringWeights,
        basis: ScoreBasis,
        member_cap: usize,
    ) -> ScoreTable {
        Self::build_parallel(
            net,
            units,
            unit_vantages,
            cluster_endpoints,
            targets,
            matrix,
            weights,
            basis,
            member_cap,
            1,
        )
    }

    /// [`build`](Self::build) with the per-unit scoring pass chunked
    /// across `workers` threads.
    ///
    /// Units are split into contiguous ranges, and each worker owns the
    /// matching disjoint slice of the flat row-major table — the "merge"
    /// is the memory layout itself, so the result is bit-identical to
    /// the sequential pass regardless of scheduling. `workers <= 1` (the
    /// single-core case) runs inline with no thread spawns.
    #[allow(clippy::too_many_arguments)]
    pub fn build_parallel(
        net: &Internet,
        units: &MapUnits,
        unit_vantages: &[Endpoint],
        cluster_endpoints: &[Endpoint],
        targets: &PingTargets,
        matrix: &PingMatrix,
        weights: ScoringWeights,
        basis: ScoreBasis,
        member_cap: usize,
        workers: usize,
    ) -> ScoreTable {
        assert_eq!(unit_vantages.len(), units.len(), "one vantage per unit");
        assert_eq!(
            matrix.deployments(),
            cluster_endpoints.len(),
            "matrix rows = clusters"
        );
        let n_clusters = cluster_endpoints.len();
        let mut scores = vec![0f32; units.len() * n_clusters];
        let workers = workers.max(1).min(units.len().max(1));
        if workers <= 1 || n_clusters == 0 {
            for (ui, info) in units.units.iter().enumerate() {
                score_row(
                    net,
                    info,
                    &unit_vantages[ui],
                    cluster_endpoints,
                    targets,
                    matrix,
                    weights,
                    basis,
                    member_cap,
                    &mut scores[ui * n_clusters..(ui + 1) * n_clusters],
                );
            }
        } else {
            let rows_per_chunk = units.len().div_ceil(workers);
            std::thread::scope(|s| {
                for (wi, chunk) in scores.chunks_mut(rows_per_chunk * n_clusters).enumerate() {
                    let first = wi * rows_per_chunk;
                    s.spawn(move || {
                        for (j, row) in chunk.chunks_mut(n_clusters).enumerate() {
                            let ui = first + j;
                            score_row(
                                net,
                                &units.units[ui],
                                &unit_vantages[ui],
                                cluster_endpoints,
                                targets,
                                matrix,
                                weights,
                                basis,
                                member_cap,
                                row,
                            );
                        }
                    });
                }
            });
        }
        ScoreTable { n_clusters, scores }
    }

    /// Recomputes the score rows for `rows` in place — the incremental
    /// rebuild's rescore pass for explicitly-hinted units.
    ///
    /// The (typically scattered) row list is chunked across `workers`
    /// threads; each worker fills a private buffer, and the buffers are
    /// copied back in chunk order on the calling thread, so the result
    /// is deterministic and identical to the sequential pass.
    #[allow(clippy::too_many_arguments)]
    pub fn rescore_rows(
        &mut self,
        net: &Internet,
        units: &MapUnits,
        unit_vantages: &[Endpoint],
        cluster_endpoints: &[Endpoint],
        targets: &PingTargets,
        matrix: &PingMatrix,
        weights: ScoringWeights,
        basis: ScoreBasis,
        member_cap: usize,
        rows: &[UnitId],
        workers: usize,
    ) {
        assert_eq!(unit_vantages.len(), units.len(), "one vantage per unit");
        assert_eq!(self.n_clusters, cluster_endpoints.len());
        let n = self.n_clusters;
        if n == 0 || rows.is_empty() {
            return;
        }
        let workers = workers.max(1).min(rows.len());
        if workers <= 1 {
            for uid in rows {
                let ui = uid.index();
                score_row(
                    net,
                    &units.units[ui],
                    &unit_vantages[ui],
                    cluster_endpoints,
                    targets,
                    matrix,
                    weights,
                    basis,
                    member_cap,
                    &mut self.scores[ui * n..(ui + 1) * n],
                );
            }
            return;
        }
        let per = rows.len().div_ceil(workers);
        let computed: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = rows
                .chunks(per)
                .map(|chunk| {
                    s.spawn(move || {
                        let mut buf = vec![0f32; chunk.len() * n];
                        for (j, uid) in chunk.iter().enumerate() {
                            let ui = uid.index();
                            score_row(
                                net,
                                &units.units[ui],
                                &unit_vantages[ui],
                                cluster_endpoints,
                                targets,
                                matrix,
                                weights,
                                basis,
                                member_cap,
                                &mut buf[j * n..(j + 1) * n],
                            );
                        }
                        buf
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rescore worker panicked"))
                .collect()
        });
        for (chunk, buf) in rows.chunks(per).zip(computed) {
            for (j, uid) in chunk.iter().enumerate() {
                let ui = uid.index();
                self.scores[ui * n..(ui + 1) * n].copy_from_slice(&buf[j * n..(j + 1) * n]);
            }
        }
    }

    /// Number of clusters (columns).
    pub fn clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of units (rows).
    pub fn units(&self) -> usize {
        self.scores.len().checked_div(self.n_clusters).unwrap_or(0)
    }

    /// The score of assigning `unit` to `cluster` (lower is better).
    pub fn score(&self, unit: UnitId, cluster: usize) -> f64 {
        self.scores[unit.index() * self.n_clusters + cluster] as f64
    }

    /// Clusters sorted best-first for a unit.
    pub fn preference_order(&self, unit: UnitId) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_clusters).collect();
        order.sort_by(|a, b| {
            self.score(unit, *a)
                .partial_cmp(&self.score(unit, *b))
                .expect("finite score")
        });
        order
    }

    /// The best-scoring cluster among a candidate set (e.g. live clusters).
    pub fn best_among(
        &self,
        unit: UnitId,
        candidates: impl IntoIterator<Item = usize>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in candidates {
            let s = self.score(unit, c);
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some((c, s));
            }
        }
        best.map(|(c, _)| c)
    }
}

/// Scores one unit against every cluster into `row` (len = clusters).
///
/// This is the unit of work both the chunked parallel build and the
/// incremental rescore pass share, so a row's value cannot depend on
/// which path computed it.
#[allow(clippy::too_many_arguments)]
fn score_row(
    net: &Internet,
    info: &crate::units::MapUnitInfo,
    vantage: &Endpoint,
    cluster_endpoints: &[Endpoint],
    targets: &PingTargets,
    matrix: &PingMatrix,
    weights: ScoringWeights,
    basis: ScoreBasis,
    member_cap: usize,
    row: &mut [f32],
) {
    match basis {
        ScoreBasis::UnitVantage => {
            let t = targets.target_of_point(&vantage.loc);
            for (ci, cep) in cluster_endpoints.iter().enumerate() {
                let rtt = matrix.ping(ci, t) + 2.0 * vantage.access_ms;
                let loss = net.latency.loss_rate(cep, vantage);
                row[ci] = weights.combine(rtt, loss) as f32;
            }
        }
        ScoreBasis::MemberClients => {
            // Cap members by demand.
            let mut members: Vec<_> = info.members.to_vec();
            members.sort_by(|a, b| {
                net.block(*b)
                    .demand
                    .partial_cmp(&net.block(*a).demand)
                    .expect("finite demand")
            });
            members.truncate(member_cap.max(1));
            let member_info: Vec<(crate::measure::TargetId, f64, Endpoint)> = members
                .iter()
                .map(|b| {
                    (
                        targets.target_of_block(*b),
                        net.block(*b).demand,
                        net.block(*b).endpoint(),
                    )
                })
                .collect();
            let total: f64 = member_info.iter().map(|(_, d, _)| d).sum();
            for (ci, cep) in cluster_endpoints.iter().enumerate() {
                let mut acc = 0.0;
                for (t, d, ep) in &member_info {
                    let rtt = matrix.ping(ci, *t) + 2.0 * ep.access_ms;
                    let loss = net.latency.loss_rate(cep, ep);
                    acc += weights.combine(rtt, loss) * d;
                }
                let score = if total > 0.0 {
                    acc / total
                } else {
                    f64::INFINITY
                };
                row[ci] = score as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MapUnits;
    use eum_netmodel::InternetConfig;

    fn setup() -> (Internet, MapUnits, Vec<Endpoint>, PingTargets, PingMatrix) {
        let net = Internet::generate(InternetConfig::tiny(0x5C0));
        let units = MapUnits::block_units(&net, 24, false);
        // Use a handful of resolver endpoints as stand-in "clusters".
        let clusters: Vec<Endpoint> = net.resolvers.iter().take(6).map(|r| r.endpoint()).collect();
        let targets = PingTargets::select(&net, 40, 150.0);
        let matrix = PingMatrix::measure(&net, &clusters, &targets);
        (net, units, clusters, targets, matrix)
    }

    fn vantages(net: &Internet, units: &MapUnits) -> Vec<Endpoint> {
        units
            .units
            .iter()
            .map(|u| net.block(u.members[0]).endpoint())
            .collect()
    }

    #[test]
    fn weights_combine_latency_and_loss() {
        let w = ScoringWeights::default();
        assert_eq!(w.combine(100.0, 0.0), 100.0);
        // 2% loss adds 30ms at the default 15 ms/%.
        assert_eq!(w.combine(100.0, 0.02), 130.0);
    }

    #[test]
    fn table_has_full_dimensions_and_finite_scores() {
        let (net, units, clusters, targets, matrix) = setup();
        let v = vantages(&net, &units);
        let table = ScoreTable::build(
            &net,
            &units,
            &v,
            &clusters,
            &targets,
            &matrix,
            ScoringWeights::default(),
            ScoreBasis::UnitVantage,
            50,
        );
        assert_eq!(table.units(), units.len());
        assert_eq!(table.clusters(), clusters.len());
        for u in 0..units.len() {
            for c in 0..clusters.len() {
                let s = table.score(UnitId(u as u32), c);
                assert!(s.is_finite() && s > 0.0);
            }
        }
    }

    #[test]
    fn preference_order_sorts_ascending() {
        let (net, units, clusters, targets, matrix) = setup();
        let v = vantages(&net, &units);
        let table = ScoreTable::build(
            &net,
            &units,
            &v,
            &clusters,
            &targets,
            &matrix,
            ScoringWeights::default(),
            ScoreBasis::UnitVantage,
            50,
        );
        let u = UnitId(0);
        let order = table.preference_order(u);
        assert_eq!(order.len(), clusters.len());
        for pair in order.windows(2) {
            assert!(table.score(u, pair[0]) <= table.score(u, pair[1]));
        }
    }

    #[test]
    fn best_among_respects_candidate_filter() {
        let (net, units, clusters, targets, matrix) = setup();
        let v = vantages(&net, &units);
        let table = ScoreTable::build(
            &net,
            &units,
            &v,
            &clusters,
            &targets,
            &matrix,
            ScoringWeights::default(),
            ScoreBasis::UnitVantage,
            50,
        );
        let u = UnitId(0);
        let overall = table.best_among(u, 0..clusters.len()).unwrap();
        let restricted = table.best_among(u, (0..clusters.len()).filter(|c| *c != overall));
        assert_ne!(Some(overall), restricted);
        assert_eq!(table.best_among(u, std::iter::empty()), None);
    }

    #[test]
    fn member_basis_differs_from_vantage_basis_for_spread_units() {
        // LDNS units with geographically spread members: scoring the
        // members (CANS) must not equal scoring the LDNS vantage (NS) in
        // general.
        let net = Internet::generate(InternetConfig::tiny(0x5C1));
        let units = MapUnits::ldns_units(&net);
        let clusters: Vec<Endpoint> = net.resolvers.iter().take(6).map(|r| r.endpoint()).collect();
        let targets = PingTargets::select(&net, 40, 150.0);
        let matrix = PingMatrix::measure(&net, &clusters, &targets);
        let ldns_vantages: Vec<Endpoint> = units
            .units
            .iter()
            .map(|u| match u.key {
                crate::units::UnitKey::Ldns(r) => net.resolver(r).endpoint(),
                _ => unreachable!(),
            })
            .collect();
        let ns = ScoreTable::build(
            &net,
            &units,
            &ldns_vantages,
            &clusters,
            &targets,
            &matrix,
            ScoringWeights::default(),
            ScoreBasis::UnitVantage,
            50,
        );
        let cans = ScoreTable::build(
            &net,
            &units,
            &ldns_vantages,
            &clusters,
            &targets,
            &matrix,
            ScoringWeights::default(),
            ScoreBasis::MemberClients,
            50,
        );
        let mut any_diff = false;
        for u in 0..units.len() {
            for c in 0..clusters.len() {
                if (ns.score(UnitId(u as u32), c) - cans.score(UnitId(u as u32), c)).abs() > 1.0 {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff, "CANS scoring never differed from NS scoring");
    }

    #[test]
    fn parallel_build_and_rescore_match_sequential_bitwise() {
        let (net, units, clusters, targets, matrix) = setup();
        let v = vantages(&net, &units);
        for basis in [ScoreBasis::UnitVantage, ScoreBasis::MemberClients] {
            let seq = ScoreTable::build(
                &net,
                &units,
                &v,
                &clusters,
                &targets,
                &matrix,
                ScoringWeights::default(),
                basis,
                50,
            );
            let par = ScoreTable::build_parallel(
                &net,
                &units,
                &v,
                &clusters,
                &targets,
                &matrix,
                ScoringWeights::default(),
                basis,
                50,
                4,
            );
            for u in 0..units.len() {
                for c in 0..clusters.len() {
                    let uid = UnitId(u as u32);
                    assert_eq!(seq.score(uid, c).to_bits(), par.score(uid, c).to_bits());
                }
            }
            // Re-scoring a scattered subset (in parallel) over unchanged
            // inputs must reproduce the same rows exactly.
            let rows: Vec<UnitId> = (0..units.len())
                .step_by(3)
                .map(|u| UnitId(u as u32))
                .collect();
            let mut re = par.clone();
            re.rescore_rows(
                &net,
                &units,
                &v,
                &clusters,
                &targets,
                &matrix,
                ScoringWeights::default(),
                basis,
                50,
                &rows,
                3,
            );
            for u in 0..units.len() {
                for c in 0..clusters.len() {
                    let uid = UnitId(u as u32);
                    assert_eq!(seq.score(uid, c).to_bits(), re.score(uid, c).to_bits());
                }
            }
        }
    }
}
