//! Integration: the §4 roll-out produces the paper's qualitative results
//! end to end — performance improves for public-resolver clients in
//! high-expectation countries, and the authoritative query load rises
//! with the paper's structure.

use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::{Metric, RolloutReport};

fn report() -> &'static RolloutReport {
    static REPORT: std::sync::OnceLock<RolloutReport> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| Scenario::build(ScenarioConfig::tiny(0x402)).run_rollout())
}

#[test]
fn high_expectation_group_improves_across_all_four_metrics() {
    let r = report();
    for metric in [Metric::MappingDistance, Metric::Rtt, Metric::Download] {
        let (pre, post) = r.before_after(metric, true);
        assert!(
            post < pre,
            "{}: {pre:.0} -> {post:.0} did not improve",
            metric.label()
        );
    }
    // TTFB is the weakest signal (the paper saw 30% where distance saw
    // 8x) and the tiny world's 10 clusters leave some high-expectation
    // countries without a nearby deployment, so origin legs lengthen as
    // client legs shorten. Require no regression at this scale; the
    // paper-scale reproduction records the real improvement.
    let (pre, post) = r.before_after(Metric::Ttfb, true);
    assert!(post < pre * 1.02, "TTFB regressed: {pre:.0} -> {post:.0}");
}

#[test]
fn mapping_distance_improves_more_than_ttfb_relatively() {
    // §4.3: mapping distance drops ~8x while TTFB improves ~30% — TTFB
    // has components mapping cannot touch. The ordering must hold.
    let r = report();
    let (dist_pre, dist_post) = r.before_after(Metric::MappingDistance, true);
    let (ttfb_pre, ttfb_post) = r.before_after(Metric::Ttfb, true);
    let dist_factor = dist_pre / dist_post;
    let ttfb_factor = ttfb_pre / ttfb_post;
    assert!(
        dist_factor > ttfb_factor,
        "distance {dist_factor:.2}x vs ttfb {ttfb_factor:.2}x"
    );
}

#[test]
fn high_expectation_gains_exceed_low_expectation_gains() {
    let r = report();
    let (pre_h, post_h) = r.before_after(Metric::Rtt, true);
    let (pre_l, post_l) = r.before_after(Metric::Rtt, false);
    let gain_h = pre_h / post_h;
    let gain_l = pre_l / post_l;
    assert!(
        gain_h > gain_l,
        "high-expectation RTT gain {gain_h:.2}x should exceed low {gain_l:.2}x"
    );
}

#[test]
fn query_growth_is_concentrated_in_public_resolvers() {
    let r = report();
    let ((pre_t, pre_p), (post_t, post_p)) = r.query_rate_change();
    let public_factor = post_p / pre_p;
    let nonpublic_factor = (post_t - post_p) / (pre_t - pre_p);
    assert!(public_factor > 1.3, "public factor {public_factor:.2}");
    assert!(
        public_factor > nonpublic_factor * 1.2,
        "public {public_factor:.2}x vs non-public {nonpublic_factor:.2}x"
    );
}

#[test]
fn rum_volume_grows_over_the_window() {
    // Figure 12's trend: measurement volume increases through the period.
    // Compare daily rates between the first and last thirds of the window
    // (month buckets would straddle partial months in the short test run).
    let r = report();
    let days = r.cfg.days;
    let third = days / 3;
    let count_in = |from: u32, to: u32| -> f64 {
        r.rum
            .samples
            .iter()
            .filter(|s| s.day >= from && s.day < to)
            .count() as f64
            / (to - from) as f64
    };
    let early = count_in(0, third);
    let late = count_in(days - third, days);
    assert!(late > early, "daily RUM rate fell: {early:.0} -> {late:.0}");
}

#[test]
fn public_rum_share_is_plausible_and_dataset_nonempty() {
    // Cross-substrate consistency: the NetSession dataset carries the full
    // demand, and the share of RUM samples that used a public resolver
    // sits in the plausible band the generator targets (§3.2: ~8%
    // worldwide, higher in the tiny universe's skewed country mix).
    let r = report();
    assert!(r.netsession.total_weight() > 0.0);
    assert!(!r.public_ldns_ips.is_empty());
    let rum_public =
        r.rum.samples.iter().filter(|s| s.public_resolver).count() as f64 / r.rum.len() as f64;
    assert!(
        (0.02..0.6).contains(&rum_public),
        "public RUM share {rum_public:.3} out of plausible range"
    );
}

#[test]
fn amplification_grows_with_popularity() {
    let r = report();
    let buckets = r.amplification_buckets();
    assert!(buckets.len() >= 2, "need multiple popularity buckets");
    let first = buckets.first().unwrap();
    let last = buckets.last().unwrap();
    assert!(last.popularity > first.popularity);
    assert!(
        last.factor > first.factor,
        "top bucket {:.2}x should exceed bottom {:.2}x",
        last.factor,
        first.factor
    );
}
