//! Runs the full adversarial scenario suite live — NXDOMAIN flood,
//! flash crowd, site outage, ECS flip, cache pressure — each twice at
//! identical offered load (defenses off, then on: authd admission
//! control with REFUSED shedding plus health-filtered map
//! republication), prints the A/B outcome per scenario, and lands the
//! per-window ground truth as JSONL under `results/`.
//!
//! Run with: `cargo run --release --example chaos_lab` (`--smoke` for
//! the abbreviated CI variant; exits non-zero unless the flood
//! defenses hold the 2x legit-goodput floor with a lower legit p99 and
//! the shed counters fire).
//!
//! Full runs emit `RESULT mode=pr10 scenario=...` lines that
//! `scripts/bench_record.sh pr10` parses into `BENCH_pr10.json`.

use end_user_mapping::chaos::{run_ab, AbReport, ChaosScenario, ChaosWorld};
use std::fs;
use std::io::Write;

const SEED: u64 = 0x000C_4A05;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut world = ChaosWorld::build(SEED);

    // Smoke mode runs the two floor-checked scenarios at full size —
    // the flood must outlast the admission burst to mean anything.
    let scenarios = if smoke {
        vec![
            ChaosScenario::nxdomain_flood(SEED),
            ChaosScenario::flash_crowd(SEED),
        ]
    } else {
        ChaosScenario::all(SEED)
    };

    let mut failures = Vec::new();
    let mut jsonl = Vec::new();
    for scenario in &scenarios {
        let ab = run_ab(&mut world, scenario);
        print_scenario(&ab, smoke);
        check(&ab, &mut failures);
        jsonl.extend(ab.jsonl_lines());
    }

    if !smoke {
        fs::create_dir_all("results").expect("create results/");
        let path = "results/chaos_lab.jsonl";
        let mut f = fs::File::create(path).expect("create chaos JSONL");
        for line in &jsonl {
            writeln!(f, "{line}").expect("write chaos JSONL");
        }
        println!("wrote {} lines to {path}", jsonl.len());
    }

    if failures.is_empty() {
        println!("CHAOS PASS");
    } else {
        for f in &failures {
            eprintln!("CHAOS FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn print_scenario(ab: &AbReport, smoke: bool) {
    println!(
        "\n== {} == interval {} ns, deadline {} us (calibrated cost off {} ns / on {} ns)",
        ab.scenario,
        ab.interval_ns,
        ab.deadline_ns / 1_000,
        ab.cost_off_ns,
        ab.cost_on_ns,
    );
    for (arm, r) in [("off", &ab.off), ("on", &ab.on)] {
        println!(
            "  defenses {arm:>3}: goodput {:>8.1} qps  quality {:>5.3}  p50 {:>8.1} us  \
             p99 {:>9.1} us  shed {:>6}  admitted {:>6}",
            r.goodput_qps, r.legit_quality, r.legit_p50_us, r.legit_p99_us, r.shed, r.admitted,
        );
    }
    println!("  goodput ratio (on/off): {:.2}x", ab.goodput_ratio());
    if !smoke {
        println!(
            "RESULT mode=pr10 scenario={} goodput_off={:.1} goodput_on={:.1} \
             goodput_ratio={:.3} p99_off_us={:.1} p99_on_us={:.1} quality_off={:.4} \
             quality_on={:.4} shed_on={} admitted_on={} cost_off_ns={} cost_on_ns={} \
             interval_ns={}",
            ab.scenario,
            ab.off.goodput_qps,
            ab.on.goodput_qps,
            ab.goodput_ratio(),
            ab.off.legit_p99_us,
            ab.on.legit_p99_us,
            ab.off.legit_quality,
            ab.on.legit_quality,
            ab.on.shed,
            ab.on.admitted,
            ab.cost_off_ns,
            ab.cost_on_ns,
            ab.interval_ns,
        );
    }
}

/// The pinned floors: the flood defenses must double legit goodput and
/// cut the tail; a cacheable flash crowd must ride through undented.
fn check(ab: &AbReport, failures: &mut Vec<String>) {
    match ab.scenario.as_str() {
        "nxdomain_flood" => {
            if ab.on.shed == 0 {
                failures.push("nxdomain_flood: defended arm shed nothing".into());
            }
            if ab.goodput_ratio() < 2.0 {
                failures.push(format!(
                    "nxdomain_flood: goodput ratio {:.2} below the 2.0 floor",
                    ab.goodput_ratio()
                ));
            }
            if ab.on.legit_p99_us >= ab.off.legit_p99_us {
                failures.push(format!(
                    "nxdomain_flood: defended p99 {:.1} us not below undefended {:.1} us",
                    ab.on.legit_p99_us, ab.off.legit_p99_us
                ));
            }
        }
        "flash_crowd" if ab.goodput_ratio() < 0.8 => {
            failures.push(format!(
                "flash_crowd: defenses dented goodput, ratio {:.2}",
                ab.goodput_ratio()
            ));
        }
        _ => {}
    }
}
