//! A hierarchical timer wheel for TTL expiry.
//!
//! A recursive resolver holds entries whose TTLs span four orders of
//! magnitude — seconds for end-user A records, hours for delegations —
//! and must expire them without scanning the whole cache. The classic
//! answer (Varghese & Lauck) is a hierarchy of circular slot arrays:
//!
//! * **Level 0**: [`SLOTS0`] slots of 1 s each — entries due within the
//!   next ~4 minutes sit in the exact second they expire.
//! * **Level 1**: [`SLOTS1`] slots of [`SLOTS0`] s each — entries due
//!   within ~4.5 h wait here and *cascade* down to level 0 when the
//!   cursor enters their window.
//! * **Overflow**: everything further out, re-distributed each time the
//!   cursor wraps a full level-1 revolution.
//!
//! [`TimerWheel::advance`] walks the cursor from the last processed
//! second to `now`, draining due slots into a caller-owned scratch
//! vector; cost is O(elapsed seconds + expired entries), independent of
//! live entry count. Deadlines round *up* to the next tick, so the wheel
//! never reports an entry expired before its deadline — the cache
//! double-checks real expiry anyway (stale answers must never leave the
//! resolver, RFC 2308 §2).

use std::time::{Duration, Instant};

/// Level-0 slot count (1 s granularity).
pub const SLOTS0: u64 = 256;
/// Level-1 slot count (each [`SLOTS0`] s wide).
pub const SLOTS1: u64 = 64;
/// One full level-1 revolution, seconds.
const REVOLUTION: u64 = SLOTS0 * SLOTS1;

/// A two-level hierarchical timer wheel over an [`Instant`] epoch.
#[derive(Debug)]
pub struct TimerWheel<T> {
    epoch: Instant,
    /// The next tick (second since `epoch`) not yet processed.
    cursor: u64,
    l0: Vec<Vec<T>>,
    l1: Vec<Vec<(u64, T)>>,
    overflow: Vec<(u64, T)>,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// An empty wheel whose tick 0 is `epoch`.
    pub fn new(epoch: Instant) -> TimerWheel<T> {
        TimerWheel {
            epoch,
            cursor: 0,
            l0: (0..SLOTS0).map(|_| Vec::new()).collect(),
            l1: (0..SLOTS1).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Entries currently armed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tick a deadline lands on: seconds since epoch, rounded up so
    /// the wheel fires at or after the deadline, never before.
    fn tick_of(&self, deadline: Instant) -> u64 {
        let since = deadline.saturating_duration_since(self.epoch);
        let mut tick = since.as_secs();
        if since > Duration::from_secs(tick) {
            tick += 1;
        }
        tick
    }

    /// Arms `item` to fire at `deadline` (clamped to the next advance
    /// when already past).
    pub fn insert(&mut self, deadline: Instant, item: T) {
        let tick = self.tick_of(deadline).max(self.cursor);
        self.place(tick, item);
        self.len += 1;
    }

    /// Files an item into the level holding its tick. `tick` must be
    /// `>= self.cursor`.
    fn place(&mut self, tick: u64, item: T) {
        let horizon = tick - self.cursor;
        if horizon < SLOTS0 {
            // lint: allow(serve-index) — slot index is modulo the vec length fixed at construction
            self.l0[(tick % SLOTS0) as usize].push(item);
        } else if horizon < REVOLUTION {
            // lint: allow(serve-index) — slot index is modulo the vec length fixed at construction
            self.l1[((tick / SLOTS0) % SLOTS1) as usize].push((tick, item));
        } else {
            self.overflow.push((tick, item));
        }
    }

    /// Walks the cursor up to `now`, draining every due entry into
    /// `expired` (a caller-owned scratch vector, reused across calls so
    /// steady-state advances allocate nothing). Returns how many entries
    /// fired.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<T>) -> usize {
        let before = expired.len();
        let now_tick = now.saturating_duration_since(self.epoch).as_secs();
        while self.cursor <= now_tick {
            let tick = self.cursor;
            if tick.is_multiple_of(SLOTS0) {
                // Entering a new level-1 window: cascade its slot down.
                // lint: allow(serve-index) — slot index is modulo the vec length fixed at construction
                let pending = std::mem::take(&mut self.l1[((tick / SLOTS0) % SLOTS1) as usize]);
                for (t, item) in pending {
                    self.place(t.max(tick), item);
                }
                if tick.is_multiple_of(REVOLUTION) && !self.overflow.is_empty() {
                    let far = std::mem::take(&mut self.overflow);
                    for (t, item) in far {
                        self.place(t.max(tick), item);
                    }
                }
            }
            // lint: allow(serve-index) — slot index is modulo the vec length fixed at construction
            expired.append(&mut self.l0[(tick % SLOTS0) as usize]);
            self.cursor += 1;
        }
        let fired = expired.len() - before;
        self.len -= fired;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> (TimerWheel<u32>, Instant) {
        let epoch = Instant::now();
        (TimerWheel::new(epoch), epoch)
    }

    fn at(epoch: Instant, s: u64) -> Instant {
        epoch + Duration::from_secs(s)
    }

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let (mut w, t0) = wheel();
        w.insert(at(t0, 10), 1);
        let mut out = Vec::new();
        assert_eq!(w.advance(at(t0, 9), &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(w.advance(at(t0, 10), &mut out), 1);
        assert_eq!(out, vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn subsecond_deadlines_round_up() {
        let (mut w, t0) = wheel();
        w.insert(t0 + Duration::from_millis(1500), 7);
        let mut out = Vec::new();
        // 1.5 s rounds up to tick 2: not due at t=1.
        w.advance(at(t0, 1), &mut out);
        assert!(out.is_empty());
        w.advance(at(t0, 2), &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn level1_entries_cascade_to_the_right_second() {
        let (mut w, t0) = wheel();
        // Past level 0's horizon: lands in level 1, then cascades.
        w.insert(at(t0, 300), 42);
        w.insert(at(t0, 301), 43);
        let mut out = Vec::new();
        w.advance(at(t0, 299), &mut out);
        assert!(out.is_empty());
        w.advance(at(t0, 300), &mut out);
        assert_eq!(out, vec![42]);
        w.advance(at(t0, 301), &mut out);
        assert_eq!(out, vec![42, 43]);
    }

    #[test]
    fn overflow_entries_survive_revolutions() {
        let (mut w, t0) = wheel();
        let far = REVOLUTION + 77; // ~4.5 h out
        w.insert(at(t0, far), 9);
        let mut out = Vec::new();
        w.advance(at(t0, far - 1), &mut out);
        assert!(out.is_empty());
        w.advance(at(t0, far), &mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let (mut w, t0) = wheel();
        let mut out = Vec::new();
        w.advance(at(t0, 50), &mut out);
        // Deadline in the already-processed past: clamped to the next
        // unprocessed tick, so it fires as soon as time moves again.
        w.insert(at(t0, 10), 5);
        w.advance(at(t0, 51), &mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn dense_spread_all_fire_exactly_once() {
        let (mut w, t0) = wheel();
        for i in 0..2_000u32 {
            // Deadlines spread over ~33 min, crossing many cascades.
            w.insert(at(t0, (i as u64 * 7919) % 2_000), i);
        }
        assert_eq!(w.len(), 2_000);
        let mut out = Vec::new();
        let mut fired = 0;
        for step in (0..=2_000u64).step_by(13) {
            fired += w.advance(at(t0, step), &mut out);
        }
        fired += w.advance(at(t0, 2_000), &mut out);
        assert_eq!(fired, 2_000);
        let mut seen = out.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 2_000, "every entry fires exactly once");
        assert!(w.is_empty());
    }
}
