#!/usr/bin/env bash
# Standalone model-check runner: the eum-mcheck scheduler's own test
# suite plus every model-checked protocol test in the workspace (trace
# seqlock ring, epoch/snapshot publication, keyed eviction, and the
# fence-removal regression that must keep failing inside the checker).
#
# Default configs bound the exploration to stay under ~5 s on one core.
# Set EUM_MCHECK_EXHAUSTIVE=1 to raise the preemption bound and execution
# budget for an exhaustive pass (still seconds — the modeled protocols
# have small state spaces).
#
# A failing model test prints the minimized interleaving schedule
# (numbered per-thread op lines, stale-load choices marked STALE) — see
# FailureReport in crates/mcheck/src/model.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="bounded (default); set EUM_MCHECK_EXHAUSTIVE=1 for the exhaustive pass"
if [ "${EUM_MCHECK_EXHAUSTIVE:-0}" = "1" ]; then
    mode="exhaustive (EUM_MCHECK_EXHAUSTIVE=1)"
fi
echo "==> model checking: $mode"

echo "==> eum-mcheck scheduler self-tests (known-racy toys, handoff proofs)"
cargo test -q -p eum-mcheck

echo "==> trace ring model tests (no torn record observable)"
cargo test -q -p eum-telemetry --test trace_stress

echo "==> trace ring fence-removal regression (checker must catch it)"
cargo test -q -p eum-telemetry --test trace_fence_regression

echo "==> snapshot/epoch + keyed-eviction model tests"
cargo test -q -p eum-authd --test snapshot_stress

echo "Model checking passed."
