//! The mapping system: measurement → scoring → load balancing → DNS.
//!
//! [`MappingSystem`] is the paper's central artifact (Figure 3): it builds
//! the topology view from the measurement component, scores every mapping
//! unit against every cluster, runs the global load balancer, builds a
//! consistent-hash ring per cluster for local load balancing, and then
//! *serves DNS* through the two-level authoritative hierarchy:
//!
//! * the **top-level** name server answers queries for CDN domains with an
//!   NS delegation toward a low-level name server in a cluster close to
//!   the querying LDNS ("This delegation step implements the global load
//!   balancer choice of cluster for the client's LDNS", §2.2);
//! * a **low-level** name server in each cluster answers `A` queries with
//!   two server IPs chosen by the local load balancer. Under end-user
//!   mapping, an incoming ECS option selects the client-block mapping
//!   unit, and the response's ECS scope is the unit's prefix length —
//!   exactly the `/y ≤ /x` narrowing of Figure 4.

use crate::delta::MapDelta;
use crate::global_lb::{assign_with_prefs, Assignment, LbAlgorithm, PreferenceTable};
use crate::local_lb::{domain_key, ConsistentRing};
use crate::measure::{PingMatrix, PingTargets};
use crate::policy::MappingPolicy;
use crate::score::{ScoreBasis, ScoreTable, ScoringWeights};
use crate::telemetry::{AnswerPath, MappingTelemetry};
use crate::units::{MapUnitInfo, MapUnits, UnitId, UnitKey};
use eum_cdn::{CdnPlatform, ClusterId, ContentCatalog, ServerId, TrafficClass};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{DnsName, Message, QueryContext, Rcode, Record};
use eum_geo::{GeoInfo, Prefix};
use eum_netmodel::{Endpoint, Internet};
use eum_telemetry::Registry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How servers are picked within the chosen cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalLbPolicy {
    /// Bounded-load consistent hashing: a domain's content sticks to the
    /// same servers, maximizing cache hit rate (the production design).
    ConsistentHash,
    /// Rotate over the cluster's servers per query — the ablation
    /// baseline that spreads load perfectly but shreds cache locality.
    RoundRobin,
}

/// Mapping-system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingConfig {
    /// Request-routing policy.
    pub policy: MappingPolicy,
    /// Server selection within a cluster.
    pub local_lb: LocalLbPolicy,
    /// Global load-balancing algorithm.
    pub algorithm: LbAlgorithm,
    /// Scoring weights.
    pub weights: ScoringWeights,
    /// Delegation (NS) TTL, seconds.
    pub ns_ttl_s: u32,
    /// Maximum ping targets for the measurement component.
    pub max_ping_targets: usize,
    /// Target covering radius, miles.
    pub target_cover_miles: f64,
    /// Ranked fallback clusters kept per unit (liveness failover).
    pub candidates_per_unit: usize,
    /// Server IPs per A answer ("two or more … as a precaution against
    /// transient failures", §1 fn. 2).
    pub servers_per_answer: usize,
    /// Member-block cap for client-aware scoring.
    pub member_cap: usize,
    /// Virtual nodes per server on local-LB rings.
    pub ring_vnodes: usize,
    /// Finest scope granularity answered regardless of unit coarseness.
    /// The paper's Figure-4 example answers a /24 query with a /20 scope:
    /// even when the internal mapping unit is a coarse BGP CIDR, the
    /// answer's scope is clamped no coarser than this, bounding how widely
    /// one answer is reused.
    pub scope_floor: u8,
    /// Score each traffic class with its own weights (§2.2). When false,
    /// `weights` applies to every class (the ablation baseline).
    pub per_class_scoring: bool,
    /// Worker threads for the per-unit scoring passes (full build and
    /// incremental rescore). `0` means "one per available core".
    pub rebuild_workers: usize,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            policy: MappingPolicy::end_user_default(),
            local_lb: LocalLbPolicy::ConsistentHash,
            algorithm: LbAlgorithm::Stable,
            weights: ScoringWeights::default(),
            ns_ttl_s: 21_600,
            max_ping_targets: 2000,
            target_cover_miles: 100.0,
            candidates_per_unit: 4,
            servers_per_answer: 2,
            member_cap: 50,
            ring_vnodes: 64,
            scope_floor: 20,
            per_class_scoring: true,
            rebuild_workers: 0,
        }
    }
}

impl MappingConfig {
    /// Resolved scoring-worker count: the configured value, or the
    /// machine's available parallelism when `rebuild_workers` is 0.
    pub fn worker_count(&self) -> usize {
        if self.rebuild_workers > 0 {
            self.rebuild_workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Authoritative-side query counters — the raw data behind Figures 2, 23
/// and 24.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MappingStats {
    /// All queries handled (top-level + low-level).
    pub queries: u64,
    /// Top-level (delegation) queries.
    pub top_level_queries: u64,
    /// Low-level A queries.
    pub a_queries: u64,
    /// Queries that carried an ECS option.
    pub ecs_queries: u64,
    /// A-queries per (domain index, LDNS IP) — Figure 24's unit of
    /// analysis.
    pub per_domain_ldns: HashMap<(u32, Ipv4Addr), u64>,
}

/// A cluster as the mapping system sees it.
#[derive(Debug, Clone)]
struct ClusterView {
    id: ClusterId,
    endpoint: Endpoint,
    ns_ip: Ipv4Addr,
    capacity: f64,
    alive: bool,
    /// Load-feedback health mark: an overloaded cluster is filtered from
    /// candidate rows at serve time like a dead one, but the widening
    /// fallback still prefers it over leaving the ranking (overload
    /// beats outage). Set through
    /// [`MappingSystem::set_cluster_overloaded`], carried across
    /// incremental rebuilds, reset by a full rebuild.
    overloaded: bool,
    servers: Vec<(ServerId, Ipv4Addr, bool)>,
    /// Shared across generations: ring membership depends on the server
    /// set, not liveness (dead servers are filtered at pick time).
    ring: Arc<ConsistentRing>,
}

/// Flat ranked-candidate rows: row `u` holds unit `u`'s clusters best
/// first (the LB assignment, then remaining clusters in score order),
/// padded with [`NO_CANDIDATE`] to a fixed stride. Flat storage makes
/// generation-over-generation comparison (for `Arc` sharing and delta
/// extraction) one `Vec` equality check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CandidateTable {
    stride: usize,
    flat: Vec<u32>,
}

/// Row padding sentinel for [`CandidateTable`].
const NO_CANDIDATE: u32 = u32::MAX;

impl CandidateTable {
    /// A table with no rows (policies without EU units).
    fn empty() -> CandidateTable {
        CandidateTable {
            stride: 1,
            flat: Vec::new(),
        }
    }

    /// Ranks every unit: the LB assignment first, then the remaining
    /// clusters in preference order, deduped, up to `k` per unit.
    fn build(
        units: &MapUnits,
        prefs: &PreferenceTable,
        assignment: &Assignment,
        k: usize,
    ) -> CandidateTable {
        let stride = k.max(1);
        let mut flat = vec![NO_CANDIDATE; units.len() * stride];
        for u in 0..units.len() {
            let uid = UnitId(u as u32);
            let row = &mut flat[u * stride..(u + 1) * stride];
            let mut n = 0usize;
            if let Some(c) = assignment.cluster(uid) {
                row[n] = c as u32;
                n += 1;
            }
            for c in prefs.row(uid) {
                if n >= stride {
                    break;
                }
                if !row[..n].contains(c) {
                    row[n] = *c;
                    n += 1;
                }
            }
        }
        CandidateTable { stride, flat }
    }

    /// A unit's ranked candidates, trimmed of padding.
    fn row(&self, u: usize) -> &[u32] {
        let row = &self.flat[u * self.stride..(u + 1) * self.stride];
        let n = row
            .iter()
            .position(|c| *c == NO_CANDIDATE)
            .unwrap_or(self.stride);
        &row[..n]
    }
}

/// Three per-class candidate tables (indexed by [`class_slot`]); the
/// same `Arc` fills all three slots when per-class scoring is off, or
/// when a class's table did not change across an incremental rebuild.
type Candidates = [Arc<CandidateTable>; 3];

fn empty_candidates() -> Candidates {
    let e = Arc::new(CandidateTable::empty());
    [e.clone(), e.clone(), e]
}

/// Cached score table + preference orders for one traffic class.
struct ClassTables {
    weights: ScoringWeights,
    scores: ScoreTable,
    prefs: PreferenceTable,
}

/// Everything [`MappingSystem::rebuild_incremental`] reuses between
/// generations: the measurement artifacts, the per-class score and
/// preference tables, and the previous solve's inputs (for change
/// detection). Control-plane only — never published to shards.
struct SolverState {
    targets: PingTargets,
    matrix: PingMatrix,
    cluster_eps: Vec<Endpoint>,
    capacity: Vec<f64>,
    usable: Vec<bool>,
    ns_basis: ScoreBasis,
    ns_vantages: Vec<Endpoint>,
    eu_vantages: Vec<Endpoint>,
    /// Per-class tables (one shared entry when per-class scoring is
    /// off), indexed by [`class_slot`].
    ns: Vec<ClassTables>,
    eu: Vec<ClassTables>,
    /// Sorted block indices of the ping-target blocks: a rescore hint
    /// touching one of these invalidates the shared ping matrix and
    /// forces a full rebuild.
    target_block_idx: Vec<usize>,
    /// Topology cardinalities the cached unit partitions were built
    /// from; a mismatch means the units themselves are stale.
    n_blocks: usize,
    n_resolvers: usize,
}

/// Units [`MappingSystem::rebuild_incremental`] must re-score because
/// their *measurement inputs* changed (member access latencies, vantage
/// position). Liveness and capacity changes are detected automatically
/// and need no hint; demand or topology changes require a full
/// [`MappingSystem::rebuild`].
#[derive(Debug, Clone, Default)]
pub struct RescoreHints {
    /// NS (resolver) units to re-score.
    pub ns: Vec<UnitId>,
    /// End-user units to re-score.
    pub eu: Vec<UnitId>,
}

impl RescoreHints {
    /// True when no unit is hinted.
    pub fn is_empty(&self) -> bool {
        self.ns.is_empty() && self.eu.is_empty()
    }
}

/// The mapping system.
pub struct MappingSystem {
    cfg: MappingConfig,
    /// The CDN's domain suffix (e.g. `cdn.example`).
    suffix: DnsName,
    /// Top-level authoritative server IP.
    top_ip: Ipv4Addr,
    catalog: Arc<ContentCatalog>,
    clusters: Vec<ClusterView>,
    ns_by_ip: Arc<HashMap<Ipv4Addr, usize>>,
    /// NS-based (or client-aware) units and their ranked cluster choices,
    /// one candidate table per traffic class (indexed by
    /// [`class_slot`]). `Arc`-shared so [`MappingSystem::clone_for_publish`]
    /// is cheap and unchanged tables are structurally shared across
    /// generations.
    ns_units: Arc<MapUnits>,
    ns_candidates: Candidates,
    ldns_by_ip: Arc<HashMap<Ipv4Addr, UnitId>>,
    /// End-user units (only under `MappingPolicy::EndUser`).
    eu_units: Option<Arc<MapUnits>>,
    eu_candidates: Candidates,
    /// Round-robin rotation for [`LocalLbPolicy::RoundRobin`]. Atomic so
    /// the lock-free [`MappingSystem::answer`] path can rotate while the
    /// system is shared immutably across serving shards.
    rr_counter: AtomicU64,
    /// Runtime counters.
    pub stats: MappingStats,
    /// Registered instruments (None until
    /// [`MappingSystem::attach_telemetry`]); all recording goes through
    /// `&self` atomics, keeping [`MappingSystem::answer`] lock-free.
    telemetry: Option<MappingTelemetry>,
    /// Incremental-rebuild cache (None on publish clones and before the
    /// first build completes).
    solver: Option<Box<SolverState>>,
}

/// The output of one measurement → scoring → load-balancing pass.
struct ComputedMap {
    clusters: Vec<ClusterView>,
    ns_by_ip: Arc<HashMap<Ipv4Addr, usize>>,
    ns_units: Arc<MapUnits>,
    ns_candidates: Candidates,
    ldns_by_ip: Arc<HashMap<Ipv4Addr, UnitId>>,
    eu_units: Option<Arc<MapUnits>>,
    eu_candidates: Candidates,
    solver: Box<SolverState>,
}

/// Index of a traffic class in the per-class candidate tables.
fn class_slot(class: TrafficClass) -> usize {
    match class {
        TrafficClass::Web => 0,
        TrafficClass::Video => 1,
        TrafficClass::Download => 2,
    }
}

impl MappingSystem {
    /// Builds the full pipeline: ping targets, ping matrix, scoring,
    /// global load balancing, and per-cluster rings. Allocates the
    /// top-level name server's address block inside `net`.
    pub fn build(
        net: &mut Internet,
        cdn: &CdnPlatform,
        catalog: &ContentCatalog,
        suffix: DnsName,
        cfg: MappingConfig,
    ) -> MappingSystem {
        assert!(!cdn.clusters.is_empty(), "cannot map onto an empty CDN");
        // Top-level NS placed at the CDN's first cluster location (the
        // paper's top-levels are themselves distributed; one logical
        // endpoint suffices for the model).
        let first = &cdn.clusters[0];
        let top_prefix = net.alloc_infra_block(GeoInfo {
            point: first.loc,
            country: first.country,
            asn: eum_cdn::CDN_ASN,
        });
        let top_ip = Ipv4Addr::from(top_prefix.addr() | 2);
        let computed = Self::compute(net, cdn, &cfg);
        MappingSystem {
            cfg,
            suffix,
            top_ip,
            catalog: Arc::new(catalog.clone()),
            clusters: computed.clusters,
            ns_by_ip: computed.ns_by_ip,
            ns_units: computed.ns_units,
            ns_candidates: computed.ns_candidates,
            ldns_by_ip: computed.ldns_by_ip,
            eu_units: computed.eu_units,
            eu_candidates: computed.eu_candidates,
            rr_counter: AtomicU64::new(0),
            stats: MappingStats::default(),
            telemetry: None,
            solver: Some(computed.solver),
        }
    }

    /// Attaches (or re-attaches) instrumentation backed by `registry`.
    /// Registration is idempotent, so repeated attaches — including the
    /// automatic one in [`MappingSystem::rebuild`] — keep accumulating
    /// into the same counters while the per-unit arrays are sized for the
    /// current map.
    pub fn attach_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = Some(MappingTelemetry::new(
            registry,
            self.ns_units.len(),
            self.eu_units.as_ref().map(|u| u.len()).unwrap_or(0),
        ));
    }

    /// The attached instrumentation, if any.
    pub fn telemetry(&self) -> Option<&MappingTelemetry> {
        self.telemetry.as_ref()
    }

    /// Recomputes the whole map against the CDN's *current* state — the
    /// paper's periodic map refresh: liveness, capacity, and deployment
    /// changes feed back into scoring and load balancing while runtime
    /// counters and the name-server identity are preserved.
    pub fn rebuild(&mut self, net: &Internet, cdn: &CdnPlatform) {
        assert!(!cdn.clusters.is_empty(), "cannot map onto an empty CDN");
        let start = Instant::now();
        let computed = Self::compute(net, cdn, &self.cfg);
        self.clusters = computed.clusters;
        self.ns_by_ip = computed.ns_by_ip;
        self.ns_units = computed.ns_units;
        self.ns_candidates = computed.ns_candidates;
        self.ldns_by_ip = computed.ldns_by_ip;
        self.eu_units = computed.eu_units;
        self.eu_candidates = computed.eu_candidates;
        self.solver = Some(computed.solver);
        // Unit counts may have changed shape; re-attach so the per-unit
        // arrays match while the registry counters keep accumulating.
        if let Some(t) = self.telemetry.take() {
            self.attach_telemetry(t.registry().clone());
        }
        if let Some(t) = &self.telemetry {
            t.record_rebuild(
                true,
                start.elapsed().as_nanos() as u64,
                self.total_units() as u64,
            );
        }
    }

    /// Total mapping units (NS + EU) in the current map.
    pub fn total_units(&self) -> usize {
        self.ns_units.len() + self.eu_units.as_ref().map(|u| u.len()).unwrap_or(0)
    }

    /// Incrementally refreshes the map against the CDN's current state,
    /// returning the delta of units whose answers may have changed.
    ///
    /// Cost is proportional to what changed, not to world size: the
    /// previous generation's measurement artifacts (ping targets, ping
    /// matrix), score tables, and preference orders are reused; only
    /// liveness/capacity inputs and explicitly `hints`-ed units are
    /// recomputed before the solver re-runs over the cached tables (see
    /// `stable_allocation` for why its repair queue is seeded with every
    /// unit — the result is bit-identical to a from-scratch rebuild).
    /// Candidate tables that come out unchanged keep their previous
    /// `Arc`, so publication shares structure across generations.
    ///
    /// Falls back to a full [`rebuild`](Self::rebuild) — returning a
    /// full delta — when the deployment or topology changed shape, or a
    /// hinted unit overlaps a ping-target block (the shared matrix would
    /// be stale). When the global escape cluster (the fallback for
    /// unknown resolvers and fully-dead candidate rows) moves, the new
    /// map is still built incrementally but the delta is promoted to
    /// full, because that change's blast radius is unbounded.
    pub fn rebuild_incremental(
        &mut self,
        net: &Internet,
        cdn: &CdnPlatform,
        hints: &RescoreHints,
    ) -> Arc<MapDelta> {
        assert!(!cdn.clusters.is_empty(), "cannot map onto an empty CDN");
        let start = Instant::now();
        if !self.can_rebuild_incrementally(net, cdn, hints) {
            self.rebuild(net, cdn);
            return Arc::new(MapDelta::full(self.total_units()));
        }
        let mut solver = self
            .solver
            .take()
            .expect("checked by can_rebuild_incrementally");

        // Refresh cluster views (rings shared — membership is by server
        // set, which compatible_shape pinned) and find serving-visible
        // cluster changes: a liveness flip or any server (ip, alive)
        // change alters answers for every unit routed there.
        let mut new_clusters = Vec::with_capacity(cdn.clusters.len());
        let mut changed_cluster = vec![false; self.clusters.len()];
        for (i, c) in cdn.clusters.iter().enumerate() {
            let old = &self.clusters[i];
            let servers: Vec<(ServerId, Ipv4Addr, bool)> = c
                .server_ids()
                .map(|s| (s, cdn.server(s).ip, cdn.server(s).alive))
                .collect();
            changed_cluster[i] = c.alive != old.alive || servers != old.servers;
            new_clusters.push(ClusterView {
                id: c.id,
                endpoint: cdn.cluster_endpoint(c.id),
                ns_ip: old.ns_ip,
                capacity: c.capacity,
                alive: c.alive,
                overloaded: old.overloaded,
                servers,
                ring: old.ring.clone(),
            });
        }
        let capacity: Vec<f64> = new_clusters.iter().map(|c| c.capacity).collect();
        let usable: Vec<bool> = new_clusters.iter().map(|c| c.alive).collect();

        // Escape-cluster move: unknown-resolver answers and fully-dead
        // candidate rows fall back to the first live cluster, so its
        // identity changing (or its contents changing) invalidates
        // answers no per-unit delta can name.
        let old_escape = self.clusters.iter().position(|c| c.alive);
        let new_escape = new_clusters.iter().position(|c| c.alive);
        let escape_dirty =
            old_escape != new_escape || new_escape.is_some_and(|c| changed_cluster[c]);

        let workers = self.cfg.worker_count();

        // Rescore hinted rows: refresh their cached vantages, recompute
        // their score rows (in parallel), re-sort their preference rows.
        let ns_rows = normalize_hints(&hints.ns, self.ns_units.len());
        for uid in &ns_rows {
            solver.ns_vantages[uid.index()] = match self.ns_units.units[uid.index()].key {
                UnitKey::Ldns(r) => net.resolver(r).endpoint(),
                UnitKey::Block(_) => unreachable!("NS units are resolver-keyed"),
            };
        }
        if !ns_rows.is_empty() {
            let vantages = &solver.ns_vantages;
            for t in solver.ns.iter_mut() {
                t.scores.rescore_rows(
                    net,
                    &self.ns_units,
                    vantages,
                    &solver.cluster_eps,
                    &solver.targets,
                    &solver.matrix,
                    t.weights,
                    solver.ns_basis,
                    self.cfg.member_cap,
                    &ns_rows,
                    workers,
                );
                for uid in &ns_rows {
                    t.prefs.resort_row(&t.scores, *uid);
                }
            }
        }
        let eu_rows = match &self.eu_units {
            Some(units) => normalize_hints(&hints.eu, units.len()),
            None => Vec::new(),
        };
        if let Some(units) = &self.eu_units {
            for uid in &eu_rows {
                solver.eu_vantages[uid.index()] = eu_unit_vantage(net, &units.units[uid.index()]);
            }
            if !eu_rows.is_empty() {
                let vantages = &solver.eu_vantages;
                for t in solver.eu.iter_mut() {
                    t.scores.rescore_rows(
                        net,
                        units,
                        vantages,
                        &solver.cluster_eps,
                        &solver.targets,
                        &solver.matrix,
                        t.weights,
                        ScoreBasis::UnitVantage,
                        self.cfg.member_cap,
                        &eu_rows,
                        workers,
                    );
                    for uid in &eu_rows {
                        t.prefs.resort_row(&t.scores, *uid);
                    }
                }
            }
        }

        // Re-solve over the cached tables; skip kinds whose inputs are
        // untouched (candidate tables then keep their exact Arcs).
        let lb_changed = capacity != solver.capacity || usable != solver.usable;
        let old_ns_candidates = self.ns_candidates.clone();
        let old_eu_candidates = self.eu_candidates.clone();
        let ns_candidates = if lb_changed || !ns_rows.is_empty() {
            solve_candidates(
                &self.cfg,
                &self.ns_units,
                &solver.ns,
                &capacity,
                &usable,
                &old_ns_candidates,
            )
        } else {
            old_ns_candidates.clone()
        };
        let eu_candidates = match &self.eu_units {
            Some(units) if lb_changed || !eu_rows.is_empty() => solve_candidates(
                &self.cfg,
                units,
                &solver.eu,
                &capacity,
                &usable,
                &old_eu_candidates,
            ),
            _ => old_eu_candidates.clone(),
        };

        // Delta extraction: a unit is dirty when its candidate row
        // changed or any cluster on its (unchanged) row is itself
        // serving-visibly changed.
        let delta = if escape_dirty {
            MapDelta::full(self.total_units())
        } else {
            let ns_dirty = dirty_units(
                &old_ns_candidates,
                &ns_candidates,
                self.ns_units.len(),
                &changed_cluster,
            );
            let eu_dirty = match &self.eu_units {
                Some(units) => dirty_units(
                    &old_eu_candidates,
                    &eu_candidates,
                    units.len(),
                    &changed_cluster,
                ),
                None => Vec::new(),
            };
            let mut eu_prefixes = Vec::new();
            if let Some(units) = &self.eu_units {
                for (u, dirty) in eu_dirty.iter().enumerate() {
                    if *dirty {
                        if let UnitKey::Block(p) = units.units[u].key {
                            eu_prefixes.push(p);
                        }
                    }
                }
            }
            let mut ns_ips = Vec::new();
            for (u, dirty) in ns_dirty.iter().enumerate() {
                if *dirty {
                    if let UnitKey::Ldns(r) = self.ns_units.units[u].key {
                        ns_ips.push(net.resolver(r).ip);
                    }
                }
            }
            MapDelta::from_dirty(&eu_prefixes, &ns_ips)
        };

        // Publish the new state into self.
        self.clusters = new_clusters;
        self.ns_candidates = ns_candidates;
        self.eu_candidates = eu_candidates;
        solver.capacity = capacity;
        solver.usable = usable;
        self.solver = Some(solver);

        if let Some(t) = &self.telemetry {
            t.record_rebuild(
                false,
                start.elapsed().as_nanos() as u64,
                delta.units_changed() as u64,
            );
        }
        Arc::new(delta)
    }

    /// Whether the cached solver state is still valid for an incremental
    /// pass: present, same deployment shape (cluster ids/addresses and
    /// server ids/ips — liveness and capacity may differ), same topology
    /// cardinalities, and no hinted unit touching a ping-target block
    /// (whose access latency feeds the shared matrix).
    fn can_rebuild_incrementally(
        &self,
        net: &Internet,
        cdn: &CdnPlatform,
        hints: &RescoreHints,
    ) -> bool {
        let Some(solver) = &self.solver else {
            return false;
        };
        if solver.n_blocks != net.blocks.len() || solver.n_resolvers != net.resolvers.len() {
            return false;
        }
        if cdn.clusters.len() != self.clusters.len() {
            return false;
        }
        for (view, c) in self.clusters.iter().zip(&cdn.clusters) {
            if view.id != c.id || view.ns_ip != Ipv4Addr::from(c.prefix.addr() | 2) {
                return false;
            }
            let same_servers = view.servers.len() == c.server_ids().count()
                && view
                    .servers
                    .iter()
                    .zip(c.server_ids())
                    .all(|((sid, ip, _), s)| *sid == s && *ip == cdn.server(s).ip);
            if !same_servers {
                return false;
            }
        }
        if let Some(units) = &self.eu_units {
            let hits_target = hints.eu.iter().any(|uid| {
                units.units.get(uid.index()).is_some_and(|info| {
                    info.members
                        .iter()
                        .any(|b| solver.target_block_idx.binary_search(&b.index()).is_ok())
                })
            });
            if hits_target {
                return false;
            }
        }
        true
    }

    /// A serve-plane copy for snapshot publication: every heavy table
    /// (units, candidate tables, rings, catalog, lookup maps) is
    /// `Arc`-shared with `self`, so the control plane keeps rebuilding
    /// its original — solver cache included — while shards serve this
    /// clone. Runtime counters start fresh; telemetry re-attaches to the
    /// same registry (registration is idempotent and cumulative).
    pub fn clone_for_publish(&self) -> MappingSystem {
        MappingSystem {
            cfg: self.cfg.clone(),
            suffix: self.suffix.clone(),
            top_ip: self.top_ip,
            catalog: self.catalog.clone(),
            clusters: self.clusters.clone(),
            ns_by_ip: self.ns_by_ip.clone(),
            ns_units: self.ns_units.clone(),
            ns_candidates: self.ns_candidates.clone(),
            ldns_by_ip: self.ldns_by_ip.clone(),
            eu_units: self.eu_units.clone(),
            eu_candidates: self.eu_candidates.clone(),
            rr_counter: AtomicU64::new(0),
            stats: self.stats.clone(),
            telemetry: self.telemetry.as_ref().map(|t| {
                MappingTelemetry::new(
                    t.registry().clone(),
                    self.ns_units.len(),
                    self.eu_units.as_ref().map(|u| u.len()).unwrap_or(0),
                )
            }),
            solver: None,
        }
    }

    /// Runs measurement → scoring → load balancing and returns the
    /// computed tables plus the solver cache the incremental path reuses.
    fn compute(net: &Internet, cdn: &CdnPlatform, cfg: &MappingConfig) -> ComputedMap {
        // Cluster views with local-LB rings.
        let mut clusters = Vec::with_capacity(cdn.clusters.len());
        let mut ns_by_ip = HashMap::new();
        for c in &cdn.clusters {
            let ns_ip = Ipv4Addr::from(c.prefix.addr() | 2);
            let server_ids: Vec<ServerId> = c.server_ids().collect();
            let servers: Vec<(ServerId, Ipv4Addr, bool)> = server_ids
                .iter()
                .map(|s| (*s, cdn.server(*s).ip, cdn.server(*s).alive))
                .collect();
            ns_by_ip.insert(ns_ip, clusters.len());
            clusters.push(ClusterView {
                id: c.id,
                endpoint: cdn.cluster_endpoint(c.id),
                ns_ip,
                capacity: c.capacity,
                alive: c.alive,
                overloaded: false,
                servers,
                ring: Arc::new(ConsistentRing::new(&server_ids, cfg.ring_vnodes)),
            });
        }

        // Measurement component.
        let targets = PingTargets::select(net, cfg.max_ping_targets, cfg.target_cover_miles);
        let cluster_eps: Vec<Endpoint> = clusters.iter().map(|c| c.endpoint).collect();
        let matrix = PingMatrix::measure(net, &cluster_eps, &targets);
        let capacity: Vec<f64> = clusters.iter().map(|c| c.capacity).collect();
        let usable: Vec<bool> = clusters.iter().map(|c| c.alive).collect();
        let workers = cfg.worker_count();

        // Per-class score + preference tables and their candidate rows.
        // One shared table serves every class when the ablation disables
        // per-class scoring (§2.2); the scoring pass is chunked across
        // `workers` threads with a deterministic merge either way.
        let build_tables = |units: &MapUnits,
                            vantages: &[Endpoint],
                            basis: ScoreBasis|
         -> (Vec<ClassTables>, Candidates) {
            let mut tables: Vec<ClassTables> = Vec::new();
            let mut cands: Vec<Arc<CandidateTable>> = Vec::new();
            if !cfg.per_class_scoring {
                let scores = ScoreTable::build_parallel(
                    net,
                    units,
                    vantages,
                    &cluster_eps,
                    &targets,
                    &matrix,
                    cfg.weights,
                    basis,
                    cfg.member_cap,
                    workers,
                );
                let prefs = PreferenceTable::build(&scores);
                let assignment =
                    assign_with_prefs(cfg.algorithm, units, &scores, &prefs, &capacity, &usable);
                let table = Arc::new(CandidateTable::build(
                    units,
                    &prefs,
                    &assignment,
                    cfg.candidates_per_unit,
                ));
                tables.push(ClassTables {
                    weights: cfg.weights,
                    scores,
                    prefs,
                });
                return (tables, [table.clone(), table.clone(), table]);
            }
            for class in TrafficClass::ALL {
                debug_assert_eq!(class_slot(class), tables.len(), "slot order");
                let weights = ScoringWeights::for_class(class);
                let scores = ScoreTable::build_parallel(
                    net,
                    units,
                    vantages,
                    &cluster_eps,
                    &targets,
                    &matrix,
                    weights,
                    basis,
                    cfg.member_cap,
                    workers,
                );
                let prefs = PreferenceTable::build(&scores);
                let assignment =
                    assign_with_prefs(cfg.algorithm, units, &scores, &prefs, &capacity, &usable);
                cands.push(Arc::new(CandidateTable::build(
                    units,
                    &prefs,
                    &assignment,
                    cfg.candidates_per_unit,
                )));
                tables.push(ClassTables {
                    weights,
                    scores,
                    prefs,
                });
            }
            let candidates: Candidates = [cands[0].clone(), cands[1].clone(), cands[2].clone()];
            (tables, candidates)
        };

        // NS-side units (always present: non-ECS queries need them).
        let ns_units = Arc::new(MapUnits::ldns_units(net));
        let ns_vantages: Vec<Endpoint> = ns_units
            .units
            .iter()
            .map(|u| match u.key {
                UnitKey::Ldns(r) => net.resolver(r).endpoint(),
                UnitKey::Block(_) => unreachable!("ldns_units yields Ldns keys"),
            })
            .collect();
        let ns_basis = match cfg.policy {
            MappingPolicy::ClientAwareNs => ScoreBasis::MemberClients,
            _ => ScoreBasis::UnitVantage,
        };
        let (ns_tables, ns_candidates) = build_tables(&ns_units, &ns_vantages, ns_basis);
        let ldns_by_ip: HashMap<Ipv4Addr, UnitId> = ns_units
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| match u.key {
                UnitKey::Ldns(r) => (net.resolver(r).ip, UnitId(i as u32)),
                UnitKey::Block(_) => unreachable!(),
            })
            .collect();

        // End-user units when the policy calls for them.
        let (eu_units, eu_tables, eu_candidates, eu_vantages) = match cfg.policy {
            MappingPolicy::EndUser {
                prefix_len,
                bgp_aggregate,
            } => {
                let units = Arc::new(MapUnits::block_units(net, prefix_len, bgp_aggregate));
                let vantages: Vec<Endpoint> = units
                    .units
                    .iter()
                    .map(|u| eu_unit_vantage(net, u))
                    .collect();
                let (tables, candidates) = build_tables(&units, &vantages, ScoreBasis::UnitVantage);
                (Some(units), tables, candidates, vantages)
            }
            _ => (None, Vec::new(), empty_candidates(), Vec::new()),
        };

        let mut target_block_idx: Vec<usize> =
            targets.target_blocks.iter().map(|b| b.index()).collect();
        target_block_idx.sort_unstable();
        let solver = Box::new(SolverState {
            targets,
            matrix,
            cluster_eps,
            capacity,
            usable,
            ns_basis,
            ns_vantages,
            eu_vantages,
            ns: ns_tables,
            eu: eu_tables,
            target_block_idx,
            n_blocks: net.blocks.len(),
            n_resolvers: net.resolvers.len(),
        });

        ComputedMap {
            clusters,
            ns_by_ip: Arc::new(ns_by_ip),
            ns_units,
            ns_candidates,
            ldns_by_ip: Arc::new(ldns_by_ip),
            eu_units,
            eu_candidates,
            solver,
        }
    }

    /// The top-level authoritative server's IP.
    pub fn top_level_ip(&self) -> Ipv4Addr {
        self.top_ip
    }

    /// The LDNS-discovery name (`whoami.<suffix>`, §3.1's
    /// `whoami.akamai.net` analogue).
    pub fn whoami_name(&self) -> DnsName {
        self.suffix.child("whoami").expect("valid literal label")
    }

    /// The NS-based mapping units (always present).
    pub fn ns_units(&self) -> &MapUnits {
        &self.ns_units
    }

    /// The end-user mapping units, when the policy builds them.
    pub fn eu_units(&self) -> Option<&MapUnits> {
        self.eu_units.as_deref()
    }

    /// The configured policy.
    pub fn policy(&self) -> MappingPolicy {
        self.cfg.policy
    }

    /// Every authoritative IP this system answers on.
    pub fn ns_ips(&self) -> Vec<Ipv4Addr> {
        let mut out = vec![self.top_ip];
        out.extend(self.clusters.iter().map(|c| c.ns_ip));
        out
    }

    /// True when `ip` is one of this system's name servers.
    pub fn is_mapping_server(&self, ip: Ipv4Addr) -> bool {
        ip == self.top_ip || self.ns_by_ip.contains_key(&ip)
    }

    /// Re-reads liveness from the CDN platform (the paper's real-time
    /// liveness feed into load balancing).
    pub fn refresh_liveness(&mut self, cdn: &CdnPlatform) {
        for view in &mut self.clusters {
            let c = cdn.cluster(view.id);
            view.alive = c.alive;
            for (sid, _, alive) in &mut view.servers {
                *alive = cdn.server(*sid).alive;
            }
        }
    }

    /// Marks a cluster overloaded (or clears the mark) — the load
    /// feedback half of the health filter. An overloaded cluster is
    /// removed from candidate rows at serve time exactly like a dead
    /// one, except the widening fallback prefers a ranked overloaded
    /// cluster over leaving the ranking entirely. Returns false when
    /// `id` is not in this map. Like a liveness flip, the change only
    /// reaches cached authoritative answers once a new snapshot is
    /// published.
    pub fn set_cluster_overloaded(&mut self, id: ClusterId, overloaded: bool) -> bool {
        match self.clusters.iter_mut().find(|c| c.id == id) {
            Some(c) => {
                c.overloaded = overloaded;
                true
            }
            None => false,
        }
    }

    /// True when `id` is currently marked overloaded.
    pub fn cluster_overloaded(&self, id: ClusterId) -> bool {
        self.clusters.iter().any(|c| c.id == id && c.overloaded)
    }

    /// The ranked candidates that are actually servable — alive and not
    /// overloaded — in rank order, with their walk depth. Scoring and
    /// ranking happened at map-build time; this is the serve-time half
    /// of filter-then-score, and when every cluster is healthy it is the
    /// identity on the row.
    fn filter_candidates<'a>(
        &'a self,
        candidates: &'a [u32],
    ) -> impl Iterator<Item = (usize, usize)> + 'a {
        candidates.iter().enumerate().filter_map(|(depth, c)| {
            self.clusters
                .get(*c as usize)
                .filter(|v| v.alive && !v.overloaded)
                .map(|_| (depth, *c as usize))
        })
    }

    /// Filter-then-score serving pick: the first healthy cluster from a
    /// unit's ranked candidates, then a widening fallback chain when the
    /// filter empties the row — a ranked-but-overloaded cluster before
    /// abandoning the ranking, then any healthy cluster, finally any
    /// live one (overload beats outage, matching the local LB's
    /// server-level rule). The walk depth (primary / ranked alternate /
    /// overloaded / any-live escape) is recorded when telemetry is
    /// attached.
    fn pick_live(&self, candidates: &[u32]) -> Option<usize> {
        if let Some((depth, c)) = self.filter_candidates(candidates).next() {
            if let Some(t) = &self.telemetry {
                t.count_fallback(Some(depth));
            }
            return Some(c);
        }
        // Every healthy candidate was filtered away; a ranked overloaded
        // cluster still beats an off-ranking answer.
        if let Some(c) = candidates
            .iter()
            .map(|c| *c as usize)
            .find(|c| self.clusters[*c].alive)
        {
            if let Some(t) = &self.telemetry {
                t.count_fallback_overloaded();
            }
            return Some(c);
        }
        let escape = self.escape_cluster();
        if let (Some(t), Some(_)) = (&self.telemetry, escape) {
            t.count_fallback(None);
        }
        escape
    }

    /// The escape cluster for answers with no usable ranking: the first
    /// healthy cluster, or the first live one when every live cluster is
    /// overloaded.
    fn escape_cluster(&self) -> Option<usize> {
        self.clusters
            .iter()
            .position(|c| c.alive && !c.overloaded)
            .or_else(|| self.clusters.iter().position(|c| c.alive))
    }

    /// The cluster index for an LDNS (NS-based path), under the scoring
    /// of the given traffic class.
    fn cluster_for_ldns(&self, ldns_ip: Ipv4Addr, class: TrafficClass) -> Option<usize> {
        match self.ldns_by_ip.get(&ldns_ip) {
            Some(u) => {
                if let Some(t) = &self.telemetry {
                    t.count_ns_unit(u.index());
                }
                self.pick_live(self.ns_candidates[class_slot(class)].row(u.index()))
            }
            None => self.escape_cluster(),
        }
    }

    /// The cluster index for a client block (end-user path), with the
    /// scope length the answer is valid for.
    fn cluster_for_block(&self, client_block: Prefix, class: TrafficClass) -> Option<(usize, u8)> {
        let units = self.eu_units.as_ref()?;
        let unit = units.unit_for_block24(client_block)?;
        if let Some(t) = &self.telemetry {
            t.count_eu_unit(unit.index());
        }
        let cluster = self.pick_live(self.eu_candidates[class_slot(class)].row(unit.index()))?;
        let unit_len = match units.unit(unit).key {
            UnitKey::Block(p) => p.len(),
            UnitKey::Ldns(_) => 24,
        };
        // Answer at unit granularity, but never coarser than the scope
        // floor (Fig 4's /20) and never finer than the /24 the query
        // carries.
        Some((cluster, unit_len.clamp(self.cfg.scope_floor.min(24), 24)))
    }

    /// Public inspection helper: a /24 client block's ranked candidate
    /// clusters, best first, *before* any serve-time health filtering
    /// (None when the block is unknown or the policy has no EU units).
    /// Equivalence tests walk this row themselves to model unfiltered
    /// selection.
    pub fn candidate_clusters_for_block(
        &self,
        block: Prefix,
        class: TrafficClass,
    ) -> Option<Vec<ClusterId>> {
        let units = self.eu_units.as_ref()?;
        let unit = units.unit_for_block24(block.truncate(24))?;
        Some(
            self.eu_candidates[class_slot(class)]
                .row(unit.index())
                .iter()
                .map(|c| self.clusters[*c as usize].id)
                .collect(),
        )
    }

    /// Public inspection helper: an LDNS's ranked candidate clusters,
    /// best first, before any serve-time health filtering (None when the
    /// resolver is unknown).
    pub fn candidate_clusters_for_ldns(
        &self,
        ldns_ip: Ipv4Addr,
        class: TrafficClass,
    ) -> Option<Vec<ClusterId>> {
        let u = self.ldns_by_ip.get(&ldns_ip)?;
        Some(
            self.ns_candidates[class_slot(class)]
                .row(u.index())
                .iter()
                .map(|c| self.clusters[*c as usize].id)
                .collect(),
        )
    }

    /// Public inspection helper: the cluster end-user mapping would pick
    /// for a /24 client block (None when the block is unknown or the
    /// policy has no EU units).
    pub fn assigned_cluster_for_block(&self, block: Prefix) -> Option<ClusterId> {
        self.assigned_cluster_for_block_class(block, TrafficClass::Web)
    }

    /// Like [`Self::assigned_cluster_for_block`] for a specific traffic
    /// class.
    pub fn assigned_cluster_for_block_class(
        &self,
        block: Prefix,
        class: TrafficClass,
    ) -> Option<ClusterId> {
        self.cluster_for_block(block.truncate(24), class)
            .map(|(c, _)| self.clusters[c].id)
    }

    /// Public inspection helper: the cluster NS-based mapping picks for an
    /// LDNS.
    pub fn assigned_cluster_for_ldns(&self, ldns_ip: Ipv4Addr) -> Option<ClusterId> {
        self.assigned_cluster_for_ldns_class(ldns_ip, TrafficClass::Web)
    }

    /// Like [`Self::assigned_cluster_for_ldns`] for a specific traffic
    /// class.
    pub fn assigned_cluster_for_ldns_class(
        &self,
        ldns_ip: Ipv4Addr,
        class: TrafficClass,
    ) -> Option<ClusterId> {
        self.cluster_for_ldns(ldns_ip, class)
            .map(|c| self.clusters[c].id)
    }

    /// Handles one authoritative query arriving at `server_ip`, updating
    /// the runtime counters. Single-owner entry point; the serving shards
    /// use the lock-free [`MappingSystem::answer`] instead and keep their
    /// own statistics.
    pub fn handle(&mut self, server_ip: Ipv4Addr, query: &Message, ctx: &QueryContext) -> Message {
        self.stats.queries += 1;
        if query.ecs().is_some() {
            self.stats.ecs_queries += 1;
        }
        if let Some(q) = query.questions.first() {
            if q.name.is_within(&self.suffix) && q.name != self.whoami_name() {
                if let Some(idx) = self.catalog.by_cdn_name(&q.name).map(|(i, _)| i) {
                    if server_ip == self.top_ip {
                        self.stats.top_level_queries += 1;
                    } else if self.ns_by_ip.contains_key(&server_ip) {
                        self.stats.a_queries += 1;
                        *self
                            .stats
                            .per_domain_ldns
                            .entry((idx, ctx.resolver_ip))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        self.answer(server_ip, query, ctx)
    }

    /// Answers one authoritative query arriving at `server_ip` without
    /// touching any counters: the pure serving path, callable through a
    /// shared reference from many threads at once (the only interior
    /// mutation is the relaxed round-robin rotation).
    pub fn answer(&self, server_ip: Ipv4Addr, query: &Message, ctx: &QueryContext) -> Message {
        let question = match query.questions.first() {
            Some(q) => q.clone(),
            None => {
                self.note(AnswerPath::Error);
                return Message::response_to(query, Rcode::FormErr);
            }
        };
        if !question.name.is_within(&self.suffix) {
            self.note(AnswerPath::Error);
            return Message::response_to(query, Rcode::Refused);
        }
        // The NetSession LDNS-discovery probe (§3.1): `whoami.<suffix>`
        // answers with the unicast IP of the querying resolver, letting a
        // client learn which LDNS serves it. TTL 0: never cacheable.
        if question.name == self.whoami_name() {
            self.note(AnswerPath::Whoami);
            let mut resp = Message::response_to(query, Rcode::NoError);
            resp.answers
                .push(Record::a(question.name.clone(), 0, ctx.resolver_ip));
            resp.answers.push(Record {
                name: question.name,
                ttl: 0,
                rdata: eum_dns::RData::Txt(format!("resolver={}", ctx.resolver_ip)),
            });
            return resp;
        }
        let domain = match self.catalog.by_cdn_name(&question.name) {
            Some((idx, d)) => (idx, d.ttl_s, d.class),
            None => {
                self.note(AnswerPath::Error);
                let mut resp = Message::response_to(query, Rcode::NxDomain);
                if let Some(ecs) = query.ecs() {
                    resp.set_opt(OptData::with_ecs(EcsOption::response(ecs, 0)));
                }
                return resp;
            }
        };

        if server_ip == self.top_ip {
            return self.handle_top_level(query, &question.name, domain.2, ctx);
        }
        match self.ns_by_ip.get(&server_ip).copied() {
            Some(_) => self.handle_low_level(query, &question.name, domain, ctx),
            None => {
                self.note(AnswerPath::Error);
                Message::response_to(query, Rcode::Refused)
            }
        }
    }

    /// Records an answer-path count when telemetry is attached.
    fn note(&self, path: AnswerPath) {
        if let Some(t) = &self.telemetry {
            t.count_answer(path);
        }
    }

    /// Top-level: delegate the domain toward a cluster close to the LDNS.
    fn handle_top_level(
        &self,
        query: &Message,
        qname: &DnsName,
        class: TrafficClass,
        ctx: &QueryContext,
    ) -> Message {
        let mut resp = Message::response_to(query, Rcode::NoError);
        resp.flags.aa = false;
        let cluster = match self.cluster_for_ldns(ctx.resolver_ip, class) {
            Some(c) => c,
            None => {
                self.note(AnswerPath::Error);
                return Message::response_to(query, Rcode::ServFail);
            }
        };
        self.note(AnswerPath::TopLevel);
        let view = &self.clusters[cluster];
        let ns_name = qname
            .child(&format!("n{}", view.id.0))
            .expect("valid generated label");
        resp.authorities.push(Record::ns(
            qname.clone(),
            self.cfg.ns_ttl_s,
            ns_name.clone(),
        ));
        resp.additionals
            .push(Record::a(ns_name, self.cfg.ns_ttl_s, view.ns_ip));
        // Delegations are per-LDNS; if ECS was present, scope 0 keeps the
        // referral cacheable for all the LDNS's clients.
        if let Some(ecs) = query.ecs() {
            resp.set_opt(OptData::with_ecs(EcsOption::response(ecs, 0)));
        }
        resp
    }

    /// Low-level: answer A with local-LB-chosen servers of the unit's
    /// assigned cluster.
    fn handle_low_level(
        &self,
        query: &Message,
        qname: &DnsName,
        (domain_idx, ttl_s, class): (u32, u32, TrafficClass),
        ctx: &QueryContext,
    ) -> Message {
        // End-user path: ECS present and policy consumes it.
        let ecs_path = match (self.cfg.policy.uses_ecs(), query.ecs()) {
            (true, Some(ecs)) => {
                let block = ecs.source_block().truncate(24);
                self.cluster_for_block(block, class)
                    .map(|(c, scope)| (c, scope, *ecs))
            }
            _ => None,
        };
        let (cluster, scope_for_response) = match ecs_path {
            Some((c, scope, ecs)) => {
                self.note(AnswerPath::EndUser);
                (c, Some((ecs, scope.min(ecs.source_prefix))))
            }
            None => {
                let c = match self.cluster_for_ldns(ctx.resolver_ip, class) {
                    Some(c) => c,
                    None => {
                        self.note(AnswerPath::Error);
                        return Message::response_to(query, Rcode::ServFail);
                    }
                };
                self.note(AnswerPath::Ns);
                // NS-derived answers are client-independent: scope 0.
                (c, query.ecs().map(|e| (*e, 0)))
            }
        };

        let view = &self.clusters[cluster];
        let alive = |s: ServerId| {
            view.servers
                .iter()
                .find(|(sid, _, _)| *sid == s)
                .map(|(_, _, alive)| *alive)
                .unwrap_or(false)
        };
        let servers = match self.cfg.local_lb {
            LocalLbPolicy::ConsistentHash => {
                view.ring
                    .pick(domain_key(domain_idx), self.cfg.servers_per_answer, alive)
            }
            LocalLbPolicy::RoundRobin => {
                // Per-query rotation keyed by an atomic tick: load is
                // spread evenly but each domain touches every server.
                if let Some(t) = &self.telemetry {
                    t.count_rr_rotation();
                }
                let tick = self
                    .rr_counter
                    // relaxed-ok: round-robin tick; only uniqueness of the
                    // draw matters, not ordering against other memory
                    .fetch_add(1, Ordering::Relaxed)
                    .wrapping_add(1);
                view.ring.pick(
                    domain_key(domain_idx) ^ tick.wrapping_mul(0x9E37_79B9),
                    self.cfg.servers_per_answer,
                    alive,
                )
            }
        };
        let mut resp = Message::response_to(query, Rcode::NoError);
        for s in servers {
            let ip = view
                .servers
                .iter()
                .find(|(sid, _, _)| *sid == s)
                .map(|(_, ip, _)| *ip)
                .expect("ring servers belong to the cluster");
            resp.answers.push(Record::a(qname.clone(), ttl_s, ip));
        }
        if resp.answers.is_empty() {
            return Message::response_to(query, Rcode::ServFail);
        }
        if let Some((ecs, scope)) = scope_for_response {
            resp.set_opt(OptData::with_ecs(EcsOption::response(&ecs, scope)));
        }
        resp
    }
}

/// Deduped, ascending, in-range rescore rows from a (possibly messy)
/// hint list.
fn normalize_hints(hints: &[UnitId], n_units: usize) -> Vec<UnitId> {
    let mut rows: Vec<UnitId> = hints
        .iter()
        .copied()
        .filter(|u| u.index() < n_units)
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// An end-user unit's scoring vantage: its centroid with the mean member
/// access latency, carrying the first member's addressing/AS identity.
fn eu_unit_vantage(net: &Internet, u: &MapUnitInfo) -> Endpoint {
    let access = u
        .members
        .iter()
        .map(|b| net.block(*b).access_ms)
        .sum::<f64>()
        / u.members.len().max(1) as f64;
    let b0 = net.block(u.members[0]);
    Endpoint::client(b0.client_ip(), u.centroid, b0.country, b0.asn, access)
}

/// Re-solves every class over its cached score/preference tables and
/// rebuilds the candidate rows, keeping the previous `Arc` whenever the
/// contents come out identical (generation-over-generation structural
/// sharing, and the cheap "nothing changed" signal for delta extraction).
fn solve_candidates(
    cfg: &MappingConfig,
    units: &MapUnits,
    tables: &[ClassTables],
    capacity: &[f64],
    usable: &[bool],
    old: &Candidates,
) -> Candidates {
    let solve_one = |t: &ClassTables, prev: &Arc<CandidateTable>| -> Arc<CandidateTable> {
        let assignment =
            assign_with_prefs(cfg.algorithm, units, &t.scores, &t.prefs, capacity, usable);
        let built = CandidateTable::build(units, &t.prefs, &assignment, cfg.candidates_per_unit);
        if built == **prev {
            prev.clone()
        } else {
            Arc::new(built)
        }
    };
    match tables {
        // Per-class scoring off: one table serves every slot.
        [t] => {
            let arc = solve_one(t, &old[0]);
            [arc.clone(), arc.clone(), arc]
        }
        [w, v, d] => [
            solve_one(w, &old[0]),
            solve_one(v, &old[1]),
            solve_one(d, &old[2]),
        ],
        _ => unreachable!("class tables come in sets of 1 or 3"),
    }
}

/// Per-unit dirty flags across a candidate-table swap: a unit is dirty
/// when any class's candidate row changed, or any cluster on its row is
/// itself serving-visibly changed (liveness/server churn).
fn dirty_units(
    old: &Candidates,
    new: &Candidates,
    n_units: usize,
    changed_cluster: &[bool],
) -> Vec<bool> {
    let mut dirty = vec![false; n_units];
    for (o, n) in old.iter().zip(new.iter()) {
        let rows_equal = Arc::ptr_eq(o, n);
        for (u, d) in dirty.iter_mut().enumerate() {
            if *d {
                continue;
            }
            let row = n.row(u);
            if (!rows_equal && o.row(u) != row) || row.iter().any(|c| changed_cluster[*c as usize])
            {
                *d = true;
            }
        }
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_cdn::{deployment_universe, CatalogConfig, DeployConfig};
    use eum_dns::message::Question;
    use eum_dns::name::name;
    use eum_netmodel::InternetConfig;

    struct World {
        net: Internet,
        cdn: CdnPlatform,
        catalog: ContentCatalog,
        map: MappingSystem,
    }

    fn world(policy: MappingPolicy) -> World {
        let mut net = Internet::generate(InternetConfig::tiny(0xAB));
        let sites = deployment_universe(0xAB, 16);
        let cdn = CdnPlatform::deploy(
            &mut net,
            &sites,
            &DeployConfig {
                servers_per_cluster: 4,
                cache_objects_per_server: 256,
                cluster_capacity: f64::INFINITY,
            },
        );
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(0xAB));
        let map = MappingSystem::build(
            &mut net,
            &cdn,
            &catalog,
            name("cdn.example"),
            MappingConfig {
                policy,
                max_ping_targets: 50,
                ..MappingConfig::default()
            },
        );
        World {
            net,
            cdn,
            catalog,
            map,
        }
    }

    fn ctx(resolver_ip: Ipv4Addr) -> QueryContext {
        QueryContext {
            resolver_ip,
            now_ms: 0,
        }
    }

    #[test]
    fn top_level_delegates_with_glue() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        let q = Message::query(1, Question::a(name("e0.cdn.example")), None);
        let top = w.map.top_level_ip();
        let resp = w.map.handle(top, &q, &ctx(ldns));
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.additionals.len(), 1);
        assert!(w.map.stats.top_level_queries == 1);
    }

    #[test]
    fn low_level_answers_two_servers_of_one_cluster() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        let low_ip = w.map.ns_ips()[1];
        let q = Message::query(2, Question::a(name("e0.cdn.example")), None);
        let resp = w.map.handle(low_ip, &q, &ctx(ldns));
        let ips = resp.answer_ips();
        assert_eq!(ips.len(), 2);
        // Both servers belong to the same cluster.
        let c0 = w.cdn.server(w.cdn.server_by_ip(ips[0]).unwrap()).cluster;
        let c1 = w.cdn.server(w.cdn.server_by_ip(ips[1]).unwrap()).cluster;
        assert_eq!(c0, c1);
        assert_eq!(resp.answers[0].ttl, w.catalog.domains[0].ttl_s);
    }

    #[test]
    fn same_domain_same_cluster_hits_same_servers() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        let low_ip = w.map.ns_ips()[1];
        let q = Message::query(3, Question::a(name("e1.cdn.example")), None);
        let a = w.map.handle(low_ip, &q, &ctx(ldns)).answer_ips();
        let b = w.map.handle(low_ip, &q, &ctx(ldns)).answer_ips();
        assert_eq!(a, b, "local LB must be stable for cache locality");
    }

    #[test]
    fn ns_based_ignores_ecs_and_answers_scope_zero() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        let low_ip = w.map.ns_ips()[1];
        let client = w.net.blocks[0].client_ip();
        let ecs = EcsOption::query(client, 24);
        let q = Message::query(
            4,
            Question::a(name("e0.cdn.example")),
            Some(OptData::with_ecs(ecs)),
        );
        let resp = w.map.handle(low_ip, &q, &ctx(ldns));
        assert_eq!(resp.ecs().unwrap().scope_prefix, 0);
    }

    #[test]
    fn end_user_uses_ecs_with_narrowed_scope() {
        let mut w = world(MappingPolicy::end_user_default());
        let ldns = w.net.resolvers[0].ip;
        let low_ip = w.map.ns_ips()[1];
        let block = &w.net.blocks[0];
        let ecs = EcsOption::query(block.client_ip(), 24);
        let q = Message::query(
            5,
            Question::a(name("e0.cdn.example")),
            Some(OptData::with_ecs(ecs)),
        );
        let resp = w.map.handle(low_ip, &q, &ctx(ldns));
        let out = resp.ecs().unwrap();
        assert!(out.scope_prefix > 0, "EU answers must be scoped");
        assert!(out.scope_prefix <= 24, "y ≤ x per §2.1");
        assert!(!resp.answer_ips().is_empty());
        // The answer matches the mapping system's own EU assignment.
        let expect = w.map.assigned_cluster_for_block(block.prefix).unwrap();
        let got = w
            .cdn
            .server(w.cdn.server_by_ip(resp.answer_ips()[0]).unwrap())
            .cluster;
        assert_eq!(got, expect);
    }

    #[test]
    fn end_user_beats_ns_for_distant_public_ldns() {
        // Find a block far from its (public) LDNS; EU must map it closer.
        let w = world(MappingPolicy::end_user_default());
        let candidate = w
            .net
            .blocks
            .iter()
            .filter(|b| {
                let (r, _) = b.ldns[b.ldns.len() - 1];
                w.net.is_public_resolver(r) && b.loc.distance_miles(&w.net.resolver(r).loc) > 2000.0
            })
            .max_by(|a, b| a.demand.partial_cmp(&b.demand).unwrap())
            .cloned();
        let Some(block) = candidate else {
            // Universe too small to contain the pattern — regenerate with
            // another seed rather than asserting vacuously.
            panic!("tiny universe lacks a distant public-resolver client");
        };
        let (rid, _) = block.ldns[block.ldns.len() - 1];
        let ldns_ip = w.net.resolver(rid).ip;
        let eu_cluster = w.map.assigned_cluster_for_block(block.prefix).unwrap();
        let ns_cluster = w.map.assigned_cluster_for_ldns(ldns_ip).unwrap();
        let d_eu = w.cdn.cluster(eu_cluster).loc.distance_miles(&block.loc);
        let d_ns = w.cdn.cluster(ns_cluster).loc.distance_miles(&block.loc);
        assert!(
            d_eu <= d_ns + 1.0,
            "EU mapped {} miles away, NS {} miles",
            d_eu,
            d_ns
        );
    }

    #[test]
    fn unknown_domain_is_nxdomain_and_foreign_zone_refused() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        let top = w.map.top_level_ip();
        let q = Message::query(6, Question::a(name("nope.cdn.example")), None);
        assert_eq!(
            w.map.handle(top, &q, &ctx(ldns)).flags.rcode,
            Rcode::NxDomain
        );
        let q = Message::query(7, Question::a(name("www.other.example")), None);
        assert_eq!(
            w.map.handle(top, &q, &ctx(ldns)).flags.rcode,
            Rcode::Refused
        );
    }

    #[test]
    fn dead_cluster_is_avoided_after_refresh() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        let assigned = w.map.assigned_cluster_for_ldns(ldns).unwrap();
        w.cdn.set_cluster_alive(assigned, false);
        w.map.refresh_liveness(&w.cdn);
        let now = w.map.assigned_cluster_for_ldns(ldns).unwrap();
        assert_ne!(now, assigned, "mapping must fail over from a dead cluster");
        // Revive: assignment returns.
        w.cdn.set_cluster_alive(assigned, true);
        w.map.refresh_liveness(&w.cdn);
        assert_eq!(w.map.assigned_cluster_for_ldns(ldns).unwrap(), assigned);
    }

    #[test]
    fn dead_server_is_not_answered() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        let low_ip = w.map.ns_ips()[1];
        let q = Message::query(8, Question::a(name("e0.cdn.example")), None);
        let first = w.map.handle(low_ip, &q, &ctx(ldns)).answer_ips();
        // Kill the primary server.
        let dead = w.cdn.server_by_ip(first[0]).unwrap();
        w.cdn.servers[dead.index()].alive = false;
        w.map.refresh_liveness(&w.cdn);
        let second = w.map.handle(low_ip, &q, &ctx(ldns)).answer_ips();
        assert!(!second.contains(&first[0]), "dead server still answered");
        assert_eq!(second.len(), 2);
    }

    #[test]
    fn round_robin_local_lb_spreads_across_servers() {
        let mut net = Internet::generate(InternetConfig::tiny(0xAB));
        let sites = deployment_universe(0xAB, 16);
        let cdn = CdnPlatform::deploy(
            &mut net,
            &sites,
            &DeployConfig {
                servers_per_cluster: 4,
                cache_objects_per_server: 256,
                cluster_capacity: f64::INFINITY,
            },
        );
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(0xAB));
        let mut map = MappingSystem::build(
            &mut net,
            &cdn,
            &catalog,
            name("cdn.example"),
            MappingConfig {
                policy: MappingPolicy::NsBased,
                local_lb: LocalLbPolicy::RoundRobin,
                max_ping_targets: 50,
                ..MappingConfig::default()
            },
        );
        let ldns = net.resolvers[0].ip;
        let low_ip = map.ns_ips()[1];
        let mut primaries = std::collections::BTreeSet::new();
        for i in 0..12u16 {
            let q = Message::query(i, Question::a(name("e0.cdn.example")), None);
            let resp = map.handle(low_ip, &q, &ctx(ldns));
            primaries.insert(resp.answer_ips()[0]);
        }
        assert!(
            primaries.len() >= 3,
            "round robin used only {} distinct primaries",
            primaries.len()
        );
    }

    #[test]
    fn per_domain_ldns_counters_accumulate() {
        let mut w = world(MappingPolicy::end_user_default());
        let ldns = w.net.resolvers[0].ip;
        let low_ip = w.map.ns_ips()[1];
        for i in 0..5u16 {
            let q = Message::query(10 + i, Question::a(name("e0.cdn.example")), None);
            let _ = w.map.handle(low_ip, &q, &ctx(ldns));
        }
        assert_eq!(w.map.stats.a_queries, 5);
        assert_eq!(w.map.stats.per_domain_ldns[&(0, ldns)], 5);
    }

    #[test]
    fn rebuild_reacts_to_capacity_changes_and_keeps_stats() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[0].ip;
        // Serve one query so stats are non-zero.
        let q = Message::query(1, Question::a(name("e0.cdn.example")), None);
        let top = w.map.top_level_ip();
        let _ = w.map.handle(top, &q, &ctx(ldns));
        let queries_before = w.map.stats.queries;
        let assigned = w.map.assigned_cluster_for_ldns(ldns).unwrap();

        // Starve the assigned cluster's capacity and refresh the map.
        let total = w.net.total_demand();
        for c in &mut w.cdn.clusters {
            c.capacity = if c.id == assigned {
                total * 1e-6
            } else {
                total
            };
        }
        w.map.rebuild(&w.net, &w.cdn);
        let after = w.map.assigned_cluster_for_ldns(ldns).unwrap();
        assert_ne!(after, assigned, "map refresh must honor new capacities");
        assert_eq!(w.map.stats.queries, queries_before, "stats survive rebuild");
        assert_eq!(w.map.top_level_ip(), top, "NS identity survives rebuild");

        // And the system still answers queries after the refresh.
        let resp = w.map.handle(top, &q, &ctx(ldns));
        assert_eq!(resp.flags.rcode, Rcode::NoError);
    }

    #[test]
    fn traffic_classes_can_map_differently() {
        // §2.2: per-class scoring functions. Video scoring weighs loss
        // far more than latency, so some units land on different clusters
        // than under web scoring.
        let w = world(MappingPolicy::end_user_default());
        let mut differ = 0usize;
        let mut total = 0usize;
        for b in &w.net.blocks {
            let web = w
                .map
                .assigned_cluster_for_block_class(b.prefix, TrafficClass::Web);
            let video = w
                .map
                .assigned_cluster_for_block_class(b.prefix, TrafficClass::Video);
            if let (Some(web), Some(video)) = (web, video) {
                total += 1;
                if web != video {
                    differ += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            differ > 0,
            "video scoring never changed an assignment over {total} blocks"
        );
        // But the classes must not disagree wildly — latency still matters.
        assert!(
            differ * 2 < total,
            "{differ}/{total} blocks differ — scoring looks unstable"
        );
    }

    #[test]
    fn disabling_per_class_scoring_unifies_assignments() {
        let mut net = Internet::generate(InternetConfig::tiny(0xAB));
        let sites = deployment_universe(0xAB, 16);
        let cdn = CdnPlatform::deploy(
            &mut net,
            &sites,
            &DeployConfig {
                servers_per_cluster: 4,
                cache_objects_per_server: 256,
                cluster_capacity: f64::INFINITY,
            },
        );
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(0xAB));
        let map = MappingSystem::build(
            &mut net,
            &cdn,
            &catalog,
            name("cdn.example"),
            MappingConfig {
                per_class_scoring: false,
                max_ping_targets: 50,
                ..MappingConfig::default()
            },
        );
        for b in net.blocks.iter().take(40) {
            let web = map.assigned_cluster_for_block_class(b.prefix, TrafficClass::Web);
            let video = map.assigned_cluster_for_block_class(b.prefix, TrafficClass::Video);
            let dl = map.assigned_cluster_for_block_class(b.prefix, TrafficClass::Download);
            assert_eq!(web, video);
            assert_eq!(web, dl);
        }
    }

    #[test]
    fn whoami_reveals_the_querying_resolver() {
        let mut w = world(MappingPolicy::NsBased);
        let ldns = w.net.resolvers[3].ip;
        let q = Message::query(1, Question::a(w.map.whoami_name()), None);
        for server in [w.map.top_level_ip(), w.map.ns_ips()[1]] {
            let resp = w.map.handle(server, &q, &ctx(ldns));
            assert_eq!(resp.flags.rcode, Rcode::NoError);
            assert_eq!(resp.answer_ips(), vec![ldns]);
            assert_eq!(resp.answers[0].ttl, 0, "whoami must not be cacheable");
        }
    }

    #[test]
    fn unknown_ecs_block_falls_back_to_ns_mapping() {
        let mut w = world(MappingPolicy::end_user_default());
        let ldns = w.net.resolvers[0].ip;
        let low_ip = w.map.ns_ips()[1];
        // A client block that does not exist in the universe.
        let ecs = EcsOption::query("203.0.113.7".parse().unwrap(), 24);
        let q = Message::query(
            9,
            Question::a(name("e0.cdn.example")),
            Some(OptData::with_ecs(ecs)),
        );
        let resp = w.map.handle(low_ip, &q, &ctx(ldns));
        assert!(!resp.answer_ips().is_empty());
        assert_eq!(
            resp.ecs().unwrap().scope_prefix,
            0,
            "fallback answers are global"
        );
    }

    /// Assignments for every block and resolver across all classes — the
    /// full externally-visible mapping surface.
    fn all_assignments(w: &World) -> Vec<Option<ClusterId>> {
        let mut out = Vec::new();
        for class in TrafficClass::ALL {
            for b in &w.net.blocks {
                out.push(w.map.assigned_cluster_for_block_class(b.prefix, class));
            }
            for r in &w.net.resolvers {
                out.push(w.map.assigned_cluster_for_ldns_class(r.ip, class));
            }
        }
        out
    }

    #[test]
    fn incremental_rebuild_matches_full_and_delta_covers_changes() {
        let mut w = world(MappingPolicy::end_user_default());
        let before: Vec<(Prefix, Option<ClusterId>)> = w
            .net
            .blocks
            .iter()
            .map(|b| (b.prefix, w.map.assigned_cluster_for_block(b.prefix)))
            .collect();
        // Kill an assigned cluster that is not the escape (first) cluster,
        // so the delta stays keyed rather than promoting to full.
        let escape = w.cdn.clusters[0].id;
        let victim = before
            .iter()
            .filter_map(|(_, c)| *c)
            .find(|c| *c != escape)
            .expect("some block maps beyond the escape cluster");
        w.cdn.set_cluster_alive(victim, false);

        let delta = w
            .map
            .rebuild_incremental(&w.net, &w.cdn, &RescoreHints::default());
        assert!(!delta.is_full(), "non-escape churn must stay keyed");
        assert!(
            delta.units_changed() > 0,
            "killing an assigned cluster changes units"
        );

        // Bit-identical to a from-scratch rebuild of the same world.
        let incremental = all_assignments(&w);
        let mut reference = w.map.clone_for_publish();
        reference.rebuild(&w.net, &w.cdn);
        std::mem::swap(&mut w.map, &mut reference);
        let full = all_assignments(&w);
        std::mem::swap(&mut w.map, &mut reference);
        assert_eq!(incremental, full, "incremental diverged from full rebuild");

        // Delta soundness: every block whose answer changed is covered.
        for (prefix, old) in &before {
            let now = w.map.assigned_cluster_for_block(*prefix);
            if now != *old {
                assert!(
                    delta.affects_scoped(prefix.truncate(24)),
                    "changed block {prefix} missing from delta"
                );
            }
        }

        // Reviving the escape cluster's competitor via the same path
        // converges back: a second incremental pass equals full again.
        w.cdn.set_cluster_alive(victim, true);
        let delta2 = w
            .map
            .rebuild_incremental(&w.net, &w.cdn, &RescoreHints::default());
        assert!(!delta2.is_full());
        let incremental2 = all_assignments(&w);
        reference.rebuild(&w.net, &w.cdn);
        std::mem::swap(&mut w.map, &mut reference);
        let full2 = all_assignments(&w);
        std::mem::swap(&mut w.map, &mut reference);
        assert_eq!(incremental2, full2);
    }

    #[test]
    fn escape_cluster_churn_promotes_delta_to_full() {
        let mut w = world(MappingPolicy::end_user_default());
        let escape = w.cdn.clusters[0].id;
        w.cdn.set_cluster_alive(escape, false);
        let delta = w
            .map
            .rebuild_incremental(&w.net, &w.cdn, &RescoreHints::default());
        assert!(delta.is_full(), "escape move has unbounded blast radius");
        assert_eq!(delta.units_changed(), w.map.total_units());
    }

    #[test]
    fn shape_change_falls_back_to_full_rebuild() {
        let mut w = world(MappingPolicy::end_user_default());
        // Capacity starvation alone stays incremental…
        let total = w.net.total_demand();
        w.cdn.clusters[3].capacity = total * 1e-6;
        let delta = w
            .map
            .rebuild_incremental(&w.net, &w.cdn, &RescoreHints::default());
        assert!(!delta.is_full());
        let incremental = all_assignments(&w);
        let mut reference = w.map.clone_for_publish();
        reference.rebuild(&w.net, &w.cdn);
        std::mem::swap(&mut w.map, &mut reference);
        let full = all_assignments(&w);
        std::mem::swap(&mut w.map, &mut reference);
        assert_eq!(incremental, full);
        // …but a publish clone (no solver cache) must fall back to full.
        let mut clone = w.map.clone_for_publish();
        let delta = clone.rebuild_incremental(&w.net, &w.cdn, &RescoreHints::default());
        assert!(
            delta.is_full(),
            "missing solver cache requires full rebuild"
        );
    }

    #[test]
    fn telemetry_counts_answer_paths_and_survives_rebuild() {
        let mut w = world(MappingPolicy::end_user_default());
        let registry = Arc::new(Registry::new());
        w.map.attach_telemetry(registry.clone());
        let ldns = w.net.resolvers[0].ip;
        let top = w.map.top_level_ip();
        let low = w.map.ns_ips()[1];

        // One query down each serving path.
        let plain = Message::query(1, Question::a(name("e0.cdn.example")), None);
        let _ = w.map.handle(top, &plain, &ctx(ldns));
        let _ = w.map.handle(low, &plain, &ctx(ldns));
        let ecs = EcsOption::query(w.net.blocks[0].client_ip(), 24);
        let scoped = Message::query(
            2,
            Question::a(name("e0.cdn.example")),
            Some(OptData::with_ecs(ecs)),
        );
        let _ = w.map.handle(low, &scoped, &ctx(ldns));
        let _ = w.map.handle(
            low,
            &Message::query(3, Question::a(w.map.whoami_name()), None),
            &ctx(ldns),
        );
        let _ = w.map.handle(
            top,
            &Message::query(4, Question::a(name("nope.cdn.example")), None),
            &ctx(ldns),
        );

        let by_path = |path: &str| {
            registry
                .counter("eum_mapping_answers_total", "", &[("path", path)])
                .get()
        };
        assert_eq!(by_path("top"), 1);
        assert_eq!(by_path("ns"), 1);
        assert_eq!(by_path("eu"), 1);
        assert_eq!(by_path("whoami"), 1);
        assert_eq!(by_path("error"), 1);

        // Every delegation and A answer walked the liveness ranking once:
        // the top-level referral plus the NS and EU low-level answers.
        let fallbacks: u64 = ["primary", "ranked", "any_live"]
            .iter()
            .map(|r| {
                registry
                    .counter("eum_mapping_fallback_depth_total", "", &[("rank", r)])
                    .get()
            })
            .sum();
        assert_eq!(fallbacks, 3, "top-level referral + NS and EU answers");

        let t = w.map.telemetry().unwrap();
        assert_eq!(t.ns_unit_queries().iter().sum::<u64>(), 2);
        assert_eq!(t.eu_unit_queries().iter().sum::<u64>(), 1);
        t.publish_unit_stats();
        assert_eq!(
            registry
                .gauge("eum_mapping_units_queried", "", &[("kind", "ns")])
                .get(),
            1.0
        );
        assert_eq!(
            registry
                .gauge("eum_mapping_unit_queries_max", "", &[("kind", "eu")])
                .get(),
            1.0
        );

        // Rebuild re-attaches to the same registry; totals keep accumulating.
        w.map.rebuild(&w.net, &w.cdn);
        assert!(w.map.telemetry().is_some(), "rebuild must re-attach");
        let _ = w.map.handle(low, &plain, &ctx(ldns));
        assert_eq!(by_path("ns"), 2, "counters are cumulative across rebuilds");
    }
}
