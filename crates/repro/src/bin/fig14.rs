//! Reproduces Figure 14 of the paper. Pass `--quick` for a smaller world.

use eum_repro::{figures4, rollout_report, Scale};
use eum_sim::Metric;

fn main() {
    let scale = Scale::from_args();
    let r = rollout_report(scale);
    print!(
        "{}",
        figures4::fig_cdf(&r, Metric::MappingDistance, "Figure 14", scale)
    );
}
