//! Benchmarks for the resolver-side serve path: the ECS-partitioned
//! answer cache, the timer wheel under it, and a full cached `resolve`
//! through [`eum_ldns::Ldns`] — the per-downstream-query cost every
//! fleet replay pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eum_authd::ClientTransport;
use eum_dns::name::name;
use eum_dns::{decode_message, encode_message, Message, RData, Rcode, Record, RrType};
use eum_geo::Prefix;
use eum_ldns::{
    AnswerBody, CacheEntry, EcsPolicy, Ldns, LdnsCacheConfig, LdnsConfig, ResolverCache, TimerWheel,
};
use std::hint::black_box;
use std::io;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

const TOP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const LOW: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 2);

/// A /24-scoped positive entry whose block is derived from `i`.
fn scoped_entry(i: u32, now: Instant) -> (Prefix, CacheEntry) {
    let block = Prefix::new(0x0B00_0000 | (i << 8), 24);
    let entry = CacheEntry::new(
        AnswerBody::Addresses(vec![Ipv4Addr::from(0xCB00_7100 | i)]),
        24,
        3_600,
        now,
    );
    (block, entry)
}

/// A cache holding `n` distinct /24-scoped entries for one popular name —
/// the post-roll-out steady state for a hot (domain, LDNS) pair.
fn filled_cache(n: u32, now: Instant) -> ResolverCache {
    let mut c = ResolverCache::new(LdnsCacheConfig::default(), now);
    for i in 0..n {
        let (block, entry) = scoped_entry(i, now);
        c.insert(name("popular.cdn.example"), RrType::A, Some(block), entry);
    }
    c
}

fn bench_cache(c: &mut Criterion) {
    let t0 = Instant::now();
    let mut group = c.benchmark_group("ldns_cache_lookup");
    for entries in [64u32, 1_024, 16_384] {
        let mut cache = filled_cache(entries, t0);
        let client = Ipv4Addr::from(0x0B00_0000 | ((entries / 2) << 8) | 7);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| {
                cache
                    .lookup(
                        &name("popular.cdn.example"),
                        RrType::A,
                        black_box(client),
                        24,
                        t0,
                    )
                    .is_some()
            })
        });
    }
    group.finish();

    // Flat-named twin of the 1024-entry case for scripts/bench_record.sh.
    c.bench_function("ldns_cache_lookup_scoped_hit", |b| {
        let mut cache = filled_cache(1_024, t0);
        let client = Ipv4Addr::from(0x0B00_0000 | (512 << 8) | 7);
        b.iter(|| {
            cache
                .lookup(
                    &name("popular.cdn.example"),
                    RrType::A,
                    black_box(client),
                    24,
                    t0,
                )
                .is_some()
        })
    });

    c.bench_function("ldns_cache_insert_scoped", |b| {
        let mut cache = filled_cache(1_024, t0);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let (block, entry) = scoped_entry(i % 4_096, t0);
            cache.insert(name("popular.cdn.example"), RrType::A, Some(block), entry)
        })
    });
}

fn bench_wheel(c: &mut Criterion) {
    // Steady state: every iteration arms one deadline 30 s out and moves
    // the cursor one second, reaping the entry armed 30 iterations ago —
    // the per-second cost of TTL churn at one expiry per second.
    c.bench_function("ldns_wheel_insert_advance_steady", |b| {
        let t0 = Instant::now();
        let mut wheel: TimerWheel<u64> = TimerWheel::new(t0);
        let mut scratch = Vec::new();
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            wheel.insert(t0 + Duration::from_secs(tick + 30), tick);
            scratch.clear();
            wheel.advance(t0 + Duration::from_secs(tick), &mut scratch);
            black_box(scratch.len())
        })
    });
}

/// An upstream answering the two-level hierarchy from static tables: the
/// top level refers to `LOW` with glue, the low level answers one A.
struct StaticUpstream;

impl ClientTransport for StaticUpstream {
    fn exchange(
        &mut self,
        _shard: usize,
        server_ip: Ipv4Addr,
        _resolver_ip: Ipv4Addr,
        payload: &[u8],
        _timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        let q = decode_message(payload).expect("well-formed query");
        let qname = q.questions[0].name.clone();
        let mut resp = Message::response_to(&q, Rcode::NoError);
        if server_ip == TOP {
            resp.authorities.push(Record {
                name: qname,
                ttl: 86_400,
                rdata: RData::Ns(name("ns1.cdn.example")),
            });
            resp.additionals.push(Record {
                name: name("ns1.cdn.example"),
                ttl: 86_400,
                rdata: RData::A(LOW),
            });
        } else {
            resp.answers.push(Record {
                name: qname,
                ttl: 3_600,
                rdata: RData::A(Ipv4Addr::new(203, 0, 113, 7)),
            });
        }
        Ok(encode_message(&resp))
    }

    fn num_shards(&self) -> usize {
        1
    }
}

fn bench_resolve(c: &mut Criterion) {
    // The downstream fast path: a warm resolver answering from cache
    // (delegation + answer both hit, zero upstream exchanges).
    c.bench_function("ldns_cached_resolve_hit", |b| {
        let t0 = Instant::now();
        let mut ldns = Ldns::new(
            LdnsConfig::new(Ipv4Addr::new(192, 0, 2, 53), EcsPolicy::Off),
            t0,
        );
        let mut upstream = StaticUpstream;
        let qname = name("e0.cdn.example");
        let client = Ipv4Addr::new(10, 0, 0, 1);
        let cold = ldns.resolve(&mut upstream, 0, TOP, &qname, client, t0);
        assert_eq!(cold.rcode, Rcode::NoError);
        assert_eq!(cold.upstream_queries, 2);
        b.iter(|| {
            let r = ldns.resolve(&mut upstream, 0, TOP, &qname, black_box(client), t0);
            debug_assert!(r.from_cache);
            black_box(r.ips.len())
        })
    });
}

criterion_group!(benches, bench_cache, bench_wheel, bench_resolve);
criterion_main!(benches);
