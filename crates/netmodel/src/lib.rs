#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! The seeded synthetic Internet.
//!
//! Everything the paper's measurement pipelines observe about the real
//! Internet — autonomous systems, /24 client blocks with demand, recursive
//! resolver (LDNS) infrastructure, public anycast resolver providers, BGP
//! CIDR announcements, geolocation data, and inter-point latency/loss — is
//! generated here as a pure function of an [`InternetConfig`] (see
//! DESIGN.md for the substitution rationale).
//!
//! The central type is [`Internet`]; build one with [`Internet::generate`]:
//!
//! ```
//! use eum_netmodel::{Internet, InternetConfig};
//!
//! let net = Internet::generate(InternetConfig::tiny(42));
//! assert!(net.blocks.len() > 50);
//! // Same seed ⇒ identical Internet.
//! let again = Internet::generate(InternetConfig::tiny(42));
//! assert_eq!(net.blocks.len(), again.blocks.len());
//! ```

pub mod asys;
pub mod bgp;
pub mod block;
pub mod config;
pub mod endpoint;
mod generate;
pub mod ids;
pub mod latency;
pub mod resolver;
pub mod sample;

pub use asys::{AsInfo, AsTier, ResolverPolicy};
pub use bgp::BgpTable;
pub use block::ClientBlock;
pub use config::{InternetConfig, ProviderTemplate};
pub use endpoint::Endpoint;
pub use ids::{AsId, BlockId, ProviderId, ResolverId};
pub use latency::LatencyModel;
pub use resolver::{AnycastRouter, PublicProvider, Resolver, ResolverKind};
pub use sample::{QueryOrigin, QueryPopulation};

use eum_geo::{GeoDb, GeoInfo, Prefix};
use std::collections::HashMap;

/// A fully generated synthetic Internet.
///
/// All arenas are indexed by their typed IDs ([`AsId`], [`BlockId`],
/// [`ResolverId`], [`ProviderId`]). The structure is immutable after
/// generation except for infrastructure registration
/// ([`Internet::alloc_infra_block`], used by the CDN crate to place
/// servers into the same address/geo/BGP universe).
#[derive(Debug, Clone)]
pub struct Internet {
    /// The configuration that produced this Internet.
    pub cfg: InternetConfig,
    /// The latency/loss model (deterministic, shared by all consumers).
    pub latency: LatencyModel,
    /// Autonomous systems.
    pub ases: Vec<AsInfo>,
    /// /24 client blocks.
    pub blocks: Vec<ClientBlock>,
    /// Recursive resolver endpoints (ISP sites, enterprise centrals, and
    /// public provider anycast sites).
    pub resolvers: Vec<Resolver>,
    /// Public resolver providers.
    pub providers: Vec<PublicProvider>,
    /// The BGP table (client CIDRs + infrastructure announcements).
    pub bgp: BgpTable,
    /// The Edgescape-style geolocation database, populated for every
    /// client block and infrastructure prefix.
    pub geodb: GeoDb,
    /// Next free /24 index in the infrastructure space.
    next_infra_24: u32,
}

impl Internet {
    /// Generates an Internet from a configuration. Deterministic in
    /// `cfg.seed`.
    pub fn generate(cfg: InternetConfig) -> Internet {
        generate::generate(cfg)
    }

    /// The block with the given ID.
    pub fn block(&self, id: BlockId) -> &ClientBlock {
        &self.blocks[id.index()]
    }

    /// The resolver with the given ID.
    pub fn resolver(&self, id: ResolverId) -> &Resolver {
        &self.resolvers[id.index()]
    }

    /// The AS with the given ID.
    pub fn as_info(&self, id: AsId) -> &AsInfo {
        &self.ases[id.index()]
    }

    /// The provider with the given ID.
    pub fn provider(&self, id: ProviderId) -> &PublicProvider {
        &self.providers[id.index()]
    }

    /// True when `id` is a public-provider anycast site.
    pub fn is_public_resolver(&self, id: ResolverId) -> bool {
        self.resolver(id).kind.is_public()
    }

    /// Total client demand across all blocks.
    pub fn total_demand(&self) -> f64 {
        self.blocks.iter().map(|b| b.demand).sum()
    }

    /// Demand arriving at each LDNS: for every block, its demand is split
    /// across its LDNSes by usage weight — the "LDNS demand" of §5.1.
    pub fn ldns_demand(&self) -> HashMap<ResolverId, f64> {
        let mut out: HashMap<ResolverId, f64> = HashMap::new();
        for b in &self.blocks {
            for (r, w) in &b.ldns {
                *out.entry(*r).or_insert(0.0) += w * b.demand;
            }
        }
        out
    }

    /// Fraction of total demand that flows through public resolvers.
    pub fn public_demand_fraction(&self) -> f64 {
        let total = self.total_demand();
        if total <= 0.0 {
            return 0.0;
        }
        let public: f64 = self
            .blocks
            .iter()
            .flat_map(|b| b.ldns.iter().map(move |(r, w)| (b, r, w)))
            .filter(|(_, r, _)| self.is_public_resolver(**r))
            .map(|(b, _, w)| b.demand * w)
            .sum();
        public / total
    }

    /// Allocates a fresh infrastructure /24 (for CDN deployments etc.),
    /// registering it in the geolocation DB and BGP table.
    pub fn alloc_infra_block(&mut self, info: GeoInfo) -> Prefix {
        let p = Prefix::new(self.next_infra_24 << 8, 24);
        self.next_infra_24 += 1;
        self.geodb.insert(p, info);
        self.bgp.announce(p, info.asn);
        p
    }

    /// Demand-weighted great-circle distance between each block and each of
    /// its LDNSes — the §3.2 client–LDNS distance observations, restricted
    /// by an LDNS filter. Returns `(distance_miles, demand)` pairs.
    pub fn client_ldns_distances(
        &self,
        mut ldns_filter: impl FnMut(&Resolver) -> bool,
    ) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for (rid, w) in &b.ldns {
                let r = self.resolver(*rid);
                if !ldns_filter(r) {
                    continue;
                }
                let d = b.loc.distance_miles(&r.loc);
                out.push((d, b.demand * w));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_geo::{Asn, Country, GeoPoint};

    fn tiny() -> Internet {
        Internet::generate(InternetConfig::tiny(0x5EED))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.blocks.len(), b.blocks.len());
        assert_eq!(a.resolvers.len(), b.resolvers.len());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.demand, y.demand);
            assert_eq!(x.ldns, y.ldns);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Internet::generate(InternetConfig::tiny(1));
        let b = Internet::generate(InternetConfig::tiny(2));
        let same = a.blocks.len() == b.blocks.len()
            && a.blocks
                .iter()
                .zip(&b.blocks)
                .all(|(x, y)| x.demand == y.demand);
        assert!(!same, "seeds 1 and 2 produced identical Internets");
    }

    #[test]
    fn every_block_has_ldns_with_unit_weight() {
        let net = tiny();
        for b in &net.blocks {
            assert!(!b.ldns.is_empty(), "block {} has no LDNS", b.prefix);
            let sum: f64 = b.ldns.iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
            for (r, w) in &b.ldns {
                assert!(*w > 0.0);
                assert!(r.index() < net.resolvers.len());
            }
        }
    }

    #[test]
    fn blocks_are_geolocatable_and_routable() {
        let net = tiny();
        for b in &net.blocks {
            let gi = net.geodb.lookup(b.client_ip()).expect("block in geodb");
            assert_eq!(gi.asn, b.asn);
            assert_eq!(gi.country, b.country);
            let origin = net.bgp.origin(b.prefix).expect("block covered by BGP");
            assert_eq!(origin, b.asn);
        }
    }

    #[test]
    fn resolvers_are_geolocatable() {
        let net = tiny();
        for r in &net.resolvers {
            let gi = net.geodb.lookup(r.ip).expect("resolver in geodb");
            assert_eq!(gi.asn, r.asn);
        }
    }

    #[test]
    fn public_demand_fraction_is_plausible() {
        // Paper §3.2: "percent of client demand from public resolvers
        // approaches 8 percent worldwide". The tiny universe is noisy;
        // accept a broad band around that.
        let net = Internet::generate(InternetConfig::small(7));
        let f = net.public_demand_fraction();
        assert!((0.02..0.40).contains(&f), "public demand fraction {f}");
    }

    #[test]
    fn public_clients_are_farther_from_their_ldns() {
        // The core §3.2 finding: median client–LDNS distance is several
        // times larger for public-resolver users than overall.
        let net = Internet::generate(InternetConfig::small(7));
        let all: eum_stats_free::Ws = net.client_ldns_distances(|_| true).into();
        let public: eum_stats_free::Ws = net.client_ldns_distances(|r| r.kind.is_public()).into();
        let m_all = all.median();
        let m_public = public.median();
        assert!(
            m_public > 2.0 * m_all,
            "public median {m_public} vs overall {m_all}"
        );
    }

    /// Minimal weighted-median helper so this crate's tests do not depend
    /// on eum-stats (which would create a dependency cycle in dev-deps).
    mod eum_stats_free {
        pub struct Ws(Vec<(f64, f64)>);

        impl From<Vec<(f64, f64)>> for Ws {
            fn from(v: Vec<(f64, f64)>) -> Self {
                Ws(v)
            }
        }

        impl Ws {
            pub fn median(mut self) -> f64 {
                self.0.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let total: f64 = self.0.iter().map(|(_, w)| w).sum();
                let mut cum = 0.0;
                for (v, w) in &self.0 {
                    cum += w;
                    if cum >= total / 2.0 {
                        return *v;
                    }
                }
                f64::NAN
            }
        }
    }

    #[test]
    fn enterprise_blocks_span_countries() {
        let net = Internet::generate(InternetConfig::small(3));
        let multi = net
            .ases
            .iter()
            .filter(|a| a.tier == AsTier::Enterprise)
            .filter(|a| {
                let countries: std::collections::BTreeSet<_> =
                    a.block_ids().map(|b| net.block(b).country).collect();
                countries.len() > 1
            })
            .count();
        assert!(multi > 0, "no multi-country enterprise found");
    }

    #[test]
    fn ldns_demand_accounts_for_all_demand() {
        let net = tiny();
        let by_ldns: f64 = net.ldns_demand().values().sum();
        let total = net.total_demand();
        assert!((by_ldns - total).abs() / total < 1e-9);
    }

    #[test]
    fn alloc_infra_block_registers_everywhere() {
        let mut net = tiny();
        let info = GeoInfo {
            point: GeoPoint::new(50.0, 8.0),
            country: Country::Germany,
            asn: Asn(65_000),
        };
        let p = net.alloc_infra_block(info);
        let q = net.alloc_infra_block(info);
        assert_ne!(p, q, "allocations must be distinct");
        assert_eq!(net.geodb.lookup_block(p).unwrap().asn, Asn(65_000));
        assert_eq!(net.bgp.origin(p), Some(Asn(65_000)));
    }

    #[test]
    fn as_demand_matches_block_sum() {
        let net = tiny();
        for a in &net.ases {
            let sum: f64 = a.block_ids().map(|b| net.block(b).demand).sum();
            assert!((a.demand - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn small_universe_has_all_tiers_and_providers() {
        let net = tiny();
        for tier in AsTier::ALL {
            assert!(net.ases.iter().any(|a| a.tier == *tier), "missing {tier:?}");
        }
        assert_eq!(net.providers.len(), 3);
        for p in &net.providers {
            assert!(!p.sites.is_empty());
        }
    }
}
