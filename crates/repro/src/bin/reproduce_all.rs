//! Regenerates every figure of the paper in one run.
//!
//! Builds the §3 world, replays the roll-out once, runs the §6 study, and
//! prints all figures; each figure is also written to `results/figXX.txt`
//! alongside a `results/summary.txt` digest. Pass `--quick` for a smaller
//! world (minutes instead of tens of minutes).

use eum_netmodel::Internet;
use eum_repro::{build_world3, figures3, figures4, figures56, rollout_report, Scale};
use eum_sim::Metric;
use std::fs;
use std::path::Path;

fn emit(dir: &Path, name: &str, content: &str) {
    println!("{content}");
    let path = dir.join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, content) {
        eprintln!("[repro] could not write {}: {e}", path.display());
    }
}

fn main() {
    let scale = Scale::from_args();
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("[repro] could not create {}: {e}", dir.display());
    }

    eprintln!("[repro] §3: building the synthetic Internet and NetSession dataset…");
    let w = build_world3(scale);
    emit(dir, "fig05", &figures3::fig05(&w, scale));
    emit(dir, "fig06", &figures3::fig06(&w, scale));
    emit(dir, "fig07", &figures3::fig07(&w, scale));
    emit(dir, "fig08", &figures3::fig08(&w, scale));
    emit(dir, "fig09", &figures3::fig09(&w, scale));
    emit(dir, "fig10", &figures3::fig10(&w, scale));
    emit(dir, "fig11", &figures3::fig11(&w, scale));
    emit(dir, "fig21", &figures3::fig21(&w, scale));
    emit(dir, "fig22", &figures3::fig22(&w, scale));

    eprintln!("[repro] §4/§5: replaying the roll-out…");
    let r = rollout_report(scale);
    emit(dir, "fig02", &figures4::fig02(&r, scale));
    emit(dir, "fig12", &figures4::fig12(&r, scale));
    emit(
        dir,
        "fig13",
        &figures4::fig_daily(&r, Metric::MappingDistance, "Figure 13", scale),
    );
    emit(
        dir,
        "fig14",
        &figures4::fig_cdf(&r, Metric::MappingDistance, "Figure 14", scale),
    );
    emit(
        dir,
        "fig15",
        &figures4::fig_daily(&r, Metric::Rtt, "Figure 15", scale),
    );
    emit(
        dir,
        "fig16",
        &figures4::fig_cdf(&r, Metric::Rtt, "Figure 16", scale),
    );
    emit(
        dir,
        "fig17",
        &figures4::fig_daily(&r, Metric::Ttfb, "Figure 17", scale),
    );
    emit(
        dir,
        "fig18",
        &figures4::fig_cdf(&r, Metric::Ttfb, "Figure 18", scale),
    );
    emit(
        dir,
        "fig19",
        &figures4::fig_daily(&r, Metric::Download, "Figure 19", scale),
    );
    emit(
        dir,
        "fig20",
        &figures4::fig_cdf(&r, Metric::Download, "Figure 20", scale),
    );
    emit(dir, "fig23", &figures4::fig23(&r, scale));
    emit(dir, "fig24", &figures4::fig24(&r, scale));
    emit(dir, "summary", &r.summary());
    if let Err(e) = fs::write(dir.join("summary.json"), r.summary_json()) {
        eprintln!("[repro] could not write summary.json: {e}");
    }
    if let Err(e) = fs::write(dir.join("rollout_timeline.jsonl"), r.timeline.to_jsonl()) {
        eprintln!("[repro] could not write rollout_timeline.jsonl: {e}");
    }

    eprintln!("[repro] §6: deployment study…");
    let net = Internet::generate(scale.internet_config());
    emit(dir, "fig25", &figures56::fig25(&net, scale));

    eprintln!("[repro] done — outputs in {}/", dir.display());
}
