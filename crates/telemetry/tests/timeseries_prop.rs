//! Property tests for the windowed time-series layer.
//!
//! The load-bearing guarantee: windowed deltas are a *lossless*
//! re-slicing of the cumulative registry. Summing every window's
//! counter delta must reconcile exactly with the cumulative counter —
//! including when increments land concurrently with captures — and a
//! histogram window's bucket-diff quantiles must describe the window's
//! own samples, not the cumulative stream.

use eum_telemetry::{Histogram, HistogramSnapshot, Registry, WindowCapturer, WindowValue};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Sequential captures re-slice a counter stream exactly: the
    /// per-window deltas are the increments between captures, and their
    /// sum is the cumulative count.
    #[test]
    fn window_deltas_reconcile_with_cumulative(
        increments in proptest::collection::vec(0u64..1_000, 1..20),
    ) {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("eum_test_total", "t", &[]);
        let cap = WindowCapturer::new(reg, increments.len());
        for &inc in &increments {
            c.add(inc);
            cap.capture();
        }
        let deltas: Vec<u64> = cap
            .windows()
            .iter()
            .map(|w| match w.rows[0].value {
                WindowValue::CounterDelta(d) => d,
                _ => panic!("expected a counter row"),
            })
            .collect();
        prop_assert_eq!(&deltas, &increments);
        prop_assert_eq!(deltas.iter().sum::<u64>(), c.get());
    }

    /// A histogram window's bucket-diff p50/p99 describe the window's
    /// own samples within the one-bucket error bound, regardless of
    /// what was recorded before the window opened.
    #[test]
    fn histogram_window_quantiles_match_window_samples(
        before in proptest::collection::vec(0u64..1_000_000_000, 0..100),
        window in proptest::collection::vec(0u64..1_000_000_000, 1..100),
    ) {
        let reg = Arc::new(Registry::new());
        let h = reg.histogram("eum_lat_ns", "t", &[]);
        let cap = WindowCapturer::new(reg, 4);
        for &v in &before {
            h.record(v);
        }
        cap.capture();
        for &v in &window {
            h.record(v);
        }
        cap.capture();
        let windows = cap.windows();
        let (count, p50, p99) = match windows[1].rows[0].value {
            WindowValue::Histogram { count, p50, p99 } => (count, p50, p99),
            _ => panic!("expected a histogram row"),
        };
        prop_assert_eq!(count, window.len() as u64);
        let mut sorted = window.clone();
        sorted.sort_unstable();
        for (q, approx) in [(0.5, p50), (0.99, p99)] {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            let exact = sorted[rank];
            let (lo, hi) = HistogramSnapshot::bucket_of(exact);
            prop_assert!(
                (approx - exact as f64).abs() <= hi - lo,
                "window q{q} = {approx} vs exact {exact}, bucket [{lo}, {hi})"
            );
        }
    }
}

/// The concurrent half of the reconciliation guarantee: capture windows
/// *while* writer threads hammer the counter, then close a final window
/// after they join. No increment may be lost or double-counted across
/// the window boundaries, whatever interleaving the captures hit.
#[test]
fn concurrent_increments_reconcile_exactly() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 50_000;
    let reg = Arc::new(Registry::new());
    let c = reg.counter("eum_test_total", "t", &[]);
    let cap = Arc::new(WindowCapturer::new(reg.clone(), 1 << 16));
    let handles: Vec<_> = (0..WRITERS)
        .map(|_| {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..PER_WRITER {
                    c.inc();
                }
            })
        })
        .collect();
    // Capture continuously mid-flight (throttled so the bounded ring
    // can never wrap and drop a window's delta).
    while handles.iter().any(|h| !h.is_finished()) {
        cap.capture();
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    for h in handles {
        h.join().expect("writer");
    }
    // Final window closes whatever the mid-flight captures missed.
    cap.capture();
    let total: u64 = cap
        .windows()
        .iter()
        .map(|w| match w.rows[0].value {
            WindowValue::CounterDelta(d) => d,
            _ => 0,
        })
        .sum();
    assert_eq!(total, WRITERS as u64 * PER_WRITER);
    assert_eq!(total, c.get());
}

/// Striped histograms diff cleanly too: concurrent recorders into
/// different stripes, windows still partition the sample count.
#[test]
fn striped_histogram_windows_partition_the_count() {
    let reg = Arc::new(Registry::new());
    let h: Arc<Histogram> = reg.histogram_striped("eum_lat_ns", "t", &[], 4);
    let cap = Arc::new(WindowCapturer::new(reg, 1 << 16));
    let handles: Vec<_> = (0..4usize)
        .map(|stripe| {
            let h = h.clone();
            std::thread::spawn(move || {
                for v in 0..20_000u64 {
                    h.record_at(stripe, v);
                }
            })
        })
        .collect();
    while handles.iter().any(|h| !h.is_finished()) {
        cap.capture();
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    for h in handles {
        h.join().expect("recorder");
    }
    cap.capture();
    let total: u64 = cap
        .windows()
        .iter()
        .map(|w| match w.rows[0].value {
            WindowValue::Histogram { count, .. } => count,
            _ => 0,
        })
        .sum();
    assert_eq!(total, 4 * 20_000);
}
