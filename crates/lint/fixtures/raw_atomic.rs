//! raw-atomic fixture: a declared facade file naming std atomics
//! directly, one justified use, and test code (exempt).

// Violating: the audited file must import through crate::msync.
use std::sync::atomic::AtomicU64;

// Justified:
// lint: allow(raw-atomic) — Ordering is a plain enum, not a primitive
use std::sync::atomic::Ordering;

pub fn clean(x: &AtomicU64) -> u64 {
    x.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    // Test code may name std atomics freely.
    use std::sync::atomic::AtomicU32;

    #[test]
    fn exempt() {
        let _ = AtomicU32::new(0);
    }
}
