#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! The mapping system — the paper's primary contribution.
//!
//! "A central component of Akamai's CDN is its mapping system. The goal of
//! the mapping system is to maximize the performance experienced by the
//! client" (§1). This crate implements the full Figure-3 architecture:
//!
//! * [`measure`] — ping-target selection and the ping matrix (network
//!   measurement / topology discovery);
//! * [`score`] — per-(unit, cluster) scoring with latency and loss;
//! * [`units`] — mapping units: LDNS-based and /x-block-based with BGP
//!   aggregation (§5.1);
//! * [`global_lb`] — stable-allocation / greedy cluster assignment;
//! * [`local_lb`] — bounded-load consistent hashing within a cluster;
//! * [`policy`] — NS-based, end-user, and client-aware-NS policies;
//! * [`system`] — [`MappingSystem`]: the two-level authoritative DNS
//!   frontend that serves the computed map (§2.2 "Name Servers");
//! * [`telemetry`] — serving-path instruments (answer paths, liveness
//!   fallback depth, per-unit query counts) attachable to a shared
//!   `eum_telemetry::Registry`;
//! * [`clusters`] — client-cluster analytics (§3.3);
//! * [`deploy_study`] — the §6 deployment simulation (Figure 25).
//!
//! ## Example
//!
//! ```no_run
//! use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
//! use eum_mapping::{MappingConfig, MappingSystem};
//! use eum_netmodel::{Internet, InternetConfig};
//!
//! // A world: Internet, CDN, content.
//! let mut net = Internet::generate(InternetConfig::small(7));
//! let sites = deployment_universe(7, 40);
//! let cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
//! let catalog = ContentCatalog::generate(&CatalogConfig::tiny(7));
//!
//! // The mapping system: measurement → scoring → load balancing → DNS.
//! let mapping = MappingSystem::build(
//!     &mut net,
//!     &cdn,
//!     &catalog,
//!     "cdn.example".parse().unwrap(),
//!     MappingConfig::default(),
//! );
//!
//! // Where would end-user mapping send this client block?
//! let block = net.blocks[0].prefix;
//! let cluster = mapping.assigned_cluster_for_block(block).unwrap();
//! println!("{block} -> {}", cdn.cluster(cluster).name);
//! ```

pub mod clusters;
pub mod delta;
pub mod deploy_study;
pub mod global_lb;
pub mod local_lb;
pub mod measure;
pub mod policy;
pub mod score;
pub mod system;
pub mod telemetry;
pub mod units;

pub use clusters::{client_clusters, ClientCluster};
pub use delta::MapDelta;
pub use deploy_study::{run_study, Scheme, StudyConfig, StudyRow};
pub use global_lb::{
    assign, assign_with_prefs, find_blocking_pair, Assignment, LbAlgorithm, PreferenceTable,
};
pub use local_lb::{domain_key, ConsistentRing};
pub use measure::{PingMatrix, PingTargets, TargetId};
pub use policy::MappingPolicy;
pub use score::{ScoreBasis, ScoreTable, ScoringWeights};
pub use system::{LocalLbPolicy, MappingConfig, MappingStats, MappingSystem, RescoreHints};
pub use telemetry::MappingTelemetry;
pub use units::{MapUnitInfo, MapUnits, UnitId, UnitKey};
