//! The NetSession measurement substrate (§3.1).
//!
//! The paper pairs clients with their LDNSes via the NetSession download
//! manager: each client learns its external IP over a persistent control
//! connection, discovers its LDNS by resolving a `whoami` name, and the
//! pairs are aggregated per /24 client block with relative LDNS usage
//! frequencies. [`PairDataset::collect`] produces exactly that dataset
//! from the synthetic Internet (optionally subsampled, since NetSession
//! covers a fraction of clients), and the analysis methods generate every
//! §3 view: distance histograms, country box plots, public-resolver
//! shares, and AS-size breakdowns.

use eum_geo::Country;
use eum_netmodel::{BlockId, Internet, ResolverId};
use eum_stats::{BoxPlot, WeightedSample};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One aggregated (client /24 block, LDNS) pair.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PairRecord {
    /// The client block.
    pub block: BlockId,
    /// The LDNS.
    pub ldns: ResolverId,
    /// Demand flowing through this pair (block demand × usage frequency).
    pub weight: f64,
    /// Great-circle client-block ↔ LDNS distance, miles.
    pub distance_miles: f64,
}

/// The aggregated client–LDNS dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairDataset {
    /// All pairs.
    pub records: Vec<PairRecord>,
}

impl PairDataset {
    /// Collects pairs for every block (full coverage).
    pub fn collect(net: &Internet) -> PairDataset {
        Self::collect_sampled(net, 1.0, 0)
    }

    /// Collects pairs for a demand-independent random fraction of blocks,
    /// modeling NetSession's partial install base (§3.1: the dataset
    /// covered 84.6% of global demand).
    pub fn collect_sampled(net: &Internet, fraction: f64, seed: u64) -> PairDataset {
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x4E_7553);
        let mut records = Vec::new();
        for b in &net.blocks {
            if fraction < 1.0 && !rng.random_bool(fraction.clamp(0.0, 1.0)) {
                continue;
            }
            for (r, w) in &b.ldns {
                let weight = b.demand * w;
                if weight <= 0.0 {
                    continue;
                }
                let ldns = net.resolver(*r);
                records.push(PairRecord {
                    block: b.id,
                    ldns: *r,
                    weight,
                    distance_miles: b.loc.distance_miles(&ldns.loc),
                });
            }
        }
        PairDataset { records }
    }

    /// Number of pair records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total demand covered.
    pub fn total_weight(&self) -> f64 {
        self.records.iter().map(|r| r.weight).sum()
    }

    /// Distinct LDNSes observed.
    pub fn ldns_count(&self) -> usize {
        let mut ids: Vec<ResolverId> = self.records.iter().map(|r| r.ldns).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Distinct client blocks observed.
    pub fn block_count(&self) -> usize {
        let mut ids: Vec<BlockId> = self.records.iter().map(|r| r.block).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The demand-weighted client–LDNS distance sample, over pairs
    /// passing `filter` (Figures 5 and 7).
    pub fn distance_sample(
        &self,
        net: &Internet,
        mut filter: impl FnMut(&Internet, &PairRecord) -> bool,
    ) -> WeightedSample {
        self.records
            .iter()
            .filter(|r| filter(net, r))
            .map(|r| (r.distance_miles, r.weight))
            .collect()
    }

    /// Keeps only pairs whose LDNS is a public resolver.
    pub fn public_only(&self, net: &Internet) -> PairDataset {
        PairDataset {
            records: self
                .records
                .iter()
                .filter(|r| net.is_public_resolver(r.ldns))
                .copied()
                .collect(),
        }
    }

    /// Per-country distance box plots, demand-weighted, for the countries
    /// given (Figures 6 and 8). Countries with no data are omitted.
    pub fn country_boxplots(
        &self,
        net: &Internet,
        countries: &[Country],
        public_only: bool,
    ) -> Vec<(Country, BoxPlot)> {
        let mut per: BTreeMap<Country, WeightedSample> = BTreeMap::new();
        for r in &self.records {
            if public_only && !net.is_public_resolver(r.ldns) {
                continue;
            }
            let c = net.block(r.block).country;
            per.entry(c)
                .or_default()
                .push_weighted(r.distance_miles, r.weight);
        }
        countries
            .iter()
            .filter_map(|c| per.get(c).and_then(BoxPlot::from_sample).map(|b| (*c, b)))
            .collect()
    }

    /// Median demand-weighted distance per country (used for the §4.1.1
    /// high/low-expectation split).
    pub fn country_medians(&self, net: &Internet, public_only: bool) -> BTreeMap<Country, f64> {
        let mut per: BTreeMap<Country, WeightedSample> = BTreeMap::new();
        for r in &self.records {
            if public_only && !net.is_public_resolver(r.ldns) {
                continue;
            }
            let c = net.block(r.block).country;
            per.entry(c)
                .or_default()
                .push_weighted(r.distance_miles, r.weight);
        }
        per.into_iter()
            .filter_map(|(c, mut s)| s.median().map(|m| (c, m)))
            .collect()
    }

    /// The §4.1.1 classification: countries whose median public-resolver
    /// client–LDNS distance exceeds `threshold_miles` (paper: 1000).
    pub fn high_expectation_countries(
        &self,
        net: &Internet,
        threshold_miles: f64,
    ) -> std::collections::BTreeSet<Country> {
        self.country_medians(net, true)
            .into_iter()
            .filter(|(_, m)| *m > threshold_miles)
            .map(|(c, _)| c)
            .collect()
    }

    /// Percent of each country's demand that flows through public
    /// resolvers (Figure 9).
    pub fn public_demand_percent_by_country(&self, net: &Internet) -> Vec<(Country, f64)> {
        let mut total: BTreeMap<Country, f64> = BTreeMap::new();
        let mut public: BTreeMap<Country, f64> = BTreeMap::new();
        for r in &self.records {
            let c = net.block(r.block).country;
            *total.entry(c).or_insert(0.0) += r.weight;
            if net.is_public_resolver(r.ldns) {
                *public.entry(c).or_insert(0.0) += r.weight;
            }
        }
        total
            .into_iter()
            .map(|(c, t)| (c, 100.0 * public.get(&c).copied().unwrap_or(0.0) / t))
            .collect()
    }

    /// Median client–LDNS distance as a function of AS size, where AS size
    /// is the AS's share of total demand bucketed by powers of two
    /// (Figure 10). Returns `(bucket_exponent, median_miles, n_ases)`
    /// rows: bucket `e` holds ASes with share in `(2^(e-1), 2^e]`.
    pub fn distance_by_as_size(&self, net: &Internet) -> Vec<(i32, f64, usize)> {
        let total_demand = net.total_demand();
        // Demand-weighted distances per AS.
        let mut per_as: BTreeMap<u32, WeightedSample> = BTreeMap::new();
        for r in &self.records {
            let as_id = net.block(r.block).as_id;
            per_as
                .entry(as_id.0)
                .or_default()
                .push_weighted(r.distance_miles, r.weight);
        }
        let mut buckets: BTreeMap<i32, (WeightedSample, usize)> = BTreeMap::new();
        for (as_id, sample) in per_as {
            let share = net.ases[as_id as usize].demand / total_demand;
            if share <= 0.0 {
                continue;
            }
            let exp = share.log2().ceil() as i32;
            let slot = buckets.entry(exp).or_default();
            slot.0.extend_from(&sample);
            slot.1 += 1;
        }
        buckets
            .into_iter()
            .filter_map(|(e, (mut s, n))| s.median().map(|m| (e, m, n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_netmodel::InternetConfig;

    fn data() -> (Internet, PairDataset) {
        let net = Internet::generate(InternetConfig::small(0x4E));
        let ds = PairDataset::collect(&net);
        (net, ds)
    }

    #[test]
    fn collect_covers_every_block_and_weights_match() {
        let (net, ds) = data();
        assert_eq!(ds.block_count(), net.blocks.len());
        assert!((ds.total_weight() - net.total_demand()).abs() / net.total_demand() < 1e-9);
        assert!(ds.ldns_count() > 10);
    }

    #[test]
    fn sampling_reduces_coverage_roughly_proportionally() {
        let net = Internet::generate(InternetConfig::small(0x4F));
        let half = PairDataset::collect_sampled(&net, 0.5, 1);
        let frac = half.block_count() as f64 / net.blocks.len() as f64;
        assert!((0.40..0.60).contains(&frac), "got {frac}");
        // Deterministic.
        let again = PairDataset::collect_sampled(&net, 0.5, 1);
        assert_eq!(half.len(), again.len());
    }

    #[test]
    fn public_median_exceeds_overall_median() {
        // The headline §3.2 numbers: overall median 162 mi vs public 1028
        // mi (6.3×). The small test universe under-represents large ISPs
        // (few per country), which inflates the overall median; require a
        // clear ≥1.8× gap here and check the full ratio at paper scale in
        // EXPERIMENTS.md.
        let (net, ds) = data();
        let mut overall = ds.distance_sample(&net, |_, _| true);
        let mut public = ds.distance_sample(&net, |n, r| n.is_public_resolver(r.ldns));
        let mo = overall.median().unwrap();
        let mp = public.median().unwrap();
        assert!(mp > 1.8 * mo, "public {mp} vs overall {mo}");
    }

    #[test]
    fn public_only_filters() {
        let (net, ds) = data();
        let p = ds.public_only(&net);
        assert!(p.len() < ds.len());
        assert!(p.records.iter().all(|r| net.is_public_resolver(r.ldns)));
    }

    #[test]
    fn country_boxplots_are_ordered_and_complete() {
        let (net, ds) = data();
        let rows = ds.country_boxplots(&net, Country::paper_top25(), false);
        assert!(rows.len() >= 20, "only {} countries had data", rows.len());
        for (_, b) in &rows {
            assert!(b.p5 <= b.p95);
        }
    }

    #[test]
    fn public_demand_percent_sums_are_sane() {
        let (net, ds) = data();
        let rows = ds.public_demand_percent_by_country(&net);
        for (c, pct) in &rows {
            assert!((0.0..=100.0 + 1e-9).contains(pct), "{c}: {pct}");
        }
        // Demand-weighted global fraction matches the Internet's.
        let global: f64 = ds
            .records
            .iter()
            .filter(|r| net.is_public_resolver(r.ldns))
            .map(|r| r.weight)
            .sum::<f64>()
            / ds.total_weight();
        assert!((global - net.public_demand_fraction()).abs() < 1e-9);
    }

    #[test]
    fn high_expectation_split_is_nonempty_both_sides() {
        let (net, ds) = data();
        let high = ds.high_expectation_countries(&net, 1000.0);
        let with_data = ds.country_medians(&net, true).len();
        assert!(!high.is_empty(), "no high-expectation countries");
        assert!(high.len() < with_data, "every country is high-expectation");
    }

    #[test]
    fn small_ases_have_larger_distances() {
        // Figure 10's shape: smaller ASes see larger median client-LDNS
        // distances. Individual buckets are noisy (few ASes each), so
        // compare the mean median of the smallest third of buckets
        // against the largest third.
        let (net, ds) = data();
        let rows = ds.distance_by_as_size(&net);
        assert!(rows.len() >= 3, "need several buckets, got {rows:?}");
        let third = (rows.len() / 3).max(1);
        let small_mean: f64 = rows[..third].iter().map(|(_, m, _)| m).sum::<f64>() / third as f64;
        let large_mean: f64 = rows[rows.len() - third..]
            .iter()
            .map(|(_, m, _)| m)
            .sum::<f64>()
            / third as f64;
        assert!(
            small_mean > large_mean,
            "small-AS mean median {small_mean:.0} should exceed large-AS {large_mean:.0}"
        );
    }
}
