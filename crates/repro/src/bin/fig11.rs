//! Reproduces Figure 11 of the paper. Pass `--quick` for a smaller world.

use eum_repro::{build_world3, figures3, Scale};

fn main() {
    let scale = Scale::from_args();
    let w = build_world3(scale);
    print!("{}", figures3::fig11(&w, scale));
}
