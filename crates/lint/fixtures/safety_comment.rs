// Fixture for the safety-comment and unsafe-budget rules. Three `unsafe`
// occurrences total; exactly one lacks a SAFETY comment.

fn violating(p: *const u8) -> u8 {
    unsafe { *p } // line 5: fires safety-comment
}

fn justified(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p points to a live, aligned byte.
    unsafe { *p }
}

// SAFETY: the fn's contract requires a valid pointer; documented here.
unsafe fn documented_fn(p: *const u8) -> u8 {
    *p
}
