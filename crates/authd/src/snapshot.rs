//! Read-mostly snapshot publication for the serving plane.
//!
//! The paper's mapping system recomputes its map every 10–30 seconds
//! (§2.2) while the authoritative servers answer hundreds of thousands of
//! queries per second. The serving plane must therefore read a *consistent*
//! map without ever blocking on the control plane's recompute. The classic
//! shape is read-copy-update: the control plane builds a complete new
//! [`MappingSystem`] off to the side and publishes it with one atomic
//! pointer swap; answer threads grab an `Arc` to whichever generation is
//! current and keep using it for the duration of one query, so a query
//! never observes half of one map and half of another.
//!
//! The publication primitive itself — the epoch-stamped slot, its
//! memory-ordering audit, and the model-checked reader protocol — lives
//! in [`crate::epoch`]; this module binds it to [`Snapshot`] generations
//! and keeps the generation counter in lockstep with the epoch (both
//! start at 1 and bump once per publication, an invariant the model
//! tests in `tests/snapshot_stress.rs` verify across interleavings).

use crate::epoch::{EpochCell, EpochReader};
use eum_mapping::{MapDelta, MappingSystem};
use std::sync::Arc;

/// One published generation of the mapping system.
pub struct Snapshot {
    /// Monotonic generation number; starts at 1 for the initial map.
    pub generation: u64,
    /// The immutable map this generation serves from.
    pub map: MappingSystem,
    /// The set of mapping units whose answers may differ from generation
    /// `generation - 1` (None when published without a delta: consumers
    /// must assume everything changed). Carried in the snapshot so shard
    /// caches can invalidate lazily, on first touch, with zero serve-path
    /// allocations.
    pub delta: Option<Arc<MapDelta>>,
}

// The serving plane shares snapshots across shard threads. This holds
// because `MappingSystem`'s serve path is `&self` (interior mutability is
// limited to one relaxed atomic); a compile error here means a non-Sync
// type crept into the map's serving state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

/// The cell the control plane publishes into. Cloning the handle is
/// cheap; all clones observe the same publications. Serving shards should
/// each carry a [`SnapshotReader`] (from [`SnapshotHandle::reader`])
/// whose steady-state revalidation is a single atomic load.
#[derive(Clone)]
pub struct SnapshotHandle {
    cell: Arc<EpochCell<Snapshot>>,
}

impl SnapshotHandle {
    /// Wraps the initial map as generation 1.
    pub fn new(map: MappingSystem) -> SnapshotHandle {
        SnapshotHandle {
            cell: Arc::new(EpochCell::new(Arc::new(Snapshot {
                generation: 1,
                map,
                delta: None,
            }))),
        }
    }

    /// The current generation's snapshot. Control-plane/test convenience:
    /// takes the slot mutex. Serving shards use a [`SnapshotReader`].
    pub fn current(&self) -> Arc<Snapshot> {
        self.cell.current()
    }

    /// A per-shard reader primed with the current snapshot. The (snapshot,
    /// epoch) prime is read as one atomically-published pair — see the
    /// audit in [`crate::epoch`] for the stale-reader race this avoids.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            inner: EpochCell::reader(&self.cell),
        }
    }

    /// Publishes `map` as the next generation and returns its number.
    /// In-flight queries keep the generation they already cloned; new
    /// queries see the new map on their next reader revalidation. Without
    /// a delta, consumers treat the whole previous generation as invalid.
    pub fn publish(&self, map: MappingSystem) -> u64 {
        self.publish_inner(map, None)
    }

    /// Publishes `map` as the next generation together with the set of
    /// mapping units that changed since the *immediately preceding*
    /// generation, letting shard caches evict only affected answers.
    pub fn publish_delta(&self, map: MappingSystem, delta: Arc<MapDelta>) -> u64 {
        self.publish_inner(map, Some(delta))
    }

    fn publish_inner(&self, map: MappingSystem, delta: Option<Arc<MapDelta>>) -> u64 {
        let mut generation = 0;
        self.cell.publish_with(|cur| {
            generation = cur.generation + 1;
            Arc::new(Snapshot {
                generation,
                map,
                delta,
            })
        });
        generation
    }

    /// The current generation number without keeping the snapshot alive.
    pub fn generation(&self) -> u64 {
        self.cell.current().generation
    }
}

/// A per-shard view of the publication cell: caches the current
/// `Arc<Snapshot>` and revalidates it with one `Acquire` load per call.
/// Not `Clone` on purpose — each shard owns exactly one.
pub struct SnapshotReader {
    inner: EpochReader<Snapshot>,
}

impl SnapshotReader {
    /// The current snapshot. Steady state (no publication since the last
    /// call) is one atomic load and a compare — no lock, no reference
    /// count traffic, no allocation.
    pub fn snapshot(&mut self) -> &Arc<Snapshot> {
        self.inner.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
    use eum_mapping::{MappingConfig, MappingPolicy, MappingSystem};
    use eum_netmodel::{Internet, InternetConfig};
    use std::net::Ipv4Addr;

    fn tiny_map() -> MappingSystem {
        let mut net = Internet::generate(InternetConfig::tiny(0x51));
        let sites = deployment_universe(0x51, 8);
        let cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(0x51));
        MappingSystem::build(
            &mut net,
            &cdn,
            &catalog,
            "cdn.example".parse().unwrap(),
            MappingConfig {
                policy: MappingPolicy::NsBased,
                max_ping_targets: 20,
                ..MappingConfig::default()
            },
        )
    }

    #[test]
    fn reader_tracks_publications_and_generations_number_up() {
        let map = tiny_map();
        let handle = SnapshotHandle::new(map.clone_for_publish());
        let mut reader = handle.reader();
        assert_eq!(reader.snapshot().generation, 1);
        assert!(reader.snapshot().delta.is_none());

        assert_eq!(handle.publish(map.clone_for_publish()), 2);
        assert_eq!(reader.snapshot().generation, 2);
        assert_eq!(handle.generation(), 2);

        let delta = Arc::new(MapDelta::from_dirty(&[], &[Ipv4Addr::new(9, 9, 9, 9)]));
        assert_eq!(handle.publish_delta(map.clone_for_publish(), delta), 3);
        let snap = reader.snapshot();
        assert_eq!(snap.generation, 3);
        let carried = snap.delta.as_ref().expect("delta carried");
        assert!(carried.affects_resolver(Ipv4Addr::new(9, 9, 9, 9)));
        assert!(!carried.affects_resolver(Ipv4Addr::new(9, 9, 9, 8)));
    }

    #[test]
    fn stale_reader_catches_up_after_missing_generations() {
        let map = tiny_map();
        let handle = SnapshotHandle::new(map.clone_for_publish());
        let mut reader = handle.reader();
        assert_eq!(reader.snapshot().generation, 1);
        // Two publications while the reader sleeps.
        handle.publish(map.clone_for_publish());
        handle.publish_delta(
            map.clone_for_publish(),
            Arc::new(MapDelta::from_dirty(&[], &[])),
        );
        // One revalidation lands on the latest generation.
        assert_eq!(reader.snapshot().generation, 3);
    }

    #[test]
    fn generation_stays_in_lockstep_with_epoch() {
        let map = tiny_map();
        let handle = SnapshotHandle::new(map.clone_for_publish());
        for _ in 0..3 {
            handle.publish(map.clone_for_publish());
        }
        // Both started at 1 and bump once per publication.
        assert_eq!(handle.generation(), 4);
        assert_eq!(handle.cell.epoch(), 4);
    }
}
