//! Pluggable datagram transports for the serving loop.
//!
//! The server loop is written against [`ServerTransport`] so the same
//! shard code runs over two substrates:
//!
//! * [`ChannelTransport`] — in-process `std::sync::mpsc` queues. Fully
//!   deterministic (no kernel scheduling, no socket buffers), so offline
//!   tests and benches exercise decode → route → encode without network
//!   noise. Each datagram carries the resolver IP the sender claims and
//!   the authoritative server IP it targets, which lets one logical
//!   server answer for its whole NS set (top-level + every cluster NS).
//! * [`UdpTransport`] — one `std::net::UdpSocket` bound to loopback per
//!   shard, the ECMP-style scale-out a production deployment uses. The
//!   peer address comes from the kernel; queries are raw RFC 1035 wire
//!   format with nothing wrapped around them, so the server's identity is
//!   the socket itself (each shard serves the server IP it was spawned
//!   with).
//!
//! `recv` returns `Ok(None)` on timeout so shards can poll their shutdown
//! flag without busy-waiting.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::{Duration, Instant};

/// How long channel endpoints poll `try_recv` (yielding the CPU
/// between probes) before parking in a blocking receive. An mpsc
/// park/unpark round costs 3–10 µs of futex wake latency — an order
/// of magnitude over the serve path itself — so a closed-loop
/// client/shard pair that parked between every query would measure
/// the scheduler, not the server. `yield_now` is the probe that works
/// at every core count: on a loaded single-CPU host it hands the core
/// straight to the peer thread (a busy spin would deadlock the pair
/// for its whole budget), and on idle multi-core hosts it returns
/// immediately, degrading to a plain spin. Idle endpoints still park
/// after one budget's worth of polling.
const CHANNEL_SPIN: Duration = Duration::from_micros(50);

/// One received query, addressed for reply.
pub struct Datagram<P> {
    /// Raw RFC 1035 message bytes.
    pub payload: Vec<u8>,
    /// The recursive resolver the query came from (NS-based mapping keys
    /// on this). Loopback for UDP peers, declared for channel peers.
    pub resolver_ip: Ipv4Addr,
    /// Which of the server's authoritative IPs the query targets; `None`
    /// means the shard's configured default.
    pub server_ip: Option<Ipv4Addr>,
    /// True when the query arrived over a stream substrate (DNS-over-TCP,
    /// RFC 1035 §4.2.2): the reply is never size-capped or truncated.
    pub stream: bool,
    /// Opaque reply address.
    pub peer: P,
}

/// A shard-side datagram endpoint.
pub trait ServerTransport: Send + 'static {
    /// Reply-address type.
    type Peer: Send;
    /// Waits up to `timeout` for one datagram. `Ok(None)` means timeout.
    fn recv(&mut self, timeout: Duration) -> io::Result<Option<Datagram<Self::Peer>>>;
    /// Sends a response back to `peer`.
    fn send(&mut self, peer: &Self::Peer, payload: &[u8]) -> io::Result<()>;
}

/// One query borrowed out of a [`BatchServerTransport`]'s receive batch.
/// Batched transports are datagram-only (UDP): stream queries never
/// arrive in batches, so there is no `stream` field.
pub struct BatchDatagram<'a> {
    /// Raw RFC 1035 message bytes, borrowed from the transport's buffer.
    pub payload: &'a [u8],
    /// The recursive resolver the query came from.
    pub resolver_ip: Ipv4Addr,
    /// Targeted authoritative IP; `None` means the shard's default.
    pub server_ip: Option<Ipv4Addr>,
}

/// A shard-side endpoint that moves datagrams in kernel batches
/// (`recvmmsg`/`sendmmsg`) instead of one at a time. The shard loop
/// drives it strictly as: `recv_batch` → for each index `datagram` /
/// `stage_reply` → `flush`. Replies are staged by batch index, so the
/// transport pairs each one with the peer it received that slot from;
/// indices are only valid until the next `recv_batch`. Implementations
/// keep all buffers across calls — a warm batch cycle must not allocate.
pub trait BatchServerTransport: Send + 'static {
    /// Called once on the serving thread before the first batch (CPU
    /// pinning, thread-local setup). The default does nothing.
    fn on_thread_start(&mut self) {}
    /// Waits up to `timeout` for at least one datagram, then drains
    /// whatever else the kernel already has, up to the batch size.
    /// Returns how many arrived; `Ok(0)` means timeout.
    fn recv_batch(&mut self, timeout: Duration) -> io::Result<usize>;
    /// Borrows datagram `i` of the last batch (`i < recv_batch`'s return).
    fn datagram(&self, i: usize) -> BatchDatagram<'_>;
    /// Stages a reply to the peer datagram `i` came from.
    fn stage_reply(&mut self, i: usize, reply: &[u8]);
    /// Sends every staged reply in one (or few) kernel calls.
    fn flush(&mut self) -> io::Result<()>;
}

/// A client-side endpoint the load generator drives: one blocking
/// query/response exchange per call (the closed loop).
pub trait ClientTransport: Send {
    /// Sends `payload` to shard `shard` as `resolver_ip` targeting
    /// `server_ip`, and waits for the response. Transports that cannot
    /// carry the addressing (UDP) ignore it — the server's configured
    /// default applies and the kernel supplies the source.
    fn exchange(
        &mut self,
        shard: usize,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>>;
    /// Like [`ClientTransport::exchange`], but over the transport's
    /// stream substrate (DNS-over-TCP, RFC 1035 §4.2.2) — the leg a
    /// resolver retries on after a TC=1 answer. Transports without a
    /// stream leg return `ErrorKind::Unsupported`; callers count that as
    /// a failed attempt.
    fn exchange_stream(
        &mut self,
        shard: usize,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        let _ = (shard, server_ip, resolver_ip, payload, timeout);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport has no stream substrate",
        ))
    }
    /// How many shards this client can address.
    fn num_shards(&self) -> usize;
}

// ---------------------------------------------------------------------
// In-process channel transport.
// ---------------------------------------------------------------------

/// What travels client → shard over the channel substrate.
struct ChannelQuery {
    payload: Vec<u8>,
    resolver_ip: Ipv4Addr,
    server_ip: Ipv4Addr,
    /// Models a DNS-over-TCP exchange in-process: the server sees an
    /// uncapped stream query, so fleet truncation tests stay
    /// deterministic without sockets.
    stream: bool,
    reply: Sender<Vec<u8>>,
}

/// Shard-side receiver for the in-process substrate.
pub struct ChannelTransport {
    rx: Receiver<ChannelQuery>,
}

/// Cloneable client-side sender set addressing every shard.
#[derive(Clone)]
pub struct ChannelConnector {
    txs: Vec<Sender<ChannelQuery>>,
}

/// Builds `shards` paired channel endpoints: the transports go to the
/// server, the connector is cloned into each load-generator client.
pub fn channel_transports(shards: usize) -> (Vec<ChannelTransport>, ChannelConnector) {
    let mut transports = Vec::with_capacity(shards);
    let mut txs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = channel();
        txs.push(tx);
        transports.push(ChannelTransport { rx });
    }
    (transports, ChannelConnector { txs })
}

impl ServerTransport for ChannelTransport {
    type Peer = Sender<Vec<u8>>;

    fn recv(&mut self, timeout: Duration) -> io::Result<Option<Datagram<Self::Peer>>> {
        let deadline = Instant::now() + CHANNEL_SPIN;
        let q = loop {
            match self.rx.try_recv() {
                Ok(q) => break q,
                Err(TryRecvError::Empty) => {
                    if Instant::now() >= deadline {
                        // Spin budget exhausted: park in the blocking
                        // receive until traffic resumes.
                        match self.rx.recv_timeout(timeout) {
                            Ok(q) => break q,
                            Err(RecvTimeoutError::Timeout) => return Ok(None),
                            // Every client hung up: treat as a quiet
                            // socket; the shard exits when its stop
                            // flag is set.
                            Err(RecvTimeoutError::Disconnected) => return Ok(None),
                        }
                    }
                    std::thread::yield_now();
                }
                Err(TryRecvError::Disconnected) => return Ok(None),
            }
        };
        Ok(Some(Datagram {
            payload: q.payload,
            resolver_ip: q.resolver_ip,
            server_ip: Some(q.server_ip),
            stream: q.stream,
            peer: q.reply,
        }))
    }

    fn send(&mut self, peer: &Self::Peer, payload: &[u8]) -> io::Result<()> {
        // A client that timed out and dropped its receiver is not a
        // server error (matches UDP fire-and-forget semantics).
        let _ = peer.send(payload.to_vec());
        Ok(())
    }
}

/// One load-generator client's view of the channel substrate.
pub struct ChannelClient {
    connector: ChannelConnector,
    reply_tx: Sender<Vec<u8>>,
    reply_rx: Receiver<Vec<u8>>,
}

impl ChannelClient {
    /// A client endpoint with its own reply queue.
    pub fn new(connector: ChannelConnector) -> ChannelClient {
        let (reply_tx, reply_rx) = channel();
        ChannelClient {
            connector,
            reply_tx,
            reply_rx,
        }
    }
}

impl ChannelClient {
    fn exchange_inner(
        &mut self,
        shard: usize,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
        stream: bool,
    ) -> io::Result<Vec<u8>> {
        // Drain any stale reply from a previously timed-out exchange so
        // responses cannot ever pair with the wrong query.
        while self.reply_rx.try_recv().is_ok() {}
        let tx = &self.connector.txs[shard % self.connector.txs.len()];
        tx.send(ChannelQuery {
            payload: payload.to_vec(),
            resolver_ip,
            server_ip,
            stream,
            reply: self.reply_tx.clone(),
        })
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard gone"))?;
        // Spin for the reply before parking: under load the shard
        // answers well inside the spin budget, so the wake-latency tax
        // is paid only on genuinely slow (or timed-out) exchanges.
        let deadline = Instant::now() + CHANNEL_SPIN;
        loop {
            match self.reply_rx.try_recv() {
                Ok(bytes) => return Ok(bytes),
                Err(TryRecvError::Empty) => {
                    if Instant::now() >= deadline {
                        return self
                            .reply_rx
                            .recv_timeout(timeout)
                            .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "no response"));
                    }
                    std::thread::yield_now();
                }
                Err(TryRecvError::Disconnected) => {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "shard gone"))
                }
            }
        }
    }
}

impl ClientTransport for ChannelClient {
    fn exchange(
        &mut self,
        shard: usize,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        self.exchange_inner(shard, server_ip, resolver_ip, payload, timeout, false)
    }

    fn exchange_stream(
        &mut self,
        shard: usize,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        self.exchange_inner(shard, server_ip, resolver_ip, payload, timeout, true)
    }

    fn num_shards(&self) -> usize {
        self.connector.txs.len()
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Failure rates for [`FaultInjector`], all in `[0, 1]`. Rates are
/// evaluated per exchange in order: first the timeout draw, then the
/// SERVFAIL draw on the remainder.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability an exchange times out (the query is dropped without
    /// reaching the server and `ErrorKind::TimedOut` is returned).
    pub timeout_rate: f64,
    /// Probability an exchange is answered with a synthesized SERVFAIL
    /// (RFC 1035 RCODE 2) echoing the query's ID and question, without
    /// reaching the server.
    pub servfail_rate: f64,
    /// RNG seed; the fault sequence is a pure function of this.
    pub seed: u64,
}

impl FaultConfig {
    /// A fault-free configuration (useful as a baseline).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            timeout_rate: 0.0,
            servfail_rate: 0.0,
            seed,
        }
    }
}

/// Wraps any [`ClientTransport`] with seeded, rate-configured upstream
/// failures so resolver retry/backoff and negative-cache paths are
/// exercisable deterministically: a drawn *timeout* swallows the query
/// and returns `ErrorKind::TimedOut`; a drawn *SERVFAIL* flips the
/// query bytes into a server-failure response (QR set, RCODE 2, counts
/// untouched so the question section still echoes back).
pub struct FaultInjector<C> {
    inner: C,
    cfg: FaultConfig,
    rng: ChaCha12Rng,
    injected_timeouts: u64,
    injected_servfails: u64,
}

impl<C: ClientTransport> FaultInjector<C> {
    /// Wraps `inner`, drawing faults from a ChaCha12 stream seeded with
    /// `cfg.seed`.
    pub fn new(inner: C, cfg: FaultConfig) -> FaultInjector<C> {
        FaultInjector {
            inner,
            cfg,
            rng: ChaCha12Rng::seed_from_u64(cfg.seed),
            injected_timeouts: 0,
            injected_servfails: 0,
        }
    }

    /// How many exchanges were failed as timeouts so far.
    pub fn injected_timeouts(&self) -> u64 {
        self.injected_timeouts
    }

    /// How many exchanges were answered with a synthesized SERVFAIL.
    pub fn injected_servfails(&self) -> u64 {
        self.injected_servfails
    }

    /// Consumes the wrapper, returning the inner transport.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: ClientTransport> ClientTransport for FaultInjector<C> {
    fn exchange(
        &mut self,
        shard: usize,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        if self.rng.random_bool(self.cfg.timeout_rate) {
            self.injected_timeouts += 1;
            return Err(io::Error::new(io::ErrorKind::TimedOut, "injected timeout"));
        }
        if self.rng.random_bool(self.cfg.servfail_rate) {
            self.injected_servfails += 1;
            let mut resp = payload.to_vec();
            if resp.len() >= 4 {
                resp[2] |= 0x80; // QR: this is a response
                resp[2] &= !0x02; // TC clear
                resp[3] = (resp[3] & 0xF0) | 0x02; // RCODE 2: SERVFAIL
            }
            return Ok(resp);
        }
        self.inner
            .exchange(shard, server_ip, resolver_ip, payload, timeout)
    }

    fn exchange_stream(
        &mut self,
        shard: usize,
        server_ip: Ipv4Addr,
        resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        // Fault draws model lossy datagram paths; the TCP retry leg is
        // forwarded unfaulted so truncation recovery stays observable.
        self.inner
            .exchange_stream(shard, server_ip, resolver_ip, payload, timeout)
    }

    fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }
}

// ---------------------------------------------------------------------
// Loopback UDP transport.
// ---------------------------------------------------------------------

/// Largest datagram either side will read. EDNS0 advertises up to 4096
/// in practice; our messages are far smaller.
pub const MAX_DATAGRAM: usize = 4096;

/// One shard's UDP socket.
pub struct UdpTransport {
    socket: UdpSocket,
    buf: Box<[u8; MAX_DATAGRAM]>,
}

impl UdpTransport {
    /// Binds an ephemeral loopback socket for one shard.
    pub fn bind() -> io::Result<UdpTransport> {
        let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        Ok(UdpTransport {
            socket,
            buf: Box::new([0; MAX_DATAGRAM]),
        })
    }

    /// Where clients should send.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl ServerTransport for UdpTransport {
    type Peer = SocketAddr;

    fn recv(&mut self, timeout: Duration) -> io::Result<Option<Datagram<Self::Peer>>> {
        self.socket.set_read_timeout(Some(timeout))?;
        match self.socket.recv_from(&mut self.buf[..]) {
            Ok((n, peer)) => {
                let resolver_ip = match peer.ip() {
                    std::net::IpAddr::V4(v4) => v4,
                    std::net::IpAddr::V6(_) => Ipv4Addr::LOCALHOST,
                };
                Ok(Some(Datagram {
                    payload: self.buf[..n].to_vec(),
                    resolver_ip,
                    server_ip: None,
                    stream: false,
                    peer,
                }))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn send(&mut self, peer: &Self::Peer, payload: &[u8]) -> io::Result<()> {
        self.socket.send_to(payload, peer)?;
        Ok(())
    }
}

/// A load-generator client with one socket, spreading queries over the
/// shard sockets it was given.
pub struct UdpClient {
    socket: UdpSocket,
    shard_addrs: Vec<SocketAddr>,
    buf: Box<[u8; MAX_DATAGRAM]>,
}

impl UdpClient {
    /// Binds an ephemeral loopback client socket.
    pub fn connect(shard_addrs: Vec<SocketAddr>) -> io::Result<UdpClient> {
        assert!(!shard_addrs.is_empty(), "need at least one shard address");
        let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        Ok(UdpClient {
            socket,
            shard_addrs,
            buf: Box::new([0; MAX_DATAGRAM]),
        })
    }
}

impl ClientTransport for UdpClient {
    fn exchange(
        &mut self,
        shard: usize,
        _server_ip: Ipv4Addr,
        _resolver_ip: Ipv4Addr,
        payload: &[u8],
        timeout: Duration,
    ) -> io::Result<Vec<u8>> {
        let dest = self.shard_addrs[shard % self.shard_addrs.len()];
        self.socket.send_to(payload, dest)?;
        self.socket.set_read_timeout(Some(timeout))?;
        loop {
            let (n, from) = self.socket.recv_from(&mut self.buf[..]).map_err(|e| {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    io::Error::new(io::ErrorKind::TimedOut, "no response")
                } else {
                    e
                }
            })?;
            // A straggler from a timed-out earlier exchange may arrive
            // from a different shard; only accept the queried peer.
            if from == dest {
                return Ok(self.buf[..n].to_vec());
            }
        }
    }

    fn num_shards(&self) -> usize {
        self.shard_addrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_round_trip() {
        let (mut transports, connector) = channel_transports(2);
        let mut client = ChannelClient::new(connector);
        let payload = vec![1, 2, 3];
        let h = std::thread::spawn({
            let p = payload.clone();
            move || {
                let t = &mut transports[1];
                let dg = t.recv(Duration::from_secs(1)).unwrap().unwrap();
                assert_eq!(dg.payload, p);
                assert_eq!(dg.resolver_ip, Ipv4Addr::new(9, 8, 7, 6));
                assert_eq!(dg.server_ip, Some(Ipv4Addr::new(1, 2, 3, 4)));
                t.send(&dg.peer, &[4, 5]).unwrap();
            }
        });
        let resp = client
            .exchange(
                1,
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(9, 8, 7, 6),
                &payload,
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(resp, vec![4, 5]);
        h.join().unwrap();
    }

    #[test]
    fn channel_recv_times_out_quietly() {
        let (mut transports, _connector) = channel_transports(1);
        let got = transports[0].recv(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    /// A loopback ClientTransport answering every exchange with `[0xAA]`.
    struct EchoOk;

    impl ClientTransport for EchoOk {
        fn exchange(
            &mut self,
            _shard: usize,
            _server_ip: Ipv4Addr,
            _resolver_ip: Ipv4Addr,
            _payload: &[u8],
            _timeout: Duration,
        ) -> io::Result<Vec<u8>> {
            Ok(vec![0xAA])
        }

        fn num_shards(&self) -> usize {
            1
        }
    }

    fn drive(cfg: FaultConfig, n: usize) -> (Vec<u8>, u64, u64) {
        // A syntactically valid query header: ID 0x1234, RD set, QDCOUNT 1.
        let query = [
            0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut t = FaultInjector::new(EchoOk, cfg);
        let mut outcomes = Vec::with_capacity(n);
        for _ in 0..n {
            outcomes.push(
                match t.exchange(
                    0,
                    Ipv4Addr::UNSPECIFIED,
                    Ipv4Addr::UNSPECIFIED,
                    &query,
                    Duration::from_millis(1),
                ) {
                    Ok(resp) if resp == [0xAA] => 0u8,
                    Ok(resp) => {
                        // Synthesized SERVFAIL: same ID, QR set, RCODE 2.
                        assert_eq!(&resp[..2], &query[..2]);
                        assert_eq!(resp[2] & 0x80, 0x80);
                        assert_eq!(resp[3] & 0x0F, 0x02);
                        1
                    }
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
                        2
                    }
                },
            );
        }
        (outcomes, t.injected_timeouts(), t.injected_servfails())
    }

    #[test]
    fn fault_injector_respects_rates_and_seed() {
        let cfg = FaultConfig {
            timeout_rate: 0.25,
            servfail_rate: 0.25,
            seed: 0xFA17,
        };
        let (a, timeouts, servfails) = drive(cfg, 2000);
        let (b, ..) = drive(cfg, 2000);
        assert_eq!(a, b, "same seed must give the same fault sequence");
        // 25% timeout, then 25% of the remainder SERVFAIL ≈ 18.75%.
        assert!((400..600).contains(&(timeouts as usize)), "{timeouts}");
        assert!((275..475).contains(&(servfails as usize)), "{servfails}");
        let (c, ..) = drive(
            FaultConfig {
                seed: 0xFA18,
                ..cfg
            },
            2000,
        );
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn fault_free_injector_is_transparent() {
        let (outcomes, timeouts, servfails) = drive(FaultConfig::none(7), 200);
        assert!(outcomes.iter().all(|&o| o == 0));
        assert_eq!((timeouts, servfails), (0, 0));
    }

    #[test]
    fn udp_round_trip_over_loopback() {
        let mut server = UdpTransport::bind().unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = UdpClient::connect(vec![addr]).unwrap();
        let h = std::thread::spawn(move || {
            let dg = server.recv(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(dg.payload, vec![7, 7]);
            assert!(dg.server_ip.is_none());
            server.send(&dg.peer, &[9]).unwrap();
        });
        let resp = client
            .exchange(
                0,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::UNSPECIFIED,
                &[7, 7],
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(resp, vec![9]);
        h.join().unwrap();
    }
}
