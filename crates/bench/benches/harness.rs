//! Macro benchmarks: the figure-regeneration pipelines themselves —
//! world generation, NetSession analysis, one simulated day of the
//! roll-out, resolution paths, and the §6 study at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use eum_bench::{tiny_internet, BENCH_SEED};
use eum_mapping::{run_study, StudyConfig};
use eum_netmodel::{Internet, InternetConfig};
use eum_sim::{PairDataset, Scenario, ScenarioConfig};
use std::hint::black_box;

fn bench_worlds(c: &mut Criterion) {
    c.bench_function("generate_tiny_internet", |b| {
        b.iter(|| Internet::generate(InternetConfig::tiny(black_box(BENCH_SEED))))
    });
    let net = tiny_internet();
    c.bench_function("netsession_collect", |b| {
        b.iter(|| PairDataset::collect(black_box(&net)))
    });
    c.bench_function("scenario_build_tiny", |b| {
        b.iter(|| Scenario::build(ScenarioConfig::tiny(BENCH_SEED)))
    });
}

fn bench_study(c: &mut Criterion) {
    let net = tiny_internet();
    let cfg = StudyConfig::quick(BENCH_SEED);
    let mut group = c.benchmark_group("deploy_study");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| run_study(black_box(&net), &cfg)));
    group.finish();
}

fn bench_rollout_day(c: &mut Criterion) {
    // One full simulated day, measured by running a 1-day roll-out.
    let mut group = c.benchmark_group("rollout");
    group.sample_size(10);
    group.bench_function("one_day_tiny", |b| {
        b.iter_with_setup(
            || {
                let mut cfg = ScenarioConfig::tiny(BENCH_SEED);
                cfg.rollout.days = 1;
                cfg.rollout.start_day = 0;
                cfg.rollout.end_day = 1;
                cfg.rollout.window_days = 1;
                Scenario::build(cfg)
            },
            |scenario| scenario.run_rollout(),
        )
    });
    group.finish();
}

criterion_group!(benches, bench_worlds, bench_study, bench_rollout_day);
criterion_main!(benches);
