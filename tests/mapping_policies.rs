//! Integration: the three mapping policies compared on one world — the
//! cross-crate version of the paper's §6 claims, exercised through the
//! actual MappingSystem (not the ping-matrix study).

use end_user_mapping::cdn::{
    deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig,
};
use end_user_mapping::mapping::{MappingConfig, MappingPolicy, MappingSystem};
use end_user_mapping::netmodel::{Internet, InternetConfig};
use end_user_mapping::stats::WeightedSample;

/// Builds a mapping system under `policy` and returns the demand-weighted
/// client→assigned-cluster distance sample over public-resolver pairs.
fn assignment_distances(policy: MappingPolicy) -> WeightedSample {
    let mut net = Internet::generate(InternetConfig::tiny(0x90C1));
    let sites = deployment_universe(0x90C1, 32);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 3,
            cache_objects_per_server: 128,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(0x90C1));
    let mapping = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            policy,
            max_ping_targets: 60,
            ..MappingConfig::default()
        },
    );

    let mut sample = WeightedSample::new();
    for b in &net.blocks {
        for (rid, w) in &b.ldns {
            if !net.is_public_resolver(*rid) {
                continue;
            }
            let cluster = if policy.uses_ecs() {
                mapping
                    .assigned_cluster_for_block(b.prefix)
                    .or_else(|| mapping.assigned_cluster_for_ldns(net.resolver(*rid).ip))
            } else {
                mapping.assigned_cluster_for_ldns(net.resolver(*rid).ip)
            };
            let cluster = cluster.expect("assignment exists");
            let d = b.loc.distance_miles(&cdn.cluster(cluster).loc);
            sample.push_weighted(d, b.demand * w);
        }
    }
    sample
}

#[test]
fn end_user_mapping_beats_ns_for_public_clients() {
    let mut eu = assignment_distances(MappingPolicy::end_user_default());
    let mut ns = assignment_distances(MappingPolicy::NsBased);
    let eu_med = eu.median().unwrap();
    let ns_med = ns.median().unwrap();
    // The gap grows with deployment density (§6); at 32 clusters a 30%
    // median improvement is already decisive.
    assert!(
        eu_med < ns_med * 0.7,
        "EU median {eu_med:.0} mi should be well below NS {ns_med:.0} mi"
    );
    // The tail gap is even more pronounced (the paper's p99 argument).
    let eu_p95 = eu.quantile(0.95).unwrap();
    let ns_p95 = ns.quantile(0.95).unwrap();
    assert!(eu_p95 < ns_p95, "EU p95 {eu_p95:.0} vs NS p95 {ns_p95:.0}");
}

#[test]
fn client_aware_ns_sits_between_ns_and_eu() {
    let mut eu = assignment_distances(MappingPolicy::end_user_default());
    let cans = assignment_distances(MappingPolicy::ClientAwareNs);
    let ns = assignment_distances(MappingPolicy::NsBased);
    let (e, c, n) = (eu.mean().unwrap(), cans.mean().unwrap(), ns.mean().unwrap());
    assert!(
        e <= c * 1.05,
        "EU mean {e:.0} should not exceed CANS {c:.0}"
    );
    assert!(
        c <= n * 1.05,
        "CANS mean {c:.0} should not exceed NS {n:.0} (it optimizes the cluster, not the LDNS)"
    );
    let _ = eu.quantile(0.99);
}

#[test]
fn block_granularity_ablation_finer_is_closer() {
    // §5.1's tradeoff through the real system: /24 units map clients at
    // least as close as /16 units.
    let fine = {
        let s = assignment_distances(MappingPolicy::EndUser {
            prefix_len: 24,
            bgp_aggregate: false,
        });
        s.mean().unwrap()
    };
    let coarse = {
        let s = assignment_distances(MappingPolicy::EndUser {
            prefix_len: 16,
            bgp_aggregate: false,
        });
        s.mean().unwrap()
    };
    assert!(
        fine <= coarse * 1.02,
        "/24 mean {fine:.0} mi should not exceed /16 mean {coarse:.0} mi"
    );
}
