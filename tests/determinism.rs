//! Integration: reproducibility — every figure is a pure function of the
//! seed. This is the property that makes EXPERIMENTS.md's recorded
//! numbers re-checkable.

use end_user_mapping::mapping::{run_study, StudyConfig};
use end_user_mapping::netmodel::{Internet, InternetConfig};
use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::{Metric, PairDataset};

#[test]
fn netsession_analyses_are_identical_across_runs() {
    let build = || {
        let net = Internet::generate(InternetConfig::tiny(0xDE7));
        let ds = PairDataset::collect(&net);
        let mut s = ds.distance_sample(&net, |_, _| true);
        (ds.len(), ds.total_weight(), s.median().unwrap())
    };
    assert_eq!(build(), build());
}

#[test]
fn deploy_study_is_identical_across_runs() {
    let net = Internet::generate(InternetConfig::tiny(0xDE8));
    let a = run_study(&net, &StudyConfig::quick(5));
    let b = run_study(&net, &StudyConfig::quick(5));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.mean_ms, y.mean_ms);
        assert_eq!(x.p95_ms, y.p95_ms);
        assert_eq!(x.p99_ms, y.p99_ms);
    }
}

#[test]
fn rollout_report_is_identical_across_runs() {
    let run = || {
        let mut cfg = ScenarioConfig::tiny(0xDE9);
        // Shorten for test budget: 10 days with the ramp inside.
        cfg.rollout.days = 10;
        cfg.rollout.start_day = 4;
        cfg.rollout.end_day = 6;
        cfg.rollout.window_days = 4;
        let r = Scenario::build(cfg).run_rollout();
        (
            r.rum.len(),
            r.failed_views,
            r.counters.rows(),
            r.before_after(Metric::Rtt, true),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = Internet::generate(InternetConfig::tiny(1));
    let b = Internet::generate(InternetConfig::tiny(2));
    let same_blocks = a.blocks.len() == b.blocks.len()
        && a.blocks
            .iter()
            .zip(&b.blocks)
            .all(|(x, y)| x.demand == y.demand);
    assert!(!same_blocks);
}
