//! Mapping policies: the three request-routing schemes the paper compares.

use serde::{Deserialize, Serialize};

/// How the mapping system identifies the client behind a DNS query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Traditional NS-based mapping (Equation 1): the mapping unit is the
    /// LDNS; every client of an LDNS gets the same answer.
    NsBased,
    /// End-user mapping (Equation 2): when the query carries an ECS
    /// prefix, map by the client's IP block; fall back to NS-based for
    /// non-ECS queries.
    EndUser {
        /// The /x block granularity of mapping units (≤ 24, §5.1).
        prefix_len: u8,
        /// Combine /x blocks sharing a BGP CIDR into one unit (§5.1).
        bgp_aggregate: bool,
    },
    /// Client-aware NS-based mapping (§6 "CANS"): the unit is still the
    /// LDNS, but scoring minimizes the demand-weighted latency to the
    /// LDNS's *client cluster* instead of to the LDNS itself. Needs
    /// client-LDNS discovery but no ECS.
    ClientAwareNs,
}

impl MappingPolicy {
    /// The end-user policy at the paper's default granularity: /24 blocks
    /// with BGP aggregation.
    pub fn end_user_default() -> MappingPolicy {
        MappingPolicy::EndUser {
            prefix_len: 24,
            bgp_aggregate: true,
        }
    }

    /// True when this policy consumes ECS.
    pub fn uses_ecs(&self) -> bool {
        matches!(self, MappingPolicy::EndUser { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_end_user_uses_ecs() {
        assert!(!MappingPolicy::NsBased.uses_ecs());
        assert!(!MappingPolicy::ClientAwareNs.uses_ecs());
        assert!(MappingPolicy::end_user_default().uses_ecs());
    }

    #[test]
    fn default_granularity_is_24_with_bgp() {
        match MappingPolicy::end_user_default() {
            MappingPolicy::EndUser {
                prefix_len,
                bgp_aggregate,
            } => {
                assert_eq!(prefix_len, 24);
                assert!(bgp_aggregate);
            }
            _ => panic!("wrong variant"),
        }
    }
}
