//! eum-lint: the workspace's self-hosted invariant checker.
//!
//! The EUM repo's performance story rests on properties rustc cannot see:
//! the authoritative serve path allocates nothing, takes no locks, and
//! never panics; every relaxed atomic is a deliberate choice; unsafe code
//! exists only where the zero-allocation proof needs a counting
//! allocator. This crate walks the workspace with a lightweight,
//! dependency-free scanner ([`scan`]), applies the rules ([`rules`])
//! declared in `lint.toml` ([`config`]), and reports rustc-style
//! diagnostics ([`runner`]). `scripts/check.sh` runs it between clippy
//! and the tests, so a violation fails the gate with a `file:line:col`
//! pointer instead of a benchmark regression three PRs later.

#![forbid(unsafe_code)]

pub mod config;
pub mod graph;
pub mod rules;
pub mod runner;
pub mod scan;
