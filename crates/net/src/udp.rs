//! The SO_REUSEPORT sharded, kernel-batched UDP transport.
//!
//! [`ReuseportUdpTransport`] implements authd's
//! [`BatchServerTransport`]: all shard sockets share **one** port and
//! the kernel 4-tuple-hashes incoming datagrams across them, so clients
//! need no shard-picking logic and adding a shard is invisible on the
//! wire. Each `recv_batch` → `serve` → `flush` cycle moves up to
//! [`BatchConfig::batch`] datagrams with two syscalls (`recvmmsg` +
//! `sendmmsg`) instead of `2 × batch`, and every buffer — receive slots,
//! reply slots, peer addresses, scatter-gather headers — is allocated
//! once at bind time, so a warm cycle allocates nothing (asserted by
//! `tests/batch_zero_alloc.rs`).
//!
//! A portable path (`recv_from`/`send_to` per datagram, first receive
//! blocking with `SO_RCVTIMEO`, the rest drained nonblocking) serves
//! non-Linux targets and, via [`BatchConfig::force_portable`], lets the
//! batched-vs-single-syscall comparison run on one machine.

use eum_authd::{BatchDatagram, BatchServerTransport, MAX_DATAGRAM};
use eum_telemetry::{Counter, Histogram, Registry};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

#[cfg(target_os = "linux")]
use crate::sys;

/// Tuning for [`ReuseportUdpTransport`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most datagrams moved per kernel call (and per serve cycle).
    pub batch: usize,
    /// Pin shard `i`'s serving thread to CPU `i % available_parallelism`.
    pub pin_cpus: bool,
    /// Use the portable single-datagram path even where
    /// `recvmmsg`/`sendmmsg` exist (the measurement baseline).
    pub force_portable: bool,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            batch: 32,
            pin_cpus: false,
            force_portable: false,
        }
    }
}

/// Per-shard transport instruments, registered once by
/// [`ReuseportUdpTransport::attach_metrics`] and touched with `&self`
/// atomics on the batch cycle (no allocation, no locks).
struct BatchMetrics {
    /// Datagrams returned per `recv_batch` call — how full the kernel
    /// batches actually run (1 = no batching benefit, `batch` = ceiling).
    fill: Arc<Histogram>,
    /// `sendmmsg` calls that accepted fewer datagrams than staged.
    partial_sends: Arc<Counter>,
}

/// One shard's socket plus every buffer its batch cycle touches.
pub struct ReuseportUdpTransport {
    socket: UdpSocket,
    batch: usize,
    portable: bool,
    pin_cpu: Option<usize>,
    /// Last read timeout applied to the socket, so the steady state skips
    /// the `setsockopt` (the server loop passes a constant timeout).
    read_timeout: Option<Duration>,
    /// `batch` receive slots of MAX_DATAGRAM bytes each.
    rbufs: Box<[u8]>,
    rlens: Box<[usize]>,
    /// Source address per receive slot; replies go back to it.
    peers: Box<[SocketAddrV4]>,
    /// `batch` reply slots of MAX_DATAGRAM bytes each.
    sbufs: Box<[u8]>,
    /// Staged reply length per slot; 0 = no reply for that datagram.
    slens: Box<[usize]>,
    /// Registered instrument handles (`None`: unobserved).
    metrics: Option<BatchMetrics>,
    #[cfg(target_os = "linux")]
    mm: sys::MmsgBatch,
}

impl ReuseportUdpTransport {
    /// Binds one shard socket on `addr` (port 0 = ephemeral). On Linux
    /// the socket carries `SO_REUSEPORT` so more shards can join the
    /// same port; elsewhere it is a plain std socket.
    pub fn bind(
        addr: SocketAddrV4,
        cfg: &BatchConfig,
        pin_cpu: Option<usize>,
    ) -> io::Result<ReuseportUdpTransport> {
        #[cfg(target_os = "linux")]
        let socket = sys::bind_reuseport(addr)?;
        #[cfg(not(target_os = "linux"))]
        let socket = UdpSocket::bind(addr)?;
        Ok(Self::from_socket(socket, cfg, pin_cpu))
    }

    fn from_socket(
        socket: UdpSocket,
        cfg: &BatchConfig,
        pin_cpu: Option<usize>,
    ) -> ReuseportUdpTransport {
        let batch = cfg.batch.max(1);
        ReuseportUdpTransport {
            socket,
            batch,
            portable: cfg.force_portable || cfg!(not(target_os = "linux")),
            pin_cpu,
            read_timeout: None,
            rbufs: vec![0u8; batch * MAX_DATAGRAM].into_boxed_slice(),
            rlens: vec![0usize; batch].into_boxed_slice(),
            peers: vec![SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0); batch].into_boxed_slice(),
            sbufs: vec![0u8; batch * MAX_DATAGRAM].into_boxed_slice(),
            slens: vec![0usize; batch].into_boxed_slice(),
            metrics: None,
            #[cfg(target_os = "linux")]
            mm: sys::MmsgBatch::new(batch),
        }
    }

    /// Registers this shard's batch instruments in `registry` (labeled
    /// `shard="<shard>"`): the `eum_net_recv_batch_fill` histogram of
    /// datagrams returned per `recvmmsg` batch and the
    /// `eum_net_sendmmsg_partial_total` counter of partial `sendmmsg`
    /// calls. Registration allocates; the per-cycle recording is
    /// atomics only, so the warm batch cycle stays allocation-free.
    pub fn attach_metrics(&mut self, registry: &Registry, shard: usize) {
        let s = shard.to_string();
        let l: &[(&str, &str)] = &[("shard", &s)];
        self.metrics = Some(BatchMetrics {
            fill: registry.histogram(
                "eum_net_recv_batch_fill",
                "Datagrams returned per recvmmsg batch",
                l,
            ),
            partial_sends: registry.counter(
                "eum_net_sendmmsg_partial_total",
                "sendmmsg calls that sent fewer datagrams than staged",
                l,
            ),
        });
    }

    /// Where clients should send for this shard.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Binds `shards` sockets for one server. On Linux they all share
    /// one `SO_REUSEPORT` port (the returned addresses are identical and
    /// the kernel spreads load); elsewhere each shard gets its own
    /// ephemeral port and the returned addresses differ. Either way the
    /// address list is what a [`crate::SocketClient`] takes.
    pub fn bind_shards(
        shards: usize,
        cfg: &BatchConfig,
    ) -> io::Result<(Vec<ReuseportUdpTransport>, Vec<SocketAddr>)> {
        assert!(shards > 0, "need at least one shard");
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pin = |i: usize| cfg.pin_cpus.then_some(i % cpus);
        let mut transports = Vec::with_capacity(shards);
        let mut addrs = Vec::with_capacity(shards);
        #[cfg(target_os = "linux")]
        {
            let first = ReuseportUdpTransport::bind(
                SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
                cfg,
                pin(0),
            )?;
            let shared = first.local_addr()?;
            let port = match shared {
                SocketAddr::V4(a) => a.port(),
                SocketAddr::V6(_) => unreachable!("bound a V4 socket"),
            };
            addrs.push(shared);
            transports.push(first);
            for i in 1..shards {
                transports.push(ReuseportUdpTransport::bind(
                    SocketAddrV4::new(Ipv4Addr::LOCALHOST, port),
                    cfg,
                    pin(i),
                )?);
                addrs.push(shared);
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            for i in 0..shards {
                let t = ReuseportUdpTransport::bind(
                    SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
                    cfg,
                    pin(i),
                )?;
                addrs.push(t.local_addr()?);
                transports.push(t);
            }
        }
        Ok((transports, addrs))
    }

    /// True when this transport uses the single-datagram fallback.
    pub fn is_portable(&self) -> bool {
        self.portable
    }

    // lint: allow(serve-index) — every index below is a batch slot
    // `count < self.batch`, and rlens/peers hold `batch` entries while
    // rbufs holds `batch * MAX_DATAGRAM` bytes, all sized at bind.
    fn recv_batch_portable(&mut self) -> io::Result<usize> {
        // First receive blocks (bounded by SO_RCVTIMEO set by the
        // caller); V6 peers cannot occur on our V4 sockets but are
        // dropped defensively rather than unwrapped.
        let mut count = match self.socket.recv_from(&mut self.rbufs[..MAX_DATAGRAM]) {
            Ok((n, SocketAddr::V4(p))) => {
                self.rlens[0] = n;
                self.peers[0] = p;
                1usize
            }
            Ok((_, SocketAddr::V6(_))) => return Ok(0),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                return Ok(0)
            }
            Err(e) => return Err(e),
        };
        // Drain whatever else is already queued, without blocking.
        self.socket.set_nonblocking(true)?;
        while count < self.batch {
            let start = count * MAX_DATAGRAM;
            match self
                .socket
                .recv_from(&mut self.rbufs[start..start + MAX_DATAGRAM])
            {
                Ok((n, SocketAddr::V4(p))) => {
                    self.rlens[count] = n;
                    self.peers[count] = p;
                    count += 1;
                }
                Ok((_, SocketAddr::V6(_))) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    self.socket.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        self.socket.set_nonblocking(false)?;
        Ok(count)
    }
}

impl BatchServerTransport for ReuseportUdpTransport {
    fn on_thread_start(&mut self) {
        #[cfg(target_os = "linux")]
        if let Some(cpu) = self.pin_cpu {
            // Best-effort: a restricted affinity mask (containers, taskset)
            // must not kill the shard.
            let _ = sys::pin_current_thread(cpu);
        }
        #[cfg(not(target_os = "linux"))]
        let _ = self.pin_cpu;
    }

    fn recv_batch(&mut self, timeout: Duration) -> io::Result<usize> {
        if self.read_timeout != Some(timeout) {
            self.socket.set_read_timeout(Some(timeout))?;
            self.read_timeout = Some(timeout);
        }
        for l in self.slens.iter_mut() {
            *l = 0;
        }
        let n = if self.portable {
            self.recv_batch_portable()?
        } else {
            #[cfg(target_os = "linux")]
            {
                self.mm.recv(
                    &self.socket,
                    &mut self.rbufs,
                    MAX_DATAGRAM,
                    &mut self.rlens,
                    &mut self.peers,
                )?
            }
            #[cfg(not(target_os = "linux"))]
            // Unreachable: `portable` is always true off Linux.
            0
        };
        if n > 0 {
            if let Some(m) = self.metrics.as_ref() {
                m.fill.record(n as u64);
            }
        }
        Ok(n)
    }

    // lint: allow(serve-index) — `i` is a slot index below the last
    // recv_batch count per the trait contract; buffers are batch-sized.
    fn datagram(&self, i: usize) -> BatchDatagram<'_> {
        let start = i * MAX_DATAGRAM;
        BatchDatagram {
            payload: &self.rbufs[start..start + self.rlens[i]],
            resolver_ip: *self.peers[i].ip(),
            server_ip: None,
        }
    }

    // lint: allow(serve-index) — `i` is a slot index below the last
    // recv_batch count; the copy length is capped at the slot size.
    fn stage_reply(&mut self, i: usize, reply: &[u8]) {
        let n = reply.len().min(MAX_DATAGRAM);
        let start = i * MAX_DATAGRAM;
        self.sbufs[start..start + n].copy_from_slice(&reply[..n]);
        self.slens[i] = n;
    }

    // lint: allow(serve-index) — slot arithmetic over bind-time-sized
    // buffers, indices below self.batch.
    fn flush(&mut self) -> io::Result<()> {
        if self.portable {
            for i in 0..self.batch {
                let len = self.slens[i];
                if len == 0 {
                    continue;
                }
                let start = i * MAX_DATAGRAM;
                self.socket
                    .send_to(&self.sbufs[start..start + len], self.peers[i])?;
                self.slens[i] = 0;
            }
            return Ok(());
        }
        #[cfg(target_os = "linux")]
        {
            let (_sent, partial_calls) = self.mm.send(
                &self.socket,
                &self.sbufs,
                MAX_DATAGRAM,
                &self.slens,
                &self.peers,
            )?;
            if partial_calls > 0 {
                if let Some(m) = self.metrics.as_ref() {
                    m.partial_sends.add(partial_calls as u64);
                }
            }
            for l in self.slens.iter_mut() {
                *l = 0;
            }
        }
        Ok(())
    }
}
