//! The BGP routing table view.
//!
//! §5.1: "One heuristic approach to reducing the number of mapping units
//! for end-user mapping is to use the IP blocks (i.e., CIDRs) in BGP feeds
//! that are the units for routing in the Internet. In particular, if a set
//! of /24 IP blocks belong within the same BGP CIDR, these blocks can be
//! combined since they are likely proximal in the network sense."
//!
//! [`BgpTable`] is the feed the mapping system's measurement component
//! collects from its BGP sessions: announced CIDRs with their origin AS,
//! plus the covering-CIDR query used for mapping-unit aggregation.

use eum_geo::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A table of announced CIDRs with origin ASes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BgpTable {
    /// All announcements keyed by prefix (one origin per prefix; the
    /// synthetic Internet has no MOAS conflicts).
    entries: HashMap<Prefix, Asn>,
    /// Bit `l` set when some announced prefix has length `l` (lengths
    /// 0..=32 fit a u64), for bounded covering lookups without a sort.
    len_mask: u64,
}

impl BgpTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announces `prefix` with origin `asn`. Re-announcing replaces the
    /// origin.
    pub fn announce(&mut self, prefix: Prefix, asn: Asn) {
        self.entries.insert(prefix, asn);
        self.len_mask |= 1u64 << prefix.len();
    }

    /// Number of announced CIDRs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is announced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most specific announced CIDR covering `p` (including `p`
    /// itself), with its origin.
    pub fn covering(&self, p: Prefix) -> Option<(Prefix, Asn)> {
        // Walk announced lengths from most to least specific, but no more
        // specific than p itself (a /28 announcement cannot cover a /24):
        // mask off bits above p.len(), then peel the highest set bit.
        let mut mask = self.len_mask & (((1u64 << p.len()) << 1) - 1);
        while mask != 0 {
            let len = (63 - mask.leading_zeros()) as u8;
            mask &= !(1u64 << len);
            let candidate = p.truncate(len);
            if let Some(asn) = self.entries.get(&candidate) {
                return Some((candidate, *asn));
            }
        }
        None
    }

    /// The origin AS for the most specific covering CIDR.
    pub fn origin(&self, p: Prefix) -> Option<Asn> {
        self.covering(p).map(|(_, asn)| asn)
    }

    /// Iterates announcements in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &Asn)> {
        self.entries.iter()
    }

    /// Groups the given blocks by their covering CIDR — the §5.1
    /// aggregation that reduced 3.76M /24 blocks to 444K mapping units.
    /// Blocks with no covering announcement group under themselves.
    pub fn aggregate<'a>(
        &self,
        blocks: impl IntoIterator<Item = &'a Prefix>,
    ) -> HashMap<Prefix, Vec<Prefix>> {
        let mut groups: HashMap<Prefix, Vec<Prefix>> = HashMap::new();
        for b in blocks {
            let key = self.covering(*b).map(|(p, _)| p).unwrap_or(*b);
            groups.entry(key).or_default().push(*b);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn covering_prefers_most_specific() {
        let mut t = BgpTable::new();
        t.announce(p("10.0.0.0/8"), Asn(8));
        t.announce(p("10.1.0.0/16"), Asn(16));
        assert_eq!(
            t.covering(p("10.1.2.0/24")),
            Some((p("10.1.0.0/16"), Asn(16)))
        );
        assert_eq!(
            t.covering(p("10.9.0.0/24")),
            Some((p("10.0.0.0/8"), Asn(8)))
        );
        assert_eq!(t.covering(p("11.0.0.0/24")), None);
    }

    #[test]
    fn more_specific_announcement_does_not_cover_coarser_query() {
        let mut t = BgpTable::new();
        t.announce(p("10.1.2.128/25"), Asn(1));
        assert_eq!(t.covering(p("10.1.2.0/24")), None);
        // The /25 covers itself.
        assert_eq!(
            t.covering(p("10.1.2.128/25")),
            Some((p("10.1.2.128/25"), Asn(1)))
        );
    }

    #[test]
    fn reannounce_replaces_origin() {
        let mut t = BgpTable::new();
        t.announce(p("10.0.0.0/8"), Asn(1));
        t.announce(p("10.0.0.0/8"), Asn(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.origin(p("10.5.0.0/24")), Some(Asn(2)));
    }

    #[test]
    fn aggregate_groups_by_cidr() {
        let mut t = BgpTable::new();
        t.announce(p("10.1.0.0/16"), Asn(1));
        t.announce(p("10.2.0.0/16"), Asn(2));
        let blocks = [
            p("10.1.0.0/24"),
            p("10.1.1.0/24"),
            p("10.2.0.0/24"),
            p("99.0.0.0/24"),
        ];
        let groups = t.aggregate(blocks.iter());
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&p("10.1.0.0/16")].len(), 2);
        assert_eq!(groups[&p("10.2.0.0/16")].len(), 1);
        // Uncovered block groups under itself.
        assert_eq!(groups[&p("99.0.0.0/24")], vec![p("99.0.0.0/24")]);
    }

    #[test]
    fn exact_match_covers_itself() {
        let mut t = BgpTable::new();
        t.announce(p("10.1.2.0/24"), Asn(3));
        assert_eq!(
            t.covering(p("10.1.2.0/24")),
            Some((p("10.1.2.0/24"), Asn(3)))
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=24).prop_map(|(a, l)| Prefix::new(a, l))
    }

    proptest! {
        /// `covering` agrees with a brute-force scan over announcements.
        #[test]
        fn covering_matches_linear_scan(
            entries in proptest::collection::vec((arb_prefix(), 1u32..1000), 0..30),
            probes in proptest::collection::vec(arb_prefix(), 0..20),
        ) {
            let mut t = BgpTable::new();
            let mut reference: Vec<(Prefix, Asn)> = Vec::new();
            for (p, asn) in entries {
                t.announce(p, Asn(asn));
                if let Some(slot) = reference.iter_mut().find(|(q, _)| *q == p) {
                    slot.1 = Asn(asn);
                } else {
                    reference.push((p, Asn(asn)));
                }
            }
            for probe in probes {
                let expect = reference
                    .iter()
                    .filter(|(p, _)| p.covers(&probe))
                    .max_by_key(|(p, _)| p.len())
                    .copied();
                prop_assert_eq!(t.covering(probe), expect);
            }
        }

        /// Aggregation preserves every block exactly once.
        #[test]
        fn aggregate_partitions_blocks(
            entries in proptest::collection::vec((any::<u32>(), 8u8..=22), 0..10),
            blocks in proptest::collection::vec(any::<u32>(), 1..40),
        ) {
            let mut t = BgpTable::new();
            for (a, l) in entries {
                t.announce(Prefix::new(a, l), Asn(1));
            }
            let blocks: Vec<Prefix> = blocks.into_iter().map(|a| Prefix::new(a, 24)).collect();
            let groups = t.aggregate(blocks.iter());
            let total: usize = groups.values().map(Vec::len).sum();
            prop_assert_eq!(total, blocks.len());
            for (key, members) in &groups {
                for m in members {
                    prop_assert!(key.covers(m) || key == m);
                }
            }
        }
    }
}
