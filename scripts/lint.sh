#!/usr/bin/env bash
# Standalone entry point for the workspace invariant checker (eum-lint).
# Scans the tree against lint.toml: serve-path alloc/lock/panic/indexing
# freedom, Relaxed-ordering justifications, seqlock pairing, SAFETY
# comments, and the exact per-crate unsafe budget. Non-zero exit on any
# violation. Extra arguments are forwarded (e.g. --explain serve-alloc,
# --fix-budget).
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q -p eum-lint -- "$@"
