//! RFC 2181 §9 response truncation.
//!
//! A reply that exceeds the client's effective UDP payload limit must
//! not be sent oversized or mangled mid-record: whole records are
//! dropped from the tail until the message fits, the section counts are
//! rewritten, and the TC bit is stamped so the resolver retries over
//! TCP (RFC 1035 §4.2.2). Both serve paths land here — the freshly
//! encoded miss path and the cached-template replay path, where the
//! stamp is a patch on the already-memcpy'd wire bytes.
//!
//! One RFC 6891 §7 wrinkle: when the reply carries an OPT record (our
//! encoder and the cache replay both put it last), the truncated
//! response keeps it — dropping EDNS from the response would tell the
//! client we never saw its OPT. The kept OPT is slid down over the
//! dropped records with `copy_within`, so truncation is alloc-free.
//!
//! Everything here trusts nothing about the wire bytes (mirroring
//! `record_ttl_offsets`): a walk that runs off the message degrades to
//! the minimal header-only truncated response, never a panic.

/// Reads the big-endian u16 at `pos`, `None` past the end.
fn rd_u16(wire: &[u8], pos: usize) -> Option<u16> {
    Some(u16::from_be_bytes([*wire.get(pos)?, *wire.get(pos + 1)?]))
}

/// Skips an encoded owner name starting at `pos`, returning the offset
/// just past it. Handles both label sequences and RFC 1035 §4.1.4
/// compression pointers (the encoder compresses repeated owner names).
pub(crate) fn skip_name(wire: &[u8], mut pos: usize) -> Option<usize> {
    loop {
        let b = *wire.get(pos)?;
        if b & 0xC0 == 0xC0 {
            // A pointer terminates the name; it is two bytes long.
            return Some(pos + 2);
        }
        if b == 0 {
            return Some(pos + 1);
        }
        pos += 1 + b as usize;
    }
}

/// Skips one resource record starting at `pos`, returning the offset
/// just past its RDATA and the record's TYPE.
fn skip_record(wire: &[u8], pos: usize) -> Option<(usize, u16)> {
    let past_name = skip_name(wire, pos)?;
    let rtype = rd_u16(wire, past_name)?;
    // TYPE + CLASS + TTL = 8 bytes, then RDLENGTH.
    let rdlen = rd_u16(wire, past_name + 8)?;
    let end = past_name + 10 + rdlen as usize;
    (end <= wire.len()).then_some((end, rtype))
}

/// The OPT pseudo-RR type code (RFC 6891).
const TYPE_OPT: u16 = 41;

/// Truncates `reply` in place to at most `limit` bytes at a record
/// boundary (RFC 2181 §9), keeping a trailing OPT record when it still
/// fits, rewriting the section counts, and setting TC. Returns whether
/// anything was truncated; a reply already within `limit` is untouched.
/// Alloc-free: only `copy_within`/`truncate` on the existing buffer.
pub(crate) fn truncate_in_place(reply: &mut Vec<u8>, limit: usize) -> bool {
    if reply.len() <= limit || reply.len() < 12 {
        return false;
    }
    match truncation_plan(reply, limit) {
        Some(plan) => apply(reply, plan),
        // Unwalkable bytes (impossible for self-encoded replies): the
        // minimal truncated response is just the header, counts zeroed.
        None => apply(
            reply,
            Plan {
                keep_len: 12,
                qd: 0,
                an: 0,
                ns: 0,
                ar: 0,
                opt_start: None,
            },
        ),
    }
    true
}

/// What to keep of an oversized reply.
struct Plan {
    /// Bytes of the message prefix (header + question + kept records).
    keep_len: usize,
    qd: u16,
    an: u16,
    ns: u16,
    /// Kept additionals, the relocated OPT included.
    ar: u16,
    /// When set, the OPT record at this offset survives and is slid
    /// down to `keep_len`.
    opt_start: Option<(usize, usize)>,
}

fn truncation_plan(reply: &[u8], limit: usize) -> Option<Plan> {
    let qd = rd_u16(reply, 4)?;
    let an = rd_u16(reply, 6)? as usize;
    let ns = rd_u16(reply, 8)? as usize;
    let ar = rd_u16(reply, 10)? as usize;

    let mut pos = 12usize;
    for _ in 0..qd {
        pos = skip_name(reply, pos)? + 4; // QTYPE + QCLASS
    }
    let q_end = pos;
    if q_end > reply.len() || q_end > limit {
        // Not even the question fits: header-only minimal response.
        return Some(Plan {
            keep_len: 12,
            qd: 0,
            an: 0,
            ns: 0,
            ar: 0,
            opt_start: None,
        });
    }

    // First pass: locate a trailing OPT. Our encoder and the cache
    // replay both emit the OPT as the very last record, so only that
    // position is checked.
    let total = an + ns + ar;
    let mut last = (q_end, 0u16);
    for _ in 0..total {
        let (end, rtype) = skip_record(reply, pos)?;
        last = (pos, rtype);
        pos = end;
    }
    let opt = (ar > 0 && last.1 == TYPE_OPT && pos == reply.len()).then_some(last.0);
    let opt_len = opt.map(|start| reply.len() - start).unwrap_or(0);
    // The OPT survives only if it fits alongside header + question.
    let keep_opt = opt.is_some() && q_end + opt_len <= limit;
    let budget = if keep_opt { limit - opt_len } else { limit };

    // Second pass: the longest record prefix that fits the budget.
    let non_opt = if opt.is_some() { total - 1 } else { total };
    let mut kept = 0usize;
    let mut keep_len = q_end;
    pos = q_end;
    for _ in 0..non_opt {
        let (end, _) = skip_record(reply, pos)?;
        if end > budget {
            break;
        }
        kept += 1;
        keep_len = end;
        pos = end;
    }
    let kept_an = kept.min(an);
    let kept_ns = kept.saturating_sub(an).min(ns);
    let kept_ar = kept.saturating_sub(an + ns) + usize::from(keep_opt);
    Some(Plan {
        keep_len,
        qd,
        an: kept_an as u16,
        ns: kept_ns as u16,
        ar: kept_ar as u16,
        opt_start: keep_opt.then(|| {
            // lint: allow(serve-panic) — keep_opt implies opt.is_some()
            let start = opt.expect("keep_opt implies a located OPT");
            (start, opt_len)
        }),
    })
}

// lint: allow(serve-index) — every write sits at a fixed header offset
// in 2..12, and truncate_in_place returns before planning when the reply
// is shorter than the 12-byte header.
fn apply(reply: &mut Vec<u8>, plan: Plan) {
    let mut len = plan.keep_len;
    if let Some((start, opt_len)) = plan.opt_start {
        // Slide the surviving OPT down over the dropped records. When
        // nothing between them was dropped this is a no-op copy.
        reply.copy_within(start..start + opt_len, len);
        len += opt_len;
    }
    reply.truncate(len);
    reply[2] |= 0x02; // TC
    reply[4..6].copy_from_slice(&plan.qd.to_be_bytes());
    reply[6..8].copy_from_slice(&plan.an.to_be_bytes());
    reply[8..10].copy_from_slice(&plan.ns.to_be_bytes());
    reply[10..12].copy_from_slice(&plan.ar.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_dns::edns::{EcsOption, OptData};
    use eum_dns::{decode_message, encode_message, DnsName, Flags, Message, Question, Record};
    use std::net::Ipv4Addr;

    fn a_record(name: &DnsName, ip: [u8; 4]) -> Record {
        Record::a(name.clone(), 60, Ipv4Addr::from(ip))
    }

    fn response(answers: usize, with_opt: bool) -> Vec<u8> {
        let name: DnsName = "e0.cdn.example".parse().unwrap();
        let mut m = Message {
            id: 0x1234,
            flags: Flags {
                qr: true,
                aa: true,
                ..Flags::default()
            },
            questions: vec![Question::a(name.clone())],
            answers: (0..answers)
                .map(|i| a_record(&name, [10, 0, (i >> 8) as u8, i as u8]))
                .collect(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        };
        if with_opt {
            m.set_opt(OptData::with_ecs(EcsOption {
                addr: Ipv4Addr::new(93, 184, 216, 0),
                source_prefix: 24,
                scope_prefix: 24,
            }));
        }
        encode_message(&m)
    }

    #[test]
    fn within_limit_is_untouched() {
        let mut wire = response(2, true);
        let orig = wire.clone();
        assert!(!truncate_in_place(&mut wire, 512));
        assert_eq!(wire, orig);
    }

    #[test]
    fn drops_whole_records_and_sets_tc() {
        let full = response(20, false);
        let mut wire = full.clone();
        let limit = full.len() - 10;
        assert!(truncate_in_place(&mut wire, limit));
        assert!(wire.len() <= limit);
        let m = decode_message(&wire).expect("truncated reply still decodes");
        assert!(m.flags.tc, "TC must be set");
        assert_eq!(m.questions.len(), 1);
        assert!(!m.answers.is_empty() && m.answers.len() < 20);
    }

    #[test]
    fn keeps_trailing_opt_when_it_fits() {
        let full = response(20, true);
        let mut wire = full.clone();
        assert!(truncate_in_place(&mut wire, full.len() - 16));
        let m = decode_message(&wire).expect("truncated reply still decodes");
        assert!(m.flags.tc);
        assert!(
            m.ecs().is_some(),
            "the OPT/ECS record must survive truncation (RFC 6891 §7)"
        );
        assert!(m.answers.len() < 20);
    }

    #[test]
    fn tiny_limit_degrades_to_header_plus_question_or_header() {
        let mut wire = response(4, false);
        assert!(truncate_in_place(&mut wire, 40));
        let m = decode_message(&wire).expect("still decodes");
        assert!(m.flags.tc);
        assert!(m.answers.is_empty());

        let mut wire = response(4, false);
        assert!(truncate_in_place(&mut wire, 12));
        assert_eq!(wire.len(), 12);
        // lint not applicable in tests, but assert the counts were zeroed.
        assert_eq!(&wire[4..12], &[0u8; 8]);
        assert!(wire[2] & 0x02 != 0);
    }

    #[test]
    fn every_prefix_limit_yields_a_decodable_reply() {
        let full = response(12, true);
        for limit in 12..full.len() {
            let mut wire = full.clone();
            let t = truncate_in_place(&mut wire, limit);
            assert!(t, "limit {limit} below len {} must truncate", full.len());
            assert!(wire.len() <= limit.max(12));
            let m = decode_message(&wire)
                .unwrap_or_else(|e| panic!("limit {limit}: undecodable ({e:?})"));
            assert!(m.flags.tc);
        }
    }
}
