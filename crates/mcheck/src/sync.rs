//! The virtual-atomics facade.
//!
//! Production builds re-export `std::sync` types verbatim — the facade is
//! a pure type alias with zero cost (a test asserts `TypeId` equality).
//! Builds with `--cfg eum_mcheck` (see `scripts/mcheck.sh`) swap in the
//! modeled primitives from [`crate::modeled`], so every crate that
//! imports its atomics through this module becomes model-checkable
//! as compiled, without source changes.
//!
//! Code under audit (see `lint.toml`'s `facade_files` and the
//! `raw-atomic` lint rule) imports from here — or from a crate-local
//! `msync` alias of here — instead of `std::sync::atomic`.

#[cfg(not(eum_mcheck))]
pub use std::sync::{LockResult, Mutex, MutexGuard};

#[cfg(not(eum_mcheck))]
/// Atomic types (production: the real `std::sync::atomic`).
pub mod atomic {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

#[cfg(eum_mcheck)]
pub use crate::modeled::{Mutex, MutexGuard};
#[cfg(eum_mcheck)]
pub use std::sync::LockResult;

#[cfg(eum_mcheck)]
/// Atomic types (modeled: schedule points under `mcheck::check`).
pub mod atomic {
    pub use crate::modeled::{fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}
