//! The latency and loss model.
//!
//! Stands in for the paper's network-level measurements ("path information,
//! latency, loss, and throughput between different points on the Internet",
//! §2.2 (iv)). RTT between two endpoints decomposes as:
//!
//! ```text
//! rtt = propagation(distance) · path_inflation + region_penalty
//!       + access(a) + access(b) + jitter
//! ```
//!
//! * **propagation** — light in fiber travels at ≈ 0.62 c, so a round trip
//!   costs ≈ 0.0173 ms per great-circle mile.
//! * **path_inflation** — real paths are not great circles; a stable
//!   per-pair factor in `[1.25, 2.0]` models AS-path stretch.
//! * **region_penalty** — crossing a continental boundary adds a submarine
//!   cable / peering detour.
//! * **access** — each endpoint's last-mile contribution (×2 for the round
//!   trip).
//! * **jitter** — a stable ±8% per-pair factor (queueing variance).
//!
//! Everything is **deterministic**: the "randomness" is a hash of the
//! endpoint pair and the model seed, so repeated queries agree, and the
//! function is symmetric in its arguments. This is essential — the mapping
//! system's scoring and the simulator's transfers must see the same network.

use crate::Endpoint;
use eum_geo::great_circle_miles;
use serde::{Deserialize, Serialize};

/// Round-trip propagation cost per great-circle mile, in milliseconds
/// (speed of light in fiber ≈ 0.62 c ≈ 115,500 mi/s, both directions).
pub const RTT_MS_PER_MILE: f64 = 0.0173;

/// Deterministic latency/loss model, parameterized only by a seed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyModel {
    seed: u64,
}

/// SplitMix64 — tiny, high-quality bit mixer for stable per-pair noise.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform f64 in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl LatencyModel {
    /// Creates a model with the given seed.
    pub fn new(seed: u64) -> Self {
        LatencyModel { seed }
    }

    /// Stable, symmetric per-pair hash with a salt to derive independent
    /// noise channels (inflation vs. jitter vs. loss).
    fn pair_hash(&self, a: &Endpoint, b: &Endpoint, salt: u64) -> u64 {
        let (x, y) = {
            let (ai, bi) = (u32::from(a.ip), u32::from(b.ip));
            if ai <= bi {
                (ai, bi)
            } else {
                (bi, ai)
            }
        };
        splitmix64(
            self.seed ^ salt.wrapping_mul(0xA5A5_A5A5_A5A5_A5A5) ^ ((x as u64) << 32 | y as u64),
        )
    }

    /// Round-trip time between two endpoints in milliseconds.
    ///
    /// Symmetric, deterministic, ≥ 1 ms between distinct endpoints, and
    /// monotone-ish in distance (per-pair noise can reorder pairs whose
    /// distances differ by less than ~25%; that is intentional — a
    /// slightly-farther cluster can genuinely be faster, which is why the
    /// paper's mapping system scores on measured latency rather than
    /// geography).
    pub fn rtt_ms(&self, a: &Endpoint, b: &Endpoint) -> f64 {
        if a.ip == b.ip {
            return 0.2;
        }
        let d = great_circle_miles(&a.loc, &b.loc);
        let prop = d * RTT_MS_PER_MILE;
        let inflation = 1.25 + 0.75 * unit(self.pair_hash(a, b, 1));
        let region_penalty = if a.country == b.country {
            0.0
        } else if a.country.region() == b.country.region() {
            2.0 + 4.0 * unit(self.pair_hash(a, b, 2))
        } else {
            8.0 + 24.0 * unit(self.pair_hash(a, b, 3))
        };
        let access = a.access_ms + b.access_ms;
        let jitter = 1.0 + 0.16 * (unit(self.pair_hash(a, b, 4)) - 0.5);
        ((prop * inflation + region_penalty + 2.0 * access) * jitter).max(1.0)
    }

    /// Packet loss rate on the path between two endpoints, in `[0, 0.05]`.
    ///
    /// Base 0.05% plus a distance-dependent term (long paths cross more
    /// congested interconnects) plus a stable per-pair component.
    pub fn loss_rate(&self, a: &Endpoint, b: &Endpoint) -> f64 {
        if a.ip == b.ip {
            return 0.0;
        }
        let d = great_circle_miles(&a.loc, &b.loc);
        let base = 0.0005;
        let dist_term = (d / 1000.0) * 0.0015;
        let pair_term = 0.004 * unit(self.pair_hash(a, b, 5)).powi(2);
        (base + dist_term + pair_term).min(0.05)
    }

    /// One-way latency estimate (half the RTT). Used for staged DNS
    /// timelines in the simulator.
    pub fn one_way_ms(&self, a: &Endpoint, b: &Endpoint) -> f64 {
        self.rtt_ms(a, b) / 2.0
    }

    /// A "ping" measurement as taken by the mapping system's measurement
    /// component toward a ping target (§6): the RTT with the *client* access
    /// component removed, because pings hit a router enroute, not the end
    /// host. The paper notes these underestimate true client RTT.
    pub fn ping_ms(&self, server: &Endpoint, target: &Endpoint) -> f64 {
        let stripped = Endpoint {
            access_ms: 0.5,
            ..*target
        };
        self.rtt_ms(server, &stripped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_geo::{Asn, Country, GeoPoint};
    use std::net::Ipv4Addr;

    fn ep(ip: [u8; 4], lat: f64, lon: f64, country: Country, access: f64) -> Endpoint {
        Endpoint::client(
            Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
            GeoPoint::new(lat, lon),
            country,
            Asn(1),
            access,
        )
    }

    fn nyc_client() -> Endpoint {
        ep([10, 0, 0, 1], 40.7, -74.0, Country::UnitedStates, 8.0)
    }
    fn nyc_server() -> Endpoint {
        ep([96, 0, 0, 1], 40.7, -74.0, Country::UnitedStates, 0.5)
    }
    fn la_server() -> Endpoint {
        ep([96, 0, 1, 1], 34.05, -118.24, Country::UnitedStates, 0.5)
    }
    fn tokyo_server() -> Endpoint {
        ep([96, 0, 2, 1], 35.68, 139.69, Country::Japan, 0.5)
    }

    #[test]
    fn rtt_is_symmetric_and_deterministic() {
        let m = LatencyModel::new(7);
        let a = nyc_client();
        let b = tokyo_server();
        assert_eq!(m.rtt_ms(&a, &b), m.rtt_ms(&b, &a));
        assert_eq!(m.rtt_ms(&a, &b), m.rtt_ms(&a, &b));
    }

    #[test]
    fn same_ip_is_near_zero() {
        let m = LatencyModel::new(7);
        let a = nyc_client();
        assert!(m.rtt_ms(&a, &a) < 1.0);
        assert_eq!(m.loss_rate(&a, &a), 0.0);
    }

    #[test]
    fn same_city_beats_cross_country_beats_cross_ocean() {
        let m = LatencyModel::new(7);
        let c = nyc_client();
        let near = m.rtt_ms(&c, &nyc_server());
        let far = m.rtt_ms(&c, &la_server());
        let ocean = m.rtt_ms(&c, &tokyo_server());
        assert!(near < far, "near {near} vs far {far}");
        assert!(far < ocean, "far {far} vs ocean {ocean}");
    }

    #[test]
    fn same_city_rtt_is_tens_of_ms_with_access() {
        let m = LatencyModel::new(7);
        // ~8ms access each way ⇒ ≥ 16ms even in the same city.
        let r = m.rtt_ms(&nyc_client(), &nyc_server());
        assert!(r > 15.0 && r < 40.0, "got {r}");
    }

    #[test]
    fn transpacific_rtt_is_realistic() {
        let m = LatencyModel::new(7);
        // NYC–Tokyo is ~6740 miles; expect roughly 130–260 ms.
        let r = m.rtt_ms(&nyc_client(), &tokyo_server());
        assert!(r > 120.0 && r < 300.0, "got {r}");
    }

    #[test]
    fn different_seeds_change_noise_not_magnitude() {
        let a = nyc_client();
        let b = la_server();
        let r1 = LatencyModel::new(1).rtt_ms(&a, &b);
        let r2 = LatencyModel::new(2).rtt_ms(&a, &b);
        assert_ne!(r1, r2);
        assert!((r1 - r2).abs() < 0.8 * r1.min(r2));
    }

    #[test]
    fn loss_rate_bounded_and_grows_with_distance() {
        let m = LatencyModel::new(7);
        let near = m.loss_rate(&nyc_client(), &nyc_server());
        let far = m.loss_rate(&nyc_client(), &tokyo_server());
        assert!((0.0..=0.05).contains(&near));
        assert!((0.0..=0.05).contains(&far));
        assert!(far > near);
    }

    #[test]
    fn ping_strips_target_access() {
        let m = LatencyModel::new(7);
        let server = nyc_server();
        let target = ep([10, 0, 0, 9], 40.7, -74.0, Country::UnitedStates, 30.0);
        let ping = m.ping_ms(&server, &target);
        let rtt = m.rtt_ms(&server, &target);
        assert!(ping < rtt, "ping {ping} should underestimate rtt {rtt}");
    }

    #[test]
    fn floor_of_one_ms_between_distinct_endpoints() {
        let m = LatencyModel::new(7);
        let a = ep([1, 0, 0, 1], 0.0, 0.0, Country::UnitedStates, 0.0);
        let b = ep([1, 0, 0, 2], 0.0, 0.0, Country::UnitedStates, 0.0);
        assert!(m.rtt_ms(&a, &b) >= 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use eum_geo::{Asn, Country, GeoPoint};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
        (any::<u32>(), -60f64..70.0, -180f64..180.0, 0f64..40.0).prop_map(|(ip, lat, lon, acc)| {
            Endpoint::client(
                Ipv4Addr::from(ip),
                GeoPoint::new(lat, lon),
                Country::UnitedStates,
                Asn(1),
                acc,
            )
        })
    }

    proptest! {
        #[test]
        fn rtt_symmetric_positive_finite(a in arb_endpoint(), b in arb_endpoint(), seed in any::<u64>()) {
            let m = LatencyModel::new(seed);
            let r1 = m.rtt_ms(&a, &b);
            let r2 = m.rtt_ms(&b, &a);
            prop_assert_eq!(r1, r2);
            prop_assert!(r1.is_finite());
            prop_assert!(r1 > 0.0);
            // Upper bound: half circumference at max inflation + penalties + access.
            prop_assert!(r1 < 12_500.0 * RTT_MS_PER_MILE * 2.0 * 1.1 + 32.0 + 2.0 * 80.0 + 50.0);
        }

        #[test]
        fn loss_in_bounds(a in arb_endpoint(), b in arb_endpoint(), seed in any::<u64>()) {
            let m = LatencyModel::new(seed);
            let l = m.loss_rate(&a, &b);
            prop_assert!((0.0..=0.05).contains(&l));
            prop_assert_eq!(l, m.loss_rate(&b, &a));
        }
    }
}
