//! Seeded, composable adversarial workload schedules.
//!
//! A [`ChaosScenario`] compiles to a per-window list of [`ChaosQuery`]
//! arrivals: legitimate traffic demand-sampled through
//! [`eum_ldns::QueryPlan`] (the same population model every other
//! experiment in this repository uses), interleaved with attack
//! arrivals from a composable [`AttackGenKind`] generator, all drawn
//! from one `ChaCha12` stream so a seed reproduces the exact arrival
//! sequence — ground truth included. Attacks occupy a window range
//! (`attack_from..attack_to`), leaving warm-up windows for caches to
//! fill and recovery windows to watch the system drain.
//!
//! World events ([`ScheduledEvent`]) are the non-query half of a
//! scenario: a serving site dying, or public resolvers flipping their
//! ECS policy mid-run. They fire at a window boundary in *both* A/B
//! arms — the event is the world's doing; only the response to it
//! (see [`crate::Defenses`]) differs between arms.

use eum_cdn::ContentCatalog;
use eum_dns::DnsName;
use eum_ldns::{LdnsCacheConfig, QueryPlan};
use eum_netmodel::Internet;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::net::Ipv4Addr;

/// One scheduled arrival with its ground-truth label.
#[derive(Debug, Clone)]
pub struct ChaosQuery {
    /// Index into the internet's resolver arena (and the runner's
    /// matching `Vec<Ldns>`).
    pub resolver: usize,
    /// The asking client (ECS source when the resolver sends ECS).
    pub client: Ipv4Addr,
    /// The hostname looked up.
    pub qname: DnsName,
    /// Ground truth: this arrival belongs to the attack, not the
    /// legitimate demand stream.
    pub attack: bool,
}

/// The attack traffic shapes scenarios compose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackGenKind {
    /// Random-subdomain NXDOMAIN flood: every query is a fresh
    /// never-seen name under the CDN zone, so every layer of caching
    /// misses and the negative answer is useless to the attacker's
    /// next query. The classic water-torture shape.
    NxFlood,
    /// Flash crowd: everyone suddenly asks for the most popular
    /// hostname. High volume, but cacheable — the defense's job is to
    /// *not* shed it.
    FlashCrowd,
    /// Wide scan: real hostnames crossed with scattered client blocks,
    /// maximizing distinct ECS-scoped cache entries per query —
    /// capacity pressure on both the resolver and authd answer caches.
    WideScan,
}

/// A mid-run world mutation, fired at a window boundary in both arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduledEvent {
    /// The busiest serving site goes dark (cluster liveness off).
    SiteOutage,
    /// Every resolver flips ECS on (whitelist rollout mid-flight) and
    /// restarts its cache, as the real rollouts did.
    EcsFlipAll,
}

/// A fully-specified adversarial scenario.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Stable scenario name (JSONL key).
    pub name: &'static str,
    /// Seed for the arrival schedule and every sampling decision.
    pub seed: u64,
    /// Number of arrival windows.
    pub windows: usize,
    /// Offered arrivals per window (attack + legit combined).
    pub queries_per_window: usize,
    /// Attack generator, or `None` for event-only scenarios.
    pub attack: Option<AttackGenKind>,
    /// Fraction of arrivals that are attack inside the active range.
    pub attack_share: f64,
    /// First window with attack traffic.
    pub attack_from: usize,
    /// First window after the attack stops.
    pub attack_to: usize,
    /// World event and the window it fires at.
    pub event: Option<(usize, ScheduledEvent)>,
    /// Attack windows excluded from the summary while the defense
    /// engages (burst drain-down): the floor is judged on the
    /// sustained regime, the transient still lands in the per-window
    /// rows.
    pub settle_windows: usize,
    /// Client patience, in units of the arrival interval: an answer
    /// later than this counts as lost.
    pub deadline_intervals: u64,
    /// Resolver cache geometry (scenarios shrink it to apply pressure).
    pub ldns_cache: LdnsCacheConfig,
    /// Whether resolvers send ECS from the start (`false`: the ECS-flip
    /// scenario starts dark and flips mid-run).
    pub ecs_at_start: bool,
}

impl ChaosScenario {
    fn base(name: &'static str, seed: u64) -> ChaosScenario {
        ChaosScenario {
            name,
            seed,
            windows: 8,
            queries_per_window: 1_500,
            attack: None,
            attack_share: 0.0,
            attack_from: 2,
            attack_to: 8,
            event: None,
            settle_windows: 0,
            deadline_intervals: 48,
            ldns_cache: LdnsCacheConfig::default(),
            ecs_at_start: true,
        }
    }

    /// Random-subdomain NXDOMAIN flood at 85% of offered load. The
    /// attack runs long enough that its volume dwarfs the admission
    /// burst: the defense is judged on the sustained regime, not on
    /// how it weathers the opening seconds.
    pub fn nxdomain_flood(seed: u64) -> ChaosScenario {
        ChaosScenario {
            attack: Some(AttackGenKind::NxFlood),
            attack_share: 0.85,
            windows: 10,
            attack_to: 10,
            // Two windows for the bucket to drain before the floor is
            // judged: mitigation is evaluated converged, as deployed
            // rate-limiters are.
            settle_windows: 2,
            // Flood clients are the impatient kind: a tighter deadline
            // makes queue growth — the thing the flood actually costs
            // legitimate users — visible as lost goodput.
            deadline_intervals: 24,
            ..Self::base("nxdomain_flood", seed)
        }
    }

    /// Flash crowd on the hottest hostname at 70% of offered load.
    pub fn flash_crowd(seed: u64) -> ChaosScenario {
        ChaosScenario {
            attack: Some(AttackGenKind::FlashCrowd),
            attack_share: 0.70,
            ..Self::base("flash_crowd", seed)
        }
    }

    /// The busiest serving site dies at window 4; no attack traffic.
    pub fn site_outage(seed: u64) -> ChaosScenario {
        ChaosScenario {
            event: Some((4, ScheduledEvent::SiteOutage)),
            ..Self::base("site_outage", seed)
        }
    }

    /// Public resolvers flip ECS on (with a cache restart) at window 4.
    pub fn ecs_flip(seed: u64) -> ChaosScenario {
        ChaosScenario {
            event: Some((4, ScheduledEvent::EcsFlipAll)),
            ecs_at_start: false,
            ..Self::base("ecs_flip", seed)
        }
    }

    /// Wide scans against resolvers with deliberately small caches.
    pub fn cache_pressure(seed: u64) -> ChaosScenario {
        ChaosScenario {
            attack: Some(AttackGenKind::WideScan),
            attack_share: 0.60,
            ldns_cache: LdnsCacheConfig {
                max_entries: 512,
                max_negative_entries: 64,
                ..LdnsCacheConfig::default()
            },
            ..Self::base("cache_pressure", seed)
        }
    }

    /// Every built-in scenario, in report order.
    pub fn all(seed: u64) -> Vec<ChaosScenario> {
        vec![
            Self::nxdomain_flood(seed),
            Self::flash_crowd(seed),
            Self::site_outage(seed),
            Self::ecs_flip(seed),
            Self::cache_pressure(seed),
        ]
    }

    /// True when window `w` is inside the attack's active range.
    pub fn attack_active(&self, w: usize) -> bool {
        self.attack.is_some() && w >= self.attack_from && w < self.attack_to
    }

    /// The windows the summary aggregates over: attack windows (minus
    /// the settle allowance) when there is an attack, post-event
    /// windows for event scenarios, everything otherwise.
    pub fn impact_range(&self) -> std::ops::Range<usize> {
        if self.attack.is_some() {
            (self.attack_from + self.settle_windows).min(self.attack_to)..self.attack_to
        } else if let Some((w, _)) = self.event {
            w..self.windows
        } else {
            0..self.windows
        }
    }

    /// Compiles the scenario to per-window arrival lists. Same seed,
    /// same world: byte-identical schedule — both A/B arms replay one
    /// compilation.
    pub fn schedule(&self, net: &Internet, catalog: &ContentCatalog) -> Vec<Vec<ChaosQuery>> {
        let mut legit = legit_stream(
            net,
            catalog,
            self.seed,
            self.windows * self.queries_per_window,
        );
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);
        let mut gen = self.attack.map(|k| AttackGen::build(k, catalog, self.seed));
        (0..self.windows)
            .map(|w| {
                let active = self.attack_active(w);
                (0..self.queries_per_window)
                    .map(|_| {
                        if active && rng.random_bool(self.attack_share) {
                            gen.as_mut()
                                .expect("active implies a generator")
                                .next(net, &mut rng)
                        } else {
                            legit.next().expect("legit plan sized for the run")
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// A short mixed batch with this scenario's traffic shape, drawn
    /// from a disjoint seed: the runner times it against each arm to
    /// place the offered arrival interval between the two measured
    /// service rates (see [`crate::runner`]). `phase` varies the salt
    /// so a warm-up pass and a timed pass draw distinct attack names
    /// (flood names must stay cold) over the same legitimate mix.
    pub fn calibration_batch(
        &self,
        net: &Internet,
        catalog: &ContentCatalog,
        count: usize,
        phase: u64,
    ) -> Vec<ChaosQuery> {
        let salt = self.seed ^ 0x000C_A11B;
        let mut legit = legit_stream(net, catalog, salt, count);
        let mut rng = ChaCha12Rng::seed_from_u64(salt);
        let mut gen = self
            .attack
            .map(|k| AttackGen::build(k, catalog, salt ^ (phase << 48)));
        (0..count)
            .map(|_| match gen.as_mut() {
                Some(g) if rng.random_bool(self.attack_share) => g.next(net, &mut rng),
                _ => legit.next().expect("legit plan sized for calibration"),
            })
            .collect()
    }
}

/// Demand-weighted legitimate arrivals as an owned iterator.
fn legit_stream(
    net: &Internet,
    catalog: &ContentCatalog,
    seed: u64,
    count: usize,
) -> impl Iterator<Item = ChaosQuery> {
    let demand: Vec<(DnsName, f64)> = catalog
        .domains
        .iter()
        .map(|d| (d.cdn_name.clone(), d.popularity))
        .collect();
    QueryPlan::generate(net, &demand, seed ^ 0x0001_E617, count)
        .queries
        .into_iter()
        .map(|p| ChaosQuery {
            resolver: p.resolver.index(),
            client: p.client,
            qname: p.qname,
            attack: false,
        })
}

/// A running attack generator (the stateful side of [`AttackGenKind`]).
enum AttackGen {
    NxFlood { n: u64, salt: u64 },
    FlashCrowd { qname: Box<DnsName> },
    WideScan { names: Vec<DnsName>, next: usize },
}

impl AttackGen {
    fn build(kind: AttackGenKind, catalog: &ContentCatalog, salt: u64) -> AttackGen {
        match kind {
            AttackGenKind::NxFlood => AttackGen::NxFlood { n: 0, salt },
            AttackGenKind::FlashCrowd => AttackGen::FlashCrowd {
                qname: Box::new(hottest(catalog)),
            },
            AttackGenKind::WideScan => AttackGen::WideScan {
                names: catalog.domains.iter().map(|d| d.cdn_name.clone()).collect(),
                next: 0,
            },
        }
    }

    /// One attack arrival: origin sampled from the real population
    /// (bots live in real networks), name per the generator's shape.
    fn next(&mut self, net: &Internet, rng: &mut ChaCha12Rng) -> ChaosQuery {
        let resolver = rng.random_range(0..net.resolvers.len());
        let client = net.blocks[rng.random_range(0..net.blocks.len())].client_ip();
        let qname = match self {
            AttackGen::NxFlood { n, salt } => {
                *n += 1;
                // SplitMix-style mix: unique, unguessable-looking labels.
                let mut z = (*salt ^ *n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                format!("x{z:016x}.cdn.example")
                    .parse()
                    .expect("flood labels are valid DNS names")
            }
            AttackGen::FlashCrowd { qname } => (**qname).clone(),
            AttackGen::WideScan { names, next } => {
                let q = names[*next % names.len()].clone();
                *next += 1;
                q
            }
        };
        ChaosQuery {
            resolver,
            client,
            qname,
            attack: true,
        }
    }
}

/// The most popular hosted domain's CDN name.
pub(crate) fn hottest(catalog: &ContentCatalog) -> DnsName {
    catalog
        .domains
        .iter()
        .max_by(|a, b| a.popularity.total_cmp(&b.popularity))
        .expect("catalog is never empty")
        .cdn_name
        .clone()
}
