//! Integration: the §8 broad-adoption extension — flipping ECS on for ISP
//! and enterprise resolvers benefits exactly the clients the paper's §4.5
//! extrapolation predicts: those whose LDNS is far away.

use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::{Metric, RolloutReport, RumSample};

fn report() -> &'static RolloutReport {
    static REPORT: std::sync::OnceLock<RolloutReport> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| {
        let mut cfg = ScenarioConfig::tiny(0x45);
        cfg.rollout.isp_ecs_day = Some(cfg.rollout.end_day);
        Scenario::build(cfg).run_rollout()
    })
}

fn band_mean(r: &RolloutReport, metric: Metric, lo: f64, hi: f64, from: u32, to: u32) -> f64 {
    let pick = |s: &&RumSample| {
        !s.public_resolver
            && s.day >= from
            && s.day < to
            && s.client_ldns_miles >= lo
            && s.client_ldns_miles < hi
    };
    let vals: Vec<f64> = r
        .rum
        .samples
        .iter()
        .filter(pick)
        .map(|s| s.metric(metric))
        .collect();
    end_user_mapping::stats::mean(vals).unwrap_or(f64::NAN)
}

#[test]
fn distant_ldns_clients_gain_most_from_isp_adoption() {
    let r = report();
    let (pre_from, pre_to) = r.cfg.pre_window();
    let (post_from, post_to) = r.cfg.post_window();

    let gain = |lo: f64, hi: f64| -> f64 {
        let pre = band_mean(r, Metric::Rtt, lo, hi, pre_from, pre_to);
        let post = band_mean(r, Metric::Rtt, lo, hi, post_from, post_to);
        (pre - post) / pre
    };
    let far = gain(1000.0, f64::INFINITY);
    let local = gain(0.0, 100.0);
    assert!(
        far > 0.10,
        "far-LDNS clients gained only {:.0}%",
        far * 100.0
    );
    assert!(
        far > local + 0.05,
        "far gain {:.0}% should exceed local gain {:.0}%",
        far * 100.0,
        local * 100.0
    );
    // Local clients must not regress meaningfully.
    assert!(
        local > -0.10,
        "local clients regressed {:.0}%",
        -local * 100.0
    );
}

#[test]
fn isp_adoption_lifts_nonpublic_query_rate_too() {
    // Once ISP resolvers send ECS, their caches fragment per scope and
    // their query rate rises — the §5 cost applies to them as well.
    let r = report();
    let (pre_from, pre_to) = r.cfg.pre_window();
    let (post_from, post_to) = r.cfg.post_window();
    let pre = r.counters.window_means(pre_from, pre_to - 1);
    let post = r.counters.window_means(post_from, post_to - 1);
    let pre_nonpublic = pre.0 - pre.1;
    let post_nonpublic = post.0 - post.1;
    assert!(
        post_nonpublic > 1.2 * pre_nonpublic,
        "non-public queries/day {pre_nonpublic:.0} -> {post_nonpublic:.0}"
    );
}
