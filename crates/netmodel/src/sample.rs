//! Demand-weighted query-population sampling.
//!
//! The serving-layer load generator replays "the Internet asking the CDN
//! questions": each authoritative query originates from a client block and
//! travels through one of that block's LDNSes, with probability
//! proportional to the block's demand times the block→LDNS usage weight —
//! the same demand split as [`crate::Internet::ldns_demand`] (§3.1's
//! per-block aggregates). [`QueryPopulation`] flattens that joint
//! distribution once and then samples `(block, resolver)` pairs in
//! `O(log n)` with no allocation, so many load-generator threads can each
//! hold a clone of the (cheap, `Arc`-shareable) table and their own RNG.

use crate::ids::{BlockId, ResolverId};
use crate::Internet;
use rand::{RngCore, RngExt};

/// A sampled query origin: the client block the query is about and the
/// recursive resolver that forwards it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOrigin {
    /// The /24 client block whose clients issued the lookup.
    pub block: BlockId,
    /// The LDNS that carries it to the authoritative.
    pub resolver: ResolverId,
}

/// The joint (block, LDNS) demand distribution, preprocessed for sampling.
#[derive(Debug, Clone)]
pub struct QueryPopulation {
    /// `(block, resolver)` pairs in generation order.
    pairs: Vec<QueryOrigin>,
    /// Cumulative demand weight per pair (strictly increasing; last entry
    /// equals [`QueryPopulation::total_demand`]).
    cumulative: Vec<f64>,
}

impl QueryPopulation {
    /// Flattens the network's block→LDNS usage into a sampling table.
    /// Pairs with non-positive weight are dropped.
    pub fn build(net: &Internet) -> QueryPopulation {
        let mut pairs = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0f64;
        for b in &net.blocks {
            for (r, w) in &b.ldns {
                let weight = w * b.demand;
                if weight > 0.0 {
                    acc += weight;
                    pairs.push(QueryOrigin {
                        block: b.id,
                        resolver: *r,
                    });
                    cumulative.push(acc);
                }
            }
        }
        assert!(!pairs.is_empty(), "network has no demand to sample");
        QueryPopulation { pairs, cumulative }
    }

    /// Number of distinct `(block, resolver)` pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the table is empty (never, post-`build`; kept for the
    /// `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total demand mass across all pairs.
    pub fn total_demand(&self) -> f64 {
        *self.cumulative.last().expect("non-empty table")
    }

    /// Draws one query origin with probability proportional to demand.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> QueryOrigin {
        let needle = rng.random_range(0.0..self.total_demand());
        // First pair whose cumulative weight exceeds the needle.
        let idx = self.cumulative.partition_point(|&c| c <= needle);
        self.pairs[idx.min(self.pairs.len() - 1)]
    }

    /// All pairs with their individual weights (testing/inspection).
    pub fn pairs(&self) -> impl Iterator<Item = (QueryOrigin, f64)> + '_ {
        self.pairs.iter().enumerate().map(|(i, p)| {
            let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
            (*p, self.cumulative[i] - prev)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InternetConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use std::collections::HashMap;

    #[test]
    fn every_sampled_pair_is_a_real_block_ldns_edge() {
        let net = Internet::generate(InternetConfig::tiny(7));
        let pop = QueryPopulation::build(&net);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..500 {
            let o = pop.sample(&mut rng);
            let block = net.block(o.block);
            assert!(
                block.ldns.iter().any(|(r, _)| *r == o.resolver),
                "sampled resolver not used by block"
            );
        }
    }

    #[test]
    fn sampling_frequency_tracks_demand() {
        let net = Internet::generate(InternetConfig::tiny(7));
        let pop = QueryPopulation::build(&net);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let n = 40_000usize;
        let mut by_resolver: HashMap<ResolverId, usize> = HashMap::new();
        for _ in 0..n {
            *by_resolver
                .entry(pop.sample(&mut rng).resolver)
                .or_insert(0) += 1;
        }
        // The heaviest LDNS by demand should also be sampled most.
        let demand = net.ldns_demand();
        let heaviest = demand
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(r, _)| *r)
            .unwrap();
        let most_sampled = by_resolver
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(r, _)| *r)
            .unwrap();
        assert_eq!(most_sampled, heaviest);
        // And its empirical share should be within a few points of its
        // demand share.
        let share = by_resolver[&heaviest] as f64 / n as f64;
        let expect = demand[&heaviest] / pop.total_demand();
        assert!(
            (share - expect).abs() < 0.03,
            "share {share:.3} vs demand {expect:.3}"
        );
    }

    #[test]
    fn total_demand_matches_network() {
        let net = Internet::generate(InternetConfig::tiny(9));
        let pop = QueryPopulation::build(&net);
        assert!((pop.total_demand() - net.total_demand()).abs() / net.total_demand() < 1e-9);
        assert_eq!(pop.len(), pop.pairs().count());
        assert!(!pop.is_empty());
    }
}
