//! Offline stub of the `libc` crate: exactly the syscall surface
//! `eum-net` needs and nothing else — `socket`/`setsockopt`/`bind` (to
//! create SO_REUSEPORT shard sockets before std can see them),
//! `recvmmsg`/`sendmmsg` (kernel-batched datagram I/O), and
//! `sched_setaffinity` (per-shard CPU pinning).
//!
//! Like every crate under vendor/, this exists because the build
//! environment has no crates.io access. The declarations are transcribed
//! for the environment we build on — x86_64 Linux with glibc — and the
//! struct layouts (notably `msghdr`'s `size_t`-width `msg_iovlen` /
//! `msg_controllen`) match that ABI. Everything is gated on
//! `target_os = "linux"`; on other targets the crate compiles to nothing
//! and `eum-net` falls back to portable std I/O.
//!
//! This crate intentionally contains no `unsafe`: it only *declares* the
//! foreign functions. Every call site lives in `eum-net`'s wrapper
//! module behind the workspace unsafe budget, each with a SAFETY
//! comment.

#![allow(non_camel_case_types)]
#![cfg(target_os = "linux")]

pub use core::ffi::c_void;

pub type c_int = i32;
pub type c_uint = u32;
pub type c_char = i8;
pub type size_t = usize;
pub type ssize_t = isize;
pub type socklen_t = u32;
pub type sa_family_t = u16;
pub type in_port_t = u16;
pub type in_addr_t = u32;
pub type pid_t = i32;
pub type time_t = i64;

// ---- address families / socket types / option levels ----

pub const AF_INET: c_int = 2;
pub const SOCK_DGRAM: c_int = 2;
pub const SOCK_STREAM: c_int = 1;
pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_REUSEPORT: c_int = 15;

// ---- recvmmsg flags ----

/// Return as soon as at least one datagram has been received.
pub const MSG_WAITFORONE: c_int = 0x10000;
pub const MSG_DONTWAIT: c_int = 0x40;

// ---- errno values the wrappers inspect ----

pub const EINTR: c_int = 4;
pub const EAGAIN: c_int = 11;

// ---- structs (x86_64 glibc layout) ----

/// IPv4 address in network byte order.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct in_addr {
    pub s_addr: in_addr_t,
}

/// `struct sockaddr_in`: family, big-endian port, address, padding.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    pub sin_port: in_port_t,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

/// Generic socket address, only ever used as a cast target for `bind`.
#[repr(C)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [c_char; 14],
}

/// One scatter/gather segment.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct iovec {
    pub iov_base: *mut c_void,
    pub iov_len: size_t,
}

/// Per-message header for `recvmmsg`/`sendmmsg`. On x86_64 glibc,
/// `msg_iovlen` and `msg_controllen` are `size_t`, not `int`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct msghdr {
    pub msg_name: *mut c_void,
    pub msg_namelen: socklen_t,
    pub msg_iov: *mut iovec,
    pub msg_iovlen: size_t,
    pub msg_control: *mut c_void,
    pub msg_controllen: size_t,
    pub msg_flags: c_int,
}

/// One slot of a `recvmmsg`/`sendmmsg` batch: the kernel fills
/// `msg_len` with the datagram length it received or sent.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct mmsghdr {
    pub msg_hdr: msghdr,
    pub msg_len: c_uint,
}

/// Timeout for `recvmmsg` (unused by eum-net, which bounds waits with
/// `SO_RCVTIMEO` instead — the `recvmmsg` timeout argument is only
/// checked between datagrams, so it cannot bound the first blocking
/// wait).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: i64,
}

/// CPU affinity mask: 1024 bits, glibc's default `cpu_set_t` size.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    pub bits: [u64; 16],
}

impl cpu_set_t {
    /// An empty mask; set bit `cpu` to pin to that core.
    pub fn zeroed() -> cpu_set_t {
        cpu_set_t { bits: [0; 16] }
    }
}

extern "C" {
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn setsockopt(
        fd: c_int,
        level: c_int,
        name: c_int,
        value: *const c_void,
        len: socklen_t,
    ) -> c_int;
    pub fn bind(fd: c_int, addr: *const sockaddr, len: socklen_t) -> c_int;
    pub fn recvmmsg(
        fd: c_int,
        msgvec: *mut mmsghdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut timespec,
    ) -> c_int;
    pub fn sendmmsg(fd: c_int, msgvec: *mut mmsghdr, vlen: c_uint, flags: c_int) -> c_int;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
}
