//! Offline stub of `serde`.
//!
//! The build environment has no crates.io access, so the real serde cannot
//! be fetched. The workspace uses serde only through `#[derive(Serialize,
//! Deserialize)]` as forward-looking annotations — no call site performs
//! real (de)serialization (the one former `serde_json` consumer renders
//! its JSON by hand). The traits are therefore empty markers and the
//! derives (from the sibling `serde_derive` stub) emit empty impls.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
