//! `eum-ldns` — a recursive-resolver fleet closing the
//! client→LDNS→authoritative loop.
//!
//! The analytic simulator (`eum-dns`'s `RecursiveResolver`, `eum-sim`'s
//! roll-out scenario) *estimates* what the world's LDNS population does
//! to the CDN's authoritative load. This crate *measures* it: real
//! resolver instances with real caches exchange RFC 1035 wire bytes with
//! a live `eum-authd` over the same pluggable transports the load
//! generator uses.
//!
//! The pieces:
//!
//! * [`TimerWheel`] — hierarchical TTL expiry (O(elapsed + expired), no
//!   full-cache scans).
//! * [`ResolverCache`] — the ECS-partitioned answer cache: entries keyed
//!   by qname + scope-truncated client prefix per RFC 7871 §7.3, with
//!   scope-0 entries global, longest-containing-scope reuse, negative
//!   (RFC 2308) and failure caching, FIFO capacity bound, and hit
//!   accounting split by scope length.
//! * [`Ldns`] — one resolver: per-resolver [`EcsPolicy`] (off /
//!   whitelist / always — the paper's staged public-resolver roll-out),
//!   bounded upstream retries with timeouts, the two-level
//!   delegation walk.
//! * [`ResolverFleet`] — one [`Ldns`] per `eum-netmodel` resolver site,
//!   replaying demand-weighted [`QueryPlan`]s across worker threads,
//!   reporting measured amplification and scope-split hit ratios.
//! * [`FleetMetrics`] — the fleet's counters bridged into an
//!   `eum-telemetry` [`Registry`](eum_telemetry::Registry).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fleet;
pub mod resolver;
pub mod telemetry;
pub mod wheel;

pub use cache::{AnswerBody, CacheEntry, CacheKey, LdnsCacheConfig, LdnsCacheStats, ResolverCache};
pub use fleet::{FleetReport, PlannedQuery, QueryPlan, ResolverFleet, RunConfig};
pub use resolver::{EcsPolicy, Ldns, LdnsConfig, LdnsStats, Resolved};
pub use telemetry::FleetMetrics;
pub use wheel::TimerWheel;
