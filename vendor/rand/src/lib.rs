//! Offline stub of the `rand` crate.
//!
//! The build environment has no crates.io access; this reimplements the
//! API subset the workspace uses — [`RngCore`], [`SeedableRng`] (including
//! `seed_from_u64` via SplitMix64, as upstream), the [`RngExt`] extension
//! methods `random_range` / `random_bool`, and [`seq::SliceRandom`]'s
//! Fisher–Yates `shuffle`. Distributions are uniform; integer ranges use
//! the widening-multiply method.
//!
//! Determinism contract: everything here is a pure function of the seed,
//! which is what the reproduction's seeded-world tests require. The exact
//! stream need not (and does not) match upstream `rand`.

#![warn(missing_docs)]

/// Core random-number generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64`, expanding with SplitMix64 (upstream's scheme).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A half-open or inclusive range values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_ranges!(f32, f64);

/// Convenience extension methods (upstream's `Rng`, renamed as used here).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling / choosing (the used subset of upstream's trait).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u128;
            let i = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
            self.get(i)
        }
    }
}

/// Simple generators (used by tests and the loadgen for cheap seeding).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, full-period; good enough for workloads that
    /// do not need cryptographic or ChaCha-grade statistical quality.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> SmallRng {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(3));
        b.shuffle(&mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
