//! Countries used by the synthetic Internet.
//!
//! The set covers the paper's top-25 countries by client demand (Figures 6,
//! 8, 9) plus a handful of additional countries that matter for the
//! public-resolver story (e.g. South American countries where the largest
//! public resolver provider had no deployments at the time, §3.2).

use serde::{Deserialize, Serialize};

macro_rules! countries {
    ($(($variant:ident, $code:literal, $name:literal)),+ $(,)?) => {
        /// A country, identified by its ISO 3166-1 alpha-2 code.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub enum Country {
            $(#[doc = $name] $variant),+
        }

        impl Country {
            /// Every country known to the model, in declaration order.
            pub const ALL: &'static [Country] = &[$(Country::$variant),+];

            /// The ISO 3166-1 alpha-2 code (as used in the paper's figures).
            pub fn code(&self) -> &'static str {
                match self { $(Country::$variant => $code),+ }
            }

            /// The English name.
            pub fn name(&self) -> &'static str {
                match self { $(Country::$variant => $name),+ }
            }

            /// Parses an alpha-2 code (case-insensitive).
            pub fn from_code(code: &str) -> Option<Country> {
                let up = code.to_ascii_uppercase();
                match up.as_str() { $($code => Some(Country::$variant),)+ _ => None }
            }
        }
    };
}

countries![
    (India, "IN", "India"),
    (Turkey, "TR", "Turkey"),
    (Vietnam, "VN", "Vietnam"),
    (Mexico, "MX", "Mexico"),
    (Brazil, "BR", "Brazil"),
    (Indonesia, "ID", "Indonesia"),
    (Australia, "AU", "Australia"),
    (Russia, "RU", "Russia"),
    (Italy, "IT", "Italy"),
    (Japan, "JP", "Japan"),
    (UnitedStates, "US", "United States"),
    (Malaysia, "MY", "Malaysia"),
    (Canada, "CA", "Canada"),
    (Germany, "DE", "Germany"),
    (France, "FR", "France"),
    (UnitedKingdom, "GB", "United Kingdom"),
    (Netherlands, "NL", "Netherlands"),
    (Argentina, "AR", "Argentina"),
    (Thailand, "TH", "Thailand"),
    (Switzerland, "CH", "Switzerland"),
    (Spain, "ES", "Spain"),
    (HongKong, "HK", "Hong Kong"),
    (SouthKorea, "KR", "South Korea"),
    (Singapore, "SG", "Singapore"),
    (Taiwan, "TW", "Taiwan"),
    // Additional countries that shape the public-resolver geography.
    (Chile, "CL", "Chile"),
    (Colombia, "CO", "Colombia"),
    (Peru, "PE", "Peru"),
    (Poland, "PL", "Poland"),
    (Sweden, "SE", "Sweden"),
    (SouthAfrica, "ZA", "South Africa"),
    (Egypt, "EG", "Egypt"),
];

impl Country {
    /// The continent-scale region, used by the latency model to decide when
    /// a path crosses an ocean and by the anycast model for site presence.
    pub fn region(&self) -> Region {
        use Country::*;
        match self {
            UnitedStates | Canada | Mexico => Region::NorthAmerica,
            Brazil | Argentina | Chile | Colombia | Peru => Region::SouthAmerica,
            Italy | Germany | France | UnitedKingdom | Netherlands | Switzerland | Spain
            | Poland | Sweden | Turkey | Russia => Region::Europe,
            India | Vietnam | Indonesia | Japan | Malaysia | Thailand | HongKong | SouthKorea
            | Singapore | Taiwan => Region::Asia,
            Australia => Region::Oceania,
            SouthAfrica | Egypt => Region::Africa,
        }
    }

    /// The paper's top-25 countries by aggregate client demand, in the order
    /// of Figure 6.
    pub fn paper_top25() -> &'static [Country] {
        use Country::*;
        &[
            India,
            Turkey,
            Vietnam,
            Mexico,
            Brazil,
            Indonesia,
            Australia,
            Russia,
            Italy,
            Japan,
            UnitedStates,
            Malaysia,
            Canada,
            Germany,
            France,
            UnitedKingdom,
            Netherlands,
            Argentina,
            Thailand,
            Switzerland,
            Spain,
            HongKong,
            SouthKorea,
            Singapore,
            Taiwan,
        ]
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Continent-scale regions for the latency and anycast models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North and Central America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe (including Turkey and Russia for routing purposes).
    Europe,
    /// Asia.
    Asia,
    /// Oceania.
    Oceania,
    /// Africa.
    Africa,
}

impl Region {
    /// All regions.
    pub const ALL: &'static [Region] = &[
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::Asia,
        Region::Oceania,
        Region::Africa,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for c in Country::ALL {
            assert_eq!(Country::from_code(c.code()), Some(*c));
        }
    }

    #[test]
    fn from_code_is_case_insensitive_and_rejects_unknown() {
        assert_eq!(Country::from_code("us"), Some(Country::UnitedStates));
        assert_eq!(Country::from_code("zz"), None);
        assert_eq!(Country::from_code(""), None);
    }

    #[test]
    fn paper_top25_has_25_distinct_entries() {
        let top = Country::paper_top25();
        assert_eq!(top.len(), 25);
        let set: std::collections::BTreeSet<_> = top.iter().collect();
        assert_eq!(set.len(), 25);
    }

    #[test]
    fn every_country_has_a_region() {
        // Compiles to exhaustiveness via the match, but assert a few spot
        // values that the latency model depends on.
        assert_eq!(Country::Brazil.region(), Region::SouthAmerica);
        assert_eq!(Country::Singapore.region(), Region::Asia);
        assert_eq!(Country::Australia.region(), Region::Oceania);
        assert_eq!(Country::Turkey.region(), Region::Europe);
    }

    #[test]
    fn all_codes_are_two_uppercase_letters() {
        for c in Country::ALL {
            let code = c.code();
            assert_eq!(code.len(), 2);
            assert!(code.chars().all(|ch| ch.is_ascii_uppercase()));
        }
    }
}
