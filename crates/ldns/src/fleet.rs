//! The resolver fleet: every LDNS in the modeled Internet, driven at once.
//!
//! [`ResolverFleet`] instantiates one [`Ldns`] per
//! [`eum_netmodel::Resolver`] site and replays a demand-weighted query
//! stream through them against a live authoritative (any
//! [`ClientTransport`]). This closes the loop the analytic simulator only
//! estimates: client blocks → their LDNSes → `eum-authd` → answers back,
//! with real caches in the middle. The fleet's [`FleetReport`] therefore
//! carries *measured* quantities the paper reasons about analytically —
//! most importantly DNS **amplification** (upstream queries per
//! downstream query, §6.3's scaling concern for ECS) and the cache hit
//! ratio split by announced ECS scope length (§7.1's fragmentation).
//!
//! Determinism: the query plan is sampled up front from one seed
//! ([`QueryPlan::generate`]), and each query is pinned to the worker that
//! owns its resolver — so a run's per-resolver query sequence is
//! identical no matter how many workers execute it or how threads
//! interleave.

use crate::cache::LdnsCacheStats;
use crate::resolver::{Ldns, LdnsConfig, LdnsStats, Resolved};
use eum_authd::ClientTransport;
use eum_dns::{DnsName, Rcode};
use eum_netmodel::{Internet, QueryPopulation, Resolver, ResolverId};
use eum_telemetry::{QueryTrace, TraceHop, TraceOutcome, TraceRing};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One downstream query to replay: which resolver carries it, which
/// client asked, and for what name.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The LDNS the client is configured to use.
    pub resolver: ResolverId,
    /// The asking client's address (first host of its /24).
    pub client: Ipv4Addr,
    /// The hostname looked up.
    pub qname: DnsName,
}

/// A pre-sampled, seed-deterministic downstream query stream.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Queries in arrival order.
    pub queries: Vec<PlannedQuery>,
}

impl QueryPlan {
    /// Samples `count` queries: origins demand-weighted through
    /// [`QueryPopulation`], names popularity-weighted over `domains`
    /// (name, weight) — the CDN's customer hostnames and their traffic
    /// shares.
    pub fn generate(
        net: &Internet,
        domains: &[(DnsName, f64)],
        seed: u64,
        count: usize,
    ) -> QueryPlan {
        assert!(!domains.is_empty(), "query plan needs at least one domain");
        let pop = QueryPopulation::build(net);
        let mut cumulative = Vec::with_capacity(domains.len());
        let mut acc = 0.0f64;
        for (_, w) in domains {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "query plan needs positive domain weight");
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(count);
        for _ in 0..count {
            let origin = pop.sample(&mut rng);
            let needle = rng.random_range(0.0..acc);
            let idx = cumulative.partition_point(|&c| c <= needle);
            let (qname, _) = &domains[idx.min(domains.len() - 1)];
            queries.push(PlannedQuery {
                resolver: origin.resolver,
                client: net.block(origin.block).client_ip(),
                qname: qname.clone(),
            });
        }
        QueryPlan { queries }
    }

    /// Number of planned queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// How a fleet run replays its plan.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The authoritative top level every resolver starts its walk at.
    pub top_ip: Ipv4Addr,
    /// Virtual time between consecutive queries *per worker*. Zero
    /// replays the whole plan at one instant (pure cache behavior, no
    /// TTL expiry); non-zero lets TTLs tick so churn shows up.
    pub query_interval: Duration,
}

impl RunConfig {
    /// Replay against `top_ip` with no virtual time passing.
    pub fn new(top_ip: Ipv4Addr) -> RunConfig {
        RunConfig {
            top_ip,
            query_interval: Duration::ZERO,
        }
    }
}

/// Aggregated outcome of one fleet run (cumulative over the fleet's
/// lifetime — run twice and the second report includes the first).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Resolver sites in the fleet.
    pub resolvers: usize,
    /// Downstream (client-facing) resolutions served.
    pub downstream_queries: u64,
    /// Downstream resolutions answered entirely from resolver caches.
    pub downstream_cache_hits: u64,
    /// Upstream (authoritative-facing) queries sent, retries included.
    pub upstream_queries: u64,
    /// Upstream attempts that timed out.
    pub upstream_timeouts: u64,
    /// Upstream SERVFAILs received.
    pub upstream_servfails: u64,
    /// Truncated (TC=1) answers retried over the stream (TCP) leg.
    pub upstream_tcp_retries: u64,
    /// Resolutions that failed (SERVFAIL toward the client).
    pub failures: u64,
    /// Negative (NXDOMAIN/NODATA) answers served.
    pub negative_answers: u64,
    /// Cache entries that expired off the timer wheels.
    pub expired_churn: u64,
    /// Live cache entries across the fleet at report time.
    pub cache_entries: usize,
    /// Cache hits split by the announced ECS scope length of the entry
    /// that served them (index 0: global/scope-0 entries).
    pub hits_by_scope: [u64; 33],
}

impl FleetReport {
    /// DNS amplification: upstream queries per downstream query. The
    /// quantity ECS inflates (cache fragmentation, RFC 7871 §7.1 /
    /// paper §6.3) — `1.0` would mean no caching benefit at all,
    /// healthy fleets sit well below, and the ECS-on/ECS-off ratio of
    /// two runs is the paper's scaling factor.
    pub fn amplification(&self) -> f64 {
        if self.downstream_queries == 0 {
            return 0.0;
        }
        self.upstream_queries as f64 / self.downstream_queries as f64
    }

    /// Fraction of downstream queries served from cache.
    pub fn hit_ratio(&self) -> f64 {
        if self.downstream_queries == 0 {
            return 0.0;
        }
        self.downstream_cache_hits as f64 / self.downstream_queries as f64
    }

    /// Hit ratio restricted to hits on entries of one scope length.
    pub fn hits_at_scope(&self, scope: u8) -> u64 {
        self.hits_by_scope[usize::from(scope.min(32))]
    }
}

/// Stamps one Client-hop record: only the whole-resolution latency and
/// the outcome as the client saw it (per-stage fields are the
/// downstream hops' business).
fn push_client_trace(ring: &TraceRing, worker: usize, tid: u32, t0: Option<Instant>, r: &Resolved) {
    let total = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
    let outcome = if r.rcode == Rcode::ServFail {
        TraceOutcome::Failed
    } else if r.from_cache {
        TraceOutcome::CacheHit
    } else {
        TraceOutcome::Computed
    };
    ring.push(&QueryTrace {
        shard: worker as u16,
        outcome,
        total_ns: total.min(u32::MAX as u64) as u32,
        ..QueryTrace::blank(tid, TraceHop::Client)
    });
}

/// Every LDNS site in a modeled Internet, ready to replay query plans.
pub struct ResolverFleet {
    /// Resolvers indexed by [`ResolverId::index`].
    resolvers: Vec<Ldns>,
    /// Ring receiving Client-hop records stamped by the replay workers
    /// (`None`: untraced).
    client_trace: Option<Arc<TraceRing>>,
}

impl ResolverFleet {
    /// One resolver per site in `net`, configured by `configure` (which
    /// receives each site and returns its [`LdnsConfig`] — this is where
    /// per-provider ECS roll-out policy lives).
    pub fn new(
        net: &Internet,
        now: Instant,
        mut configure: impl FnMut(&Resolver) -> LdnsConfig,
    ) -> ResolverFleet {
        let resolvers = net
            .resolvers
            .iter()
            .map(|r| Ldns::new(configure(r), now))
            .collect();
        ResolverFleet {
            resolvers,
            client_trace: None,
        }
    }

    /// Wires cross-layer tracing: every resolver records `Ldns`-hop
    /// traces into `ldns_ring`, and each replay worker stamps a
    /// `Client`-hop record (whole-resolution latency + outcome) into
    /// `client_ring`. [`ResolverFleet::run`] stamps each planned query
    /// with trace id = plan position + 1 — nonzero, and unique in the
    /// low 16 bits for plans under 65 536 queries, so the resolver can
    /// reuse those bits as its upstream DNS message id and
    /// `eum_telemetry::span::stitch` can join all three rings.
    pub fn attach_trace(&mut self, client_ring: Arc<TraceRing>, ldns_ring: Arc<TraceRing>) {
        for l in &mut self.resolvers {
            l.attach_trace(ldns_ring.clone());
        }
        self.client_trace = Some(client_ring);
    }

    /// Number of resolver sites.
    pub fn len(&self) -> usize {
        self.resolvers.len()
    }

    /// True when the fleet has no sites.
    pub fn is_empty(&self) -> bool {
        self.resolvers.is_empty()
    }

    /// Access one resolver by id.
    pub fn resolver(&self, id: ResolverId) -> &Ldns {
        &self.resolvers[id.index()]
    }

    /// Mutable access to one resolver (tests flip policies mid-run).
    pub fn resolver_mut(&mut self, id: ResolverId) -> &mut Ldns {
        &mut self.resolvers[id.index()]
    }

    /// Replays `plan` through the fleet, one worker thread per transport
    /// in `clients`. Resolver `i` is owned by worker `i % workers` for
    /// the whole run, so each resolver sees its queries in plan order
    /// regardless of thread interleaving. Returns the cumulative report.
    pub fn run<C: ClientTransport + Send>(
        &mut self,
        clients: Vec<C>,
        plan: &QueryPlan,
        cfg: &RunConfig,
    ) -> FleetReport {
        assert!(
            !clients.is_empty(),
            "fleet run needs at least one transport"
        );
        let workers = clients.len();
        let n = self.resolvers.len();

        // Partition resolvers round-robin into per-worker buckets.
        let mut buckets: Vec<VecDeque<Ldns>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, l) in self.resolvers.drain(..).enumerate() {
            buckets[i % workers].push_back(l);
        }

        // Split the plan: each query goes to the worker owning its
        // resolver, rewritten to the resolver's local index and stamped
        // with its propagated trace id (plan position + 1).
        let mut streams: Vec<Vec<(usize, Ipv4Addr, DnsName, u32)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (pos, q) in plan.queries.iter().enumerate() {
            let idx = q.resolver.index();
            assert!(idx < n, "plan references resolver outside the fleet");
            streams[idx % workers].push((idx / workers, q.client, q.qname.clone(), pos as u32 + 1));
        }

        let epoch = Instant::now();
        let interval = cfg.query_interval;
        let top_ip = cfg.top_ip;
        let client_trace = &self.client_trace;

        let mut done: Vec<(usize, VecDeque<Ldns>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .zip(clients)
                .zip(streams)
                .enumerate()
                .map(|(w, ((mut bucket, mut client), stream))| {
                    let ctrace = client_trace.clone();
                    scope.spawn(move || {
                        let shard = w % client.num_shards().max(1);
                        for (j, (local, src, qname, tid)) in stream.iter().enumerate() {
                            let now = epoch + interval * (j as u32);
                            let ldns = &mut bucket[*local];
                            let t0 = ctrace.as_ref().map(|_| Instant::now());
                            let r = ldns.resolve_traced(
                                &mut client,
                                shard,
                                top_ip,
                                qname,
                                *src,
                                now,
                                *tid,
                            );
                            if let Some(ring) = ctrace.as_ref() {
                                if ring.should_sample(*tid as u64) {
                                    push_client_trace(ring, w, *tid, t0, &r);
                                }
                            }
                        }
                        (w, bucket)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        });

        // Reassemble the arena in id order (bucket w holds ids w, w+k, …
        // in increasing order).
        done.sort_by_key(|(w, _)| *w);
        let mut buckets: Vec<VecDeque<Ldns>> = done.into_iter().map(|(_, b)| b).collect();
        for i in 0..n {
            let l = buckets[i % workers]
                .pop_front()
                .expect("every resolver returns from its worker");
            self.resolvers.push(l);
        }

        self.report()
    }

    /// Aggregates the fleet's cumulative counters into a report.
    pub fn report(&self) -> FleetReport {
        let mut r = FleetReport {
            resolvers: self.resolvers.len(),
            downstream_queries: 0,
            downstream_cache_hits: 0,
            upstream_queries: 0,
            upstream_timeouts: 0,
            upstream_servfails: 0,
            upstream_tcp_retries: 0,
            failures: 0,
            negative_answers: 0,
            expired_churn: 0,
            cache_entries: 0,
            hits_by_scope: [0; 33],
        };
        for l in &self.resolvers {
            let s: LdnsStats = l.stats();
            r.downstream_queries += s.downstream_queries;
            r.downstream_cache_hits += s.downstream_cache_hits;
            r.upstream_queries += s.upstream_queries;
            r.upstream_timeouts += s.upstream_timeouts;
            r.upstream_servfails += s.upstream_servfails;
            r.upstream_tcp_retries += s.upstream_tcp_retries;
            r.failures += s.failures;
            r.negative_answers += s.negative_answers;
            let c: LdnsCacheStats = l.cache().stats();
            r.expired_churn += c.expirations;
            r.cache_entries += l.cache().len();
            for (i, h) in c.hits_by_scope.iter().enumerate() {
                r.hits_by_scope[i] += h;
            }
        }
        r
    }
}
