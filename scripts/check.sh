#!/usr/bin/env bash
# Full local gate: formatting, lints as errors, model checking, and the
# test suite. Run from anywhere; operates on the repository this script
# lives in. Each step reports its wall-clock time so a slow gate can be
# blamed on the right step.
set -euo pipefail
cd "$(dirname "$0")/.."

step_start=0
step() {
    step_start=$SECONDS
    echo "==> $1"
}
step_done() {
    echo "    [$((SECONDS - step_start))s]"
}
total_start=$SECONDS

step "cargo fmt --check"
cargo fmt --check
step_done

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings
step_done

step "eum-lint (workspace invariants: lint.toml)"
cargo run -q -p eum-lint
step_done

step "model checking (scripts/mcheck.sh)"
scripts/mcheck.sh
step_done

step "cargo test -q"
cargo test -q
step_done

step "cargo bench --no-run"
cargo bench --no-run
step_done

step "socket smoke (multi-process loadgen over real SO_REUSEPORT shards)"
cargo run -q --release --example socket_loadgen -- --smoke
step_done

step "scrape smoke (live /metrics + /timeseries.jsonl during socket load)"
cargo run -q --release --example socket_loadgen -- --scrape-smoke | tee /dev/stderr | grep -q "SCRAPE PASS"
step_done

step "map-churn smoke (keyed delta invalidation vs generation clear)"
cargo run -q --release --example map_churn -- --smoke | tee /dev/stderr | grep -q "MAP-CHURN PASS"
step_done

step "chaos smoke (NXDOMAIN flood + flash crowd, defenses off vs on)"
cargo run -q --release --example chaos_lab -- --smoke | tee /dev/stderr | grep -q "CHAOS PASS"
step_done

echo "All checks passed in $((SECONDS - total_start))s."
