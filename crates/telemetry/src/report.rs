//! A periodic reporter thread.
//!
//! [`Reporter::spawn`] runs a closure every `interval` on a background
//! thread — typically one that snapshots a [`crate::Registry`] and prints
//! or ships its [`crate::Registry::render_text`] output. The thread
//! sleeps in short increments so `stop()` (or drop) returns promptly
//! instead of waiting out a long interval, and the closure runs one final
//! time on shutdown so the last partial interval is never silently lost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A background thread invoking a closure at a fixed interval.
#[derive(Debug)]
pub struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Spawns a thread that calls `tick` every `interval` until
    /// [`Reporter::stop`] (or drop), then once more before exiting.
    pub fn spawn(interval: Duration, mut tick: impl FnMut() + Send + 'static) -> Reporter {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut next = Instant::now() + interval;
            // relaxed-ok: the stop flag carries no data; the ticker only
            // needs to see it eventually and join() synchronizes shutdown
            while !flag.load(Ordering::Relaxed) {
                let now = Instant::now();
                if now >= next {
                    tick();
                    next = now + interval;
                    continue;
                }
                std::thread::sleep((next - now).min(Duration::from_millis(25)));
            }
            tick();
        });
        Reporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread, waits for the final tick, and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // relaxed-ok: paired with the Relaxed poll above; join() below is
        // the actual synchronization point
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticks_and_stops() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = ticks.clone();
        let rep = Reporter::spawn(Duration::from_millis(10), move || {
            t.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(60));
        rep.stop();
        let n = ticks.load(Ordering::Relaxed);
        assert!(n >= 2, "expected periodic ticks, got {n}");
    }

    #[test]
    fn final_tick_runs_even_if_stopped_early() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = ticks.clone();
        let rep = Reporter::spawn(Duration::from_secs(3600), move || {
            t.fetch_add(1, Ordering::Relaxed);
        });
        rep.stop();
        assert_eq!(ticks.load(Ordering::Relaxed), 1);
    }
}
