//! The operational weak-memory model the checker executes against.
//!
//! This is a view-based C11-style model (in the spirit of the "promising
//! semantics" operational formulations, minus promises): every atomic
//! location carries its full modification order as a list of store
//! messages, and every modeled thread carries a *view* — for each
//! location, the index of the newest store it is guaranteed to observe.
//! A `Relaxed` load may read **any** store at or after the thread's view
//! (that is what models staleness and store buffering); an `Acquire` load
//! additionally joins the release-view attached to the store it read,
//! which is how Release/Acquire pairs create happens-before edges. A
//! missing Release fence or a demoted Acquire simply fails to transfer a
//! view, and the exploration then finds the stale read that a real
//! weakly-ordered CPU is allowed to produce.
//!
//! The model is deliberately an *under*-approximation in one place:
//! modification order always equals execution (interleaving) order, so
//! two racing stores are never reordered against real time within one
//! execution. The DFS over interleavings recovers the other order as a
//! different execution, which keeps the model simple without losing the
//! bug classes we care about (missing fences, wrong orderings, torn
//! seqlock reads).

use std::sync::atomic::Ordering;

/// Index of a modeled atomic location within an execution.
pub type LocId = usize;

/// A vector clock over store indices: `view[loc]` is the index of the
/// oldest store to `loc` this thread is still allowed to read (it has
/// observed everything before it). Missing entries mean 0 (the initial
/// store).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct View {
    t: Vec<u32>,
}

impl View {
    /// The minimum readable store index for `loc`.
    pub fn get(&self, loc: LocId) -> u32 {
        self.t.get(loc).copied().unwrap_or(0)
    }

    /// Raise the floor for `loc` to at least `idx`.
    pub fn set_at_least(&mut self, loc: LocId, idx: u32) {
        if self.t.len() <= loc {
            self.t.resize(loc + 1, 0);
        }
        if self.t[loc] < idx {
            self.t[loc] = idx;
        }
    }

    /// Pointwise maximum (lattice join) with another view.
    pub fn join(&mut self, other: &View) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (a, b) in self.t.iter_mut().zip(&other.t) {
            if *a < *b {
                *a = *b;
            }
        }
    }
}

/// One store message in a location's modification order.
pub struct StoreMsg {
    /// The stored value (all modeled atomics are widened to u64).
    pub val: u64,
    /// The writer's view at the store, when the store is a release store
    /// (directly, via a preceding Release fence, or inherited through a
    /// release sequence by an RMW). `None` for plain relaxed stores —
    /// reading them transfers nothing.
    pub view: Option<View>,
}

/// A modeled atomic location: its whole modification order.
#[derive(Default)]
pub struct Location {
    /// Modification order; index 0 is the initial value.
    pub stores: Vec<StoreMsg>,
}

/// All locations of one execution plus the SC clock.
#[derive(Default)]
pub struct Memory {
    /// Locations in registration order.
    pub locs: Vec<Location>,
    /// The global view threaded through all `SeqCst` accesses; joining it
    /// both ways gives SeqCst operations a single total order strong
    /// enough for Dekker-style mutual exclusion.
    pub sc: View,
}

impl Memory {
    /// Register a new location whose initial value is `init`.
    pub fn alloc(&mut self, init: u64) -> LocId {
        self.locs.push(Location {
            stores: vec![StoreMsg {
                val: init,
                view: None,
            }],
        });
        self.locs.len() - 1
    }
}

/// Per-thread memory state.
#[derive(Clone, Default)]
pub struct ThreadMem {
    /// What this thread is guaranteed to observe.
    pub view: View,
    /// Set by a Release (or stronger) fence: attached to subsequent
    /// relaxed stores, making them release-publish everything up to the
    /// fence.
    pub rel_fence: Option<View>,
    /// Accumulated release-views of stores this thread has read with any
    /// ordering; an Acquire fence folds this into `view`, upgrading the
    /// earlier relaxed loads retroactively (C11 fence semantics).
    pub acq_pending: View,
}

fn acquiring(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releasing(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl ThreadMem {
    /// The store indices a load by this thread may legally read.
    pub fn load_candidates(&mut self, mem: &Memory, loc: LocId, ord: Ordering) -> (u32, u32) {
        if ord == Ordering::SeqCst {
            self.view.join(&mem.sc);
        }
        let min = self.view.get(loc);
        let len = mem.locs[loc].stores.len() as u32;
        (min, len)
    }

    /// Complete a load that chose store `idx` from the candidate range.
    pub fn apply_load(&mut self, mem: &mut Memory, loc: LocId, idx: u32, ord: Ordering) -> u64 {
        self.view.set_at_least(loc, idx);
        let msg = &mem.locs[loc].stores[idx as usize];
        if let Some(v) = &msg.view {
            self.acq_pending.join(v);
            if acquiring(ord) {
                self.view.join(v);
            }
        }
        let val = msg.val;
        if ord == Ordering::SeqCst {
            mem.sc.join(&self.view);
        }
        val
    }

    /// A plain store of `val`.
    pub fn store(&mut self, mem: &mut Memory, loc: LocId, val: u64, ord: Ordering) {
        if ord == Ordering::SeqCst {
            self.view.join(&mem.sc);
        }
        let idx = mem.locs[loc].stores.len() as u32;
        self.view.set_at_least(loc, idx);
        let view = if releasing(ord) {
            Some(self.view.clone())
        } else {
            self.rel_fence.clone()
        };
        mem.locs[loc].stores.push(StoreMsg { val, view });
        if ord == Ordering::SeqCst {
            mem.sc.join(&self.view);
        }
    }

    /// An atomic read-modify-write computing `new` from the current
    /// newest store (RMWs always read the tail of modification order).
    /// Returns the old value. `write` controls whether the write happens
    /// (compare_exchange failure is an RMW that reads but does not write).
    pub fn rmw(
        &mut self,
        mem: &mut Memory,
        loc: LocId,
        new: impl FnOnce(u64) -> u64,
        ord: Ordering,
        write: bool,
    ) -> u64 {
        if ord == Ordering::SeqCst {
            self.view.join(&mem.sc);
        }
        let read_idx = mem.locs[loc].stores.len() - 1;
        let old = mem.locs[loc].stores[read_idx].val;
        let read_view = mem.locs[loc].stores[read_idx].view.clone();
        self.view.set_at_least(loc, read_idx as u32);
        if let Some(v) = &read_view {
            self.acq_pending.join(v);
            if acquiring(ord) {
                self.view.join(v);
            }
        }
        if write {
            let idx = mem.locs[loc].stores.len() as u32;
            self.view.set_at_least(loc, idx);
            let mut attached = if releasing(ord) {
                Some(self.view.clone())
            } else {
                self.rel_fence.clone()
            };
            // Release-sequence continuation: an RMW in the middle of a
            // release sequence carries the head's release-view forward,
            // so `fetch_add` chains keep synchronizing.
            if let Some(rv) = read_view {
                match &mut attached {
                    Some(a) => a.join(&rv),
                    None => attached = Some(rv),
                }
            }
            mem.locs[loc].stores.push(StoreMsg {
                val: new(old),
                view: attached,
            });
        }
        if ord == Ordering::SeqCst {
            mem.sc.join(&self.view);
        }
        old
    }

    /// A standalone fence.
    pub fn fence(&mut self, mem: &mut Memory, ord: Ordering) {
        if ord == Ordering::SeqCst {
            self.view.join(&mem.sc);
        }
        if acquiring(ord) {
            let pending = self.acq_pending.clone();
            self.view.join(&pending);
        }
        if releasing(ord) {
            self.rel_fence = Some(self.view.clone());
        }
        if ord == Ordering::SeqCst {
            mem.sc.join(&self.view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = View::default();
        a.set_at_least(0, 3);
        a.set_at_least(2, 1);
        let mut b = View::default();
        b.set_at_least(0, 1);
        b.set_at_least(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(9), 0);
    }

    #[test]
    fn release_store_transfers_view_to_acquire_load() {
        let mut mem = Memory::default();
        let data = mem.alloc(0);
        let flag = mem.alloc(0);

        let mut writer = ThreadMem::default();
        writer.store(&mut mem, data, 41, Ordering::Relaxed);
        writer.store(&mut mem, flag, 1, Ordering::Release);

        let mut reader = ThreadMem::default();
        // Reader acquires the flag=1 store (index 1).
        let (min, len) = reader.load_candidates(&mem, flag, Ordering::Acquire);
        assert_eq!((min, len), (0, 2));
        let v = reader.apply_load(&mut mem, flag, 1, Ordering::Acquire);
        assert_eq!(v, 1);
        // Now the data=41 store is the only candidate: no stale read.
        let (min, len) = reader.load_candidates(&mem, data, Ordering::Relaxed);
        assert_eq!((min, len), (1, 2));
    }

    #[test]
    fn relaxed_store_transfers_nothing() {
        let mut mem = Memory::default();
        let data = mem.alloc(0);
        let flag = mem.alloc(0);

        let mut writer = ThreadMem::default();
        writer.store(&mut mem, data, 41, Ordering::Relaxed);
        writer.store(&mut mem, flag, 1, Ordering::Relaxed);

        let mut reader = ThreadMem::default();
        reader.apply_load(&mut mem, flag, 1, Ordering::Acquire);
        // Stale data read still permitted: the flag store was relaxed.
        let (min, len) = reader.load_candidates(&mem, data, Ordering::Relaxed);
        assert_eq!((min, len), (0, 2));
    }

    #[test]
    fn fence_pair_upgrades_relaxed_accesses() {
        let mut mem = Memory::default();
        let data = mem.alloc(0);
        let flag = mem.alloc(0);

        let mut writer = ThreadMem::default();
        writer.store(&mut mem, data, 41, Ordering::Relaxed);
        writer.fence(&mut mem, Ordering::Release);
        writer.store(&mut mem, flag, 1, Ordering::Relaxed);

        let mut reader = ThreadMem::default();
        reader.apply_load(&mut mem, flag, 1, Ordering::Relaxed);
        // Before the acquire fence the stale read is allowed...
        assert_eq!(reader.load_candidates(&mem, data, Ordering::Relaxed).0, 0);
        // ...after it, the release-fence view pins data at index 1.
        reader.fence(&mut mem, Ordering::Acquire);
        assert_eq!(reader.load_candidates(&mem, data, Ordering::Relaxed).0, 1);
    }
}
