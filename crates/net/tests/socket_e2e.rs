//! End-to-end over real kernel sockets: SO_REUSEPORT shard sockets
//! served by the batched (`recvmmsg`/`sendmmsg`) shard loop, and the
//! DNS-over-TCP fallback completing answers the UDP path had to
//! truncate.
//!
//! On Linux every shard socket shares one port and the *kernel* picks
//! the shard per client 4-tuple — so these tests use several client
//! sockets and assert on totals, never on which shard got which query.

use eum_authd::{AuthServer, ClientTransport, ServerConfig, SnapshotHandle};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, QueryContext, Question, Rcode};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_net::{BatchConfig, ReuseportUdpTransport, SocketClient, TcpServerTransport};
use eum_netmodel::{Internet, InternetConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x50C3;

fn world() -> (Internet, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, map)
}

/// The answer the mapping computes for `query` as seen from loopback
/// (the kernel peer address every socket query reports).
fn expected_ips(map: &MappingSystem, server: Ipv4Addr, query: &Message) -> Vec<Ipv4Addr> {
    let ctx = QueryContext {
        resolver_ip: Ipv4Addr::LOCALHOST,
        now_ms: 0,
    };
    let resp = map.answer(server, query, &ctx);
    assert_eq!(resp.flags.rcode, Rcode::NoError);
    let mut ips = resp.answer_ips();
    ips.sort_unstable();
    ips
}

#[test]
fn reuseport_batched_shards_answer_correctly() {
    let (net, map) = world();
    let low = map.ns_ips()[1];

    // Fixed probe set: ECS queries for several client blocks plus one
    // plain query.
    let mut probes: Vec<(Vec<u8>, u16, Vec<Ipv4Addr>)> = Vec::new();
    for (i, block) in net.blocks.iter().take(6).enumerate() {
        let id = 0x6000 + i as u16;
        let q = Message::query(
            id,
            Question::a("e0.cdn.example".parse().unwrap()),
            Some(OptData::with_ecs(EcsOption::query(block.client_ip(), 24))),
        );
        probes.push((encode_message(&q), id, expected_ips(&map, low, &q)));
    }
    let plain = Message::query(0x7000, Question::a("e1.cdn.example".parse().unwrap()), None);
    probes.push((
        encode_message(&plain),
        0x7000,
        expected_ips(&map, low, &plain),
    ));
    let probes = Arc::new(probes);

    let shards = 2;
    let (transports, addrs) =
        ReuseportUdpTransport::bind_shards(shards, &BatchConfig::default()).expect("bind shards");
    #[cfg(target_os = "linux")]
    assert!(
        addrs.windows(2).all(|w| w[0] == w[1]),
        "SO_REUSEPORT shards must share one address"
    );
    let server =
        AuthServer::spawn_batched(transports, SnapshotHandle::new(map), ServerConfig::new(low));

    // Several client sockets: distinct 4-tuples, so the kernel spreads
    // them over the shard sockets.
    const ROUNDS: usize = 30;
    let mut clients = Vec::new();
    for t in 0..4usize {
        let probes = probes.clone();
        let addrs = addrs.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = SocketClient::connect(addrs, Vec::new()).expect("bind client");
            for round in 0..ROUNDS {
                for (i, (payload, id, expect)) in probes.iter().enumerate() {
                    let shard = (t + round + i) % 2;
                    let bytes = client
                        .exchange(
                            shard,
                            Ipv4Addr::UNSPECIFIED,
                            Ipv4Addr::UNSPECIFIED,
                            payload,
                            Duration::from_secs(5),
                        )
                        .expect("exchange");
                    let resp = decode_message(&bytes).expect("response decodes");
                    assert_eq!(resp.id, *id);
                    assert!(resp.flags.qr);
                    assert!(!resp.flags.tc, "nothing here exceeds the payload limit");
                    assert_eq!(resp.flags.rcode, Rcode::NoError);
                    let mut ips = resp.answer_ips();
                    ips.sort_unstable();
                    assert_eq!(&ips, expect);
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    let reports = server.stop_join();
    let total: u64 = reports.iter().map(|r| r.queries).sum();
    assert_eq!(total, (4 * ROUNDS * probes.len()) as u64);
    for r in &reports {
        assert_eq!(r.dropped, 0, "shard {} dropped datagrams", r.shard);
        assert_eq!(r.malformed, 0, "shard {} saw malformed queries", r.shard);
        assert_eq!(r.truncated, 0, "shard {} truncated replies", r.shard);
    }
}

#[test]
fn truncated_reply_completes_over_tcp() {
    let (net, map) = world();
    let low = map.ns_ips()[1];
    let client_block = net.blocks[0].client_ip();

    let q = Message::query(
        0x4242,
        Question::a("e0.cdn.example".parse().unwrap()),
        Some(OptData::with_ecs(EcsOption::query(client_block, 24))),
    );
    let payload = encode_message(&q);
    let expect = expected_ips(&map, low, &q);

    // A UDP reply cap far below any real answer forces TC=1 on the
    // datagram path; the TCP listener shares the same snapshot handle, so
    // the stream retry gets the same generation's full answer.
    let cfg = ServerConfig::new(low).with_max_udp_reply(40);
    let snapshots = SnapshotHandle::new(map);
    let (udp_transports, udp_addrs) =
        ReuseportUdpTransport::bind_shards(2, &BatchConfig::default()).expect("bind shards");
    let tcp = TcpServerTransport::bind().expect("bind tcp");
    let tcp_addr = tcp.local_addr().expect("tcp addr");
    let udp_server = AuthServer::spawn_batched(udp_transports, snapshots.clone(), cfg.clone());
    let tcp_server = AuthServer::spawn(vec![tcp], snapshots, cfg);

    let mut client = SocketClient::connect(udp_addrs, vec![tcp_addr]).expect("bind client");

    // UDP leg: truncated, TC set, no usable answer records.
    let udp_bytes = client
        .exchange(
            0,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
            &payload,
            Duration::from_secs(5),
        )
        .expect("udp exchange");
    assert!(udp_bytes.len() <= 40, "reply must respect the UDP cap");
    let udp_resp = decode_message(&udp_bytes).expect("truncated reply decodes");
    assert_eq!(udp_resp.id, 0x4242);
    assert!(udp_resp.flags.tc, "over-limit reply must carry TC=1");
    assert!(
        udp_resp.answer_ips().is_empty(),
        "a 40-byte budget cannot carry answer records"
    );

    // TCP leg: the same query completes, un-truncated and uncapped.
    let tcp_bytes = client
        .exchange_stream(
            0,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
            &payload,
            Duration::from_secs(5),
        )
        .expect("tcp exchange");
    assert!(tcp_bytes.len() > 40, "stream reply is not size-capped");
    let tcp_resp = decode_message(&tcp_bytes).expect("stream reply decodes");
    assert_eq!(tcp_resp.id, 0x4242);
    assert!(!tcp_resp.flags.tc, "stream replies are never truncated");
    assert_eq!(tcp_resp.flags.rcode, Rcode::NoError);
    let mut ips = tcp_resp.answer_ips();
    ips.sort_unstable();
    assert_eq!(ips, expect, "TCP answer must match the mapping's answer");
    let echo = tcp_resp.ecs().expect("ECS echo survives the stream path");
    assert_eq!(echo.addr, EcsOption::query(client_block, 24).addr);

    let udp_reports = udp_server.stop_join();
    assert_eq!(
        udp_reports.iter().map(|r| r.truncated).sum::<u64>(),
        1,
        "exactly the one UDP exchange was truncated"
    );
    let tcp_reports = tcp_server.stop_join();
    assert_eq!(tcp_reports.iter().map(|r| r.queries).sum::<u64>(), 1);
    assert_eq!(tcp_reports.iter().map(|r| r.truncated).sum::<u64>(), 0);
}

/// The portable single-datagram path (the benchmark baseline and the
/// non-Linux fallback) serves the same answers.
#[test]
fn portable_fallback_round_trips() {
    let (_net, map) = world();
    let low = map.ns_ips()[1];
    let plain = Message::query(0x1111, Question::a("e0.cdn.example".parse().unwrap()), None);
    let payload = encode_message(&plain);
    let expect = expected_ips(&map, low, &plain);

    let cfg = BatchConfig {
        force_portable: true,
        ..BatchConfig::default()
    };
    let (transports, addrs) = ReuseportUdpTransport::bind_shards(1, &cfg).expect("bind");
    assert!(transports[0].is_portable());
    let server =
        AuthServer::spawn_batched(transports, SnapshotHandle::new(map), ServerConfig::new(low));
    let mut client = SocketClient::connect(addrs, Vec::new()).expect("client");
    for _ in 0..10 {
        let bytes = client
            .exchange(
                0,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::UNSPECIFIED,
                &payload,
                Duration::from_secs(5),
            )
            .expect("exchange");
        let resp = decode_message(&bytes).expect("decodes");
        let mut ips = resp.answer_ips();
        ips.sort_unstable();
        assert_eq!(ips, expect);
    }
    let reports = server.stop_join();
    assert_eq!(reports.iter().map(|r| r.queries).sum::<u64>(), 10);
}
