//! /24 client IP blocks.
//!
//! The paper's unit of client identity is the /24 client IP block (§2.1):
//! ECS queries carry /24 prefixes, NetSession aggregates client–LDNS pairs
//! to /24 granularity (§3.1), and end-user mapping units start from /24
//! blocks (§5.1). [`ClientBlock`] is that unit, annotated with everything
//! the measurement pipelines observe about it.

use crate::ids::{AsId, BlockId, ResolverId};
use crate::Endpoint;
use eum_geo::{Asn, Country, GeoPoint, Prefix};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A /24 block of client IPs with its geography, demand, and LDNS usage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientBlock {
    /// Arena index.
    pub id: BlockId,
    /// The /24 prefix.
    pub prefix: Prefix,
    /// Owning AS.
    pub as_id: AsId,
    /// AS number (denormalized for endpoint construction).
    pub asn: Asn,
    /// Geographic fix for the block (the paper geolocates blocks as units;
    /// for mobile blocks this is the gateway location).
    pub loc: GeoPoint,
    /// Country.
    pub country: Country,
    /// One-way access-network latency for clients in this block, ms.
    pub access_ms: f64,
    /// Client demand originating from this block (arbitrary traffic units;
    /// all analyses are demand-weighted per §3.1).
    pub demand: f64,
    /// The LDNSes clients of this block use, with relative frequency
    /// weights summing to 1 — exactly the per-block aggregate NetSession
    /// produces (§3.1: "For each LDNS in the set, the relative frequency
    /// with which that LDNS appeared was computed").
    pub ldns: Vec<(ResolverId, f64)>,
}

impl ClientBlock {
    /// A representative client IP inside the block (`.1`).
    pub fn client_ip(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.prefix.addr() | 1)
    }

    /// A specific host IP inside the block.
    pub fn host_ip(&self, host: u8) -> Ipv4Addr {
        Ipv4Addr::from(self.prefix.addr() | host as u32)
    }

    /// The block as a latency-model endpoint (representative client).
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::client(
            self.client_ip(),
            self.loc,
            self.country,
            self.asn,
            self.access_ms,
        )
    }

    /// The most-used LDNS for this block.
    pub fn primary_ldns(&self) -> ResolverId {
        self.ldns
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
            .expect("every block has at least one LDNS")
            .0
    }

    /// Demand attributed to a given LDNS (block demand × usage weight).
    pub fn demand_via(&self, resolver: ResolverId) -> f64 {
        self.ldns
            .iter()
            .filter(|(r, _)| *r == resolver)
            .map(|(_, w)| w * self.demand)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> ClientBlock {
        ClientBlock {
            id: BlockId(0),
            prefix: "11.2.3.0/24".parse().unwrap(),
            as_id: AsId(0),
            asn: Asn(100),
            loc: GeoPoint::new(10.0, 20.0),
            country: Country::France,
            access_ms: 8.0,
            demand: 10.0,
            ldns: vec![(ResolverId(0), 0.9), (ResolverId(1), 0.1)],
        }
    }

    #[test]
    fn ips_are_inside_the_prefix() {
        let b = block();
        assert!(b.prefix.contains(b.client_ip()));
        assert!(b.prefix.contains(b.host_ip(200)));
        assert_eq!(b.client_ip(), Ipv4Addr::new(11, 2, 3, 1));
        assert_eq!(b.host_ip(200), Ipv4Addr::new(11, 2, 3, 200));
    }

    #[test]
    fn primary_ldns_is_heaviest() {
        assert_eq!(block().primary_ldns(), ResolverId(0));
    }

    #[test]
    fn demand_via_splits_by_weight() {
        let b = block();
        assert!((b.demand_via(ResolverId(0)) - 9.0).abs() < 1e-12);
        assert!((b.demand_via(ResolverId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(b.demand_via(ResolverId(9)), 0.0);
    }

    #[test]
    fn endpoint_carries_block_attributes() {
        let b = block();
        let e = b.endpoint();
        assert_eq!(e.ip, b.client_ip());
        assert_eq!(e.access_ms, 8.0);
        assert_eq!(e.asn, Asn(100));
    }
}
