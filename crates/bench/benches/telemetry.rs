//! Benchmarks for the telemetry layer's hot-path primitives — the costs
//! the serving path pays per query when observed: a counter increment, a
//! striped histogram record, a sampled trace push — plus the read-side
//! costs a scrape pays (snapshot, quantile, render_text).
//!
//! The per-query operations must stay in the few-nanosecond range: the
//! acceptance bar for wiring telemetry through `authd` is zero added
//! locks and negligible added latency on the serve path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eum_telemetry::{Histogram, QueryTrace, Registry, TraceHop, TraceOutcome, TraceRing};
use std::hint::black_box;
use std::sync::Arc;

fn bench_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/record");
    let counter = Registry::new().counter("eum_bench_total", "bench", &[]);
    g.bench_function("counter_inc", |b| b.iter(|| black_box(&counter).inc()));
    for stripes in [1usize, 4] {
        let h = Histogram::striped(stripes);
        let mut v = 0u64;
        g.bench_with_input(
            BenchmarkId::new("histogram_record", stripes),
            &stripes,
            |b, &s| {
                b.iter(|| {
                    v = v.wrapping_add(0x9E37_79B9);
                    h.record_at(v as usize % s, black_box(v >> 40));
                })
            },
        );
    }
    let ring = Arc::new(TraceRing::new(4096));
    let trace = QueryTrace {
        shard: 1,
        generation: 3,
        ecs_scope: Some(24),
        outcome: TraceOutcome::CacheHit,
        decode_ns: 120,
        cache_ns: 80,
        encode_ns: 240,
        total_ns: 600,
        ..QueryTrace::blank(0x00C0_FFEE, TraceHop::Authd)
    };
    g.bench_function("trace_push", |b| b.iter(|| ring.push(black_box(&trace))));
    g.finish();
}

fn bench_read_side(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/read");
    let h = Histogram::striped(4);
    let mut v = 1u64;
    for _ in 0..100_000 {
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
        h.record_at((v % 4) as usize, v >> 44);
    }
    g.bench_function("snapshot_100k", |b| b.iter(|| black_box(h.snapshot())));
    let snap = h.snapshot();
    g.bench_function("quantile_p99", |b| {
        b.iter(|| black_box(snap.quantile(0.99)))
    });

    // A registry shaped like a running 4-shard authd server.
    let reg = Registry::new();
    for shard in 0..4 {
        let s = shard.to_string();
        for name in [
            "eum_authd_queries_total",
            "eum_authd_cache_hits_total",
            "eum_authd_cache_misses_total",
        ] {
            reg.counter(name, "bench", &[("shard", &s)]).add(shard);
        }
    }
    for name in ["eum_authd_serve_ns", "eum_authd_stage_route_ns"] {
        let h = reg.histogram_striped(name, "bench", &[], 4);
        for i in 0..1000u64 {
            h.record_at((i % 4) as usize, i * 97);
        }
    }
    g.bench_function("render_text", |b| b.iter(|| black_box(reg.render_text())));
    g.finish();
}

criterion_group!(benches, bench_record, bench_read_side);
criterion_main!(benches);
