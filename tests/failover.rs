//! Integration: liveness — the mapping system routes around dead clusters
//! and dead servers, and recovers when they return (the paper's "the
//! chosen server is live" requirement, §1).

use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::{fetch_page, AuthNet, QueryCounters};

fn resolve_ips(w: &mut Scenario, block_idx: usize, now_ms: u64) -> Vec<std::net::Ipv4Addr> {
    let block = w.net.blocks[block_idx].clone();
    let ldns = block.primary_ldns();
    let resolver_info = w.net.resolver(ldns).clone();
    let latency = w.net.latency;
    let mut counters = QueryCounters::new();
    let domain = w.catalog.domains[0].clone();
    let mut authnet = AuthNet {
        mapping: &mut w.mapping,
        static_auths: &w.static_auths,
        endpoints: &w.endpoints,
        latency: &latency,
        resolver_ep: resolver_info.endpoint(),
        resolver_is_public: resolver_info.kind.is_public(),
        root_ip: w.root_ip,
        counters: &mut counters,
        day: 0,
    };
    w.resolvers[ldns.index()]
        .resolve(&domain.www_name, block.client_ip(), now_ms, &mut authnet)
        .ips
}

#[test]
fn dead_cluster_triggers_remap_and_recovery() {
    let mut w = Scenario::build(ScenarioConfig::tiny(0xFA11));
    let ips = resolve_ips(&mut w, 0, 0);
    assert_eq!(ips.len(), 2);
    let cluster = w.cdn.server(w.cdn.server_by_ip(ips[0]).unwrap()).cluster;

    // Kill the serving cluster; the mapping system learns via its
    // liveness feed.
    w.cdn.set_cluster_alive(cluster, false);
    w.mapping.refresh_liveness(&w.cdn);

    // A fresh resolution (past TTL) must route elsewhere.
    let ips2 = resolve_ips(&mut w, 0, 200_000_000);
    assert!(!ips2.is_empty());
    for ip in &ips2 {
        let c = w.cdn.server(w.cdn.server_by_ip(*ip).unwrap()).cluster;
        assert_ne!(c, cluster, "answer still points at the dead cluster");
        assert!(w.cdn.cluster(c).alive);
    }

    // And the page still loads from the failover cluster.
    let block = w.net.blocks[0].clone();
    let latency = w.net.latency;
    let outcome = fetch_page(&mut w.cdn, &w.catalog, &latency, &block, 0, &ips2);
    assert!(outcome.is_some(), "failover fetch failed");

    // Recovery: revive, refresh, resolve again after TTL — the original
    // (better) cluster returns.
    w.cdn.set_cluster_alive(cluster, true);
    w.mapping.refresh_liveness(&w.cdn);
    let ips3 = resolve_ips(&mut w, 0, 400_000_000);
    let c3 = w.cdn.server(w.cdn.server_by_ip(ips3[0]).unwrap()).cluster;
    assert_eq!(c3, cluster, "mapping did not fail back after recovery");
}

#[test]
fn stale_cached_answer_with_dead_server_falls_to_second_ip() {
    // The paper's reason for returning two IPs: if the primary dies while
    // a cached answer is still live, the client uses the second.
    let mut w = Scenario::build(ScenarioConfig::tiny(0xFA12));
    let ips = resolve_ips(&mut w, 0, 0);
    let primary = w.cdn.server_by_ip(ips[0]).unwrap();
    w.cdn.servers[primary.index()].alive = false;

    let block = w.net.blocks[0].clone();
    let latency = w.net.latency;
    let outcome = fetch_page(&mut w.cdn, &w.catalog, &latency, &block, 0, &ips)
        .expect("second IP must carry the load");
    assert_eq!(outcome.server, w.cdn.server_by_ip(ips[1]).unwrap());
}

#[test]
fn all_answered_servers_dead_fails_the_fetch_only() {
    let mut w = Scenario::build(ScenarioConfig::tiny(0xFA13));
    let ips = resolve_ips(&mut w, 0, 0);
    for ip in &ips {
        let sid = w.cdn.server_by_ip(*ip).unwrap();
        w.cdn.servers[sid.index()].alive = false;
    }
    let block = w.net.blocks[0].clone();
    let latency = w.net.latency;
    assert!(fetch_page(&mut w.cdn, &w.catalog, &latency, &block, 0, &ips).is_none());
    // After the mapping refresh and TTL expiry, service resumes on other
    // servers of the same cluster.
    w.mapping.refresh_liveness(&w.cdn);
    let ips2 = resolve_ips(&mut w, 0, 200_000_000);
    let outcome = fetch_page(&mut w.cdn, &w.catalog, &latency, &block, 0, &ips2);
    assert!(outcome.is_some());
}
