//! Full versus incremental map rebuild — the PR 8 speedup artifact.
//!
//! `rebuild_full` re-runs the whole pipeline (ping-target selection, the
//! ping matrix, every score row, every preference sort, the solver);
//! `rebuild_incremental_*` replays the same world through
//! [`MappingSystem::rebuild_incremental`] with measurement-drift hints
//! covering ~1% and ~10% of the NS unit population — the rescore pass
//! touches only the hinted rows, the cached preference table skips the
//! sorts, and the solver re-runs over cached tables. The equivalence
//! suite (`crates/mapping/tests/incremental_equiv.rs`) proves the two
//! paths produce identical maps; this bench records what the identity
//! costs. `scripts/bench_record.sh pr8` writes the numbers to
//! BENCH_pr8.json.

use criterion::{criterion_group, criterion_main, Criterion};
use eum_bench::BENCH_SEED;
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_mapping::{MappingConfig, MappingPolicy, MappingSystem, RescoreHints, UnitId};
use eum_netmodel::{Internet, InternetConfig};
use std::hint::black_box;

fn world() -> (Internet, CdnPlatform, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::small(BENCH_SEED));
    let sites = deployment_universe(BENCH_SEED, 24);
    let cdn = CdnPlatform::deploy(&mut net, &sites, &DeployConfig::default());
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(BENCH_SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            policy: MappingPolicy::end_user_default(),
            ..MappingConfig::default()
        },
    );
    (net, cdn, map)
}

/// A rotating window of `k` NS-unit hints starting at `at` — NS units
/// never trip the ping-target staleness fallback, so every iteration
/// stays on the incremental path (asserted below).
fn ns_hints(n_units: usize, k: usize, at: usize) -> RescoreHints {
    let mut hints = RescoreHints::default();
    for j in 0..k {
        hints.ns.push(UnitId(((at + j) % n_units) as u32));
    }
    hints
}

fn bench_rebuild(c: &mut Criterion) {
    let (net, cdn, mut map) = world();
    let n_ns = map.ns_units().len();
    let total = map.total_units();

    c.bench_function("rebuild_full", |b| {
        b.iter(|| {
            map.rebuild(black_box(&net), black_box(&cdn));
        })
    });

    for (label, pct) in [
        ("rebuild_incremental_1pct", 1),
        ("rebuild_incremental_10pct", 10),
    ] {
        // Churn fraction is measured against the *total* unit population
        // the delta is keyed over, floored at one unit.
        let k = (total * pct / 100).clamp(1, n_ns);
        let mut at = 0usize;
        c.bench_function(label, |b| {
            b.iter(|| {
                let hints = ns_hints(n_ns, k, at);
                at += k;
                let delta = map.rebuild_incremental(black_box(&net), &cdn, &hints);
                assert!(!delta.is_full(), "hinted churn must stay incremental");
                delta
            })
        });
    }
}

criterion_group!(benches, bench_rebuild);
criterion_main!(benches);
