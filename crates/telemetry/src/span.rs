//! Cross-layer span stitching: joining per-layer trace rings into
//! end-to-end query timelines.
//!
//! Each layer of the serving stack (sim client, eum-ldns, eum-authd)
//! records [`QueryTrace`]s into its own [`TraceRing`], tagged with a
//! [`TraceHop`] and a propagated trace id. The id flows downstream with
//! the query: the client stamps a full 32-bit id, the resolver records
//! it verbatim and reuses its **low 16 bits as the upstream DNS message
//! id**, and the authoritative stamps the message id it sees on the
//! wire. [`stitch`] inverts that flow: client and ldns records join on
//! the full id; authd records, which only ever saw 16 bits, attach to
//! the unique span whose id matches in the low 16 bits (ambiguous or
//! unmatched authd records become standalone spans rather than being
//! attributed wrongly).
//!
//! Rings are *sampled*: a hop whose ring samples 1-in-N contributes
//! records for 1/N of its queries, so a span may legitimately miss
//! hops. The per-ring rate is exported as the `eum_trace_sample_rate`
//! gauge; multiply span counts by it to estimate population totals.

use crate::trace::{QueryTrace, TraceHop, TraceRing};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One query's records across every layer that sampled it.
#[derive(Debug, Clone)]
pub struct QuerySpan {
    /// The propagated trace id (full 32 bits when a client or ldns hop
    /// was captured; the 16-bit wire id for standalone authd spans).
    pub trace_id: u32,
    /// The originating client's record, if sampled.
    pub client: Option<QueryTrace>,
    /// The recursive resolver's record, if sampled.
    pub ldns: Option<QueryTrace>,
    /// Authoritative records joined by 16-bit wire id (one per upstream
    /// exchange the authd sampled — a traced resolution can produce
    /// several: delegation fetch, answer fetch, TCP retry).
    pub authd: Vec<QueryTrace>,
}

impl QuerySpan {
    fn new(trace_id: u32) -> QuerySpan {
        QuerySpan {
            trace_id,
            client: None,
            ldns: None,
            authd: Vec::new(),
        }
    }

    /// How many layers contributed at least one record.
    pub fn hops(&self) -> usize {
        self.client.is_some() as usize
            + self.ldns.is_some() as usize
            + (!self.authd.is_empty()) as usize
    }

    /// The widest captured latency: the client's total when present,
    /// else the ldns total, else the slowest authd record.
    pub fn end_to_end_ns(&self) -> u32 {
        if let Some(c) = &self.client {
            return c.total_ns;
        }
        if let Some(l) = &self.ldns {
            return l.total_ns;
        }
        self.authd.iter().map(|t| t.total_ns).max().unwrap_or(0)
    }

    /// One-line hop timeline: per-hop nanoseconds and outcomes.
    pub fn render(&self) -> String {
        let mut out = format!("span {:08x}:", self.trace_id);
        match &self.client {
            Some(c) => {
                let _ = write!(out, " client {} {}ns", c.outcome.label(), c.total_ns);
            }
            None => out.push_str(" client -"),
        }
        match &self.ldns {
            Some(l) => {
                let _ = write!(
                    out,
                    " | ldns {} {}ns (probe {} deleg {} upstream {} tcp {}){}",
                    l.outcome.label(),
                    l.total_ns,
                    l.decode_ns,
                    l.cache_ns,
                    l.route_ns,
                    l.encode_ns,
                    if l.truncated { " tc-retry" } else { "" },
                );
            }
            None => out.push_str(" | ldns -"),
        }
        if self.authd.is_empty() {
            out.push_str(" | authd -");
        } else {
            let _ = write!(out, " | authd x{} [", self.authd.len());
            for (i, t) in self.authd.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{} {}ns{}",
                    t.outcome.label(),
                    t.total_ns,
                    if t.truncated { " tc" } else { "" }
                );
            }
            out.push(']');
        }
        out
    }
}

/// Dumps `rings` and joins their records into spans, sorted by trace
/// id. Records with trace id 0 (untraced queries) are dropped — they
/// cannot be attributed.
pub fn stitch(rings: &[&TraceRing]) -> Vec<QuerySpan> {
    let traces: Vec<QueryTrace> = rings.iter().flat_map(|r| r.dump()).collect();
    stitch_traces(traces)
}

/// [`stitch`] over already-dumped records (for tests and offline
/// analysis of serialized rings).
pub fn stitch_traces(traces: Vec<QueryTrace>) -> Vec<QuerySpan> {
    let mut spans: Vec<QuerySpan> = Vec::new();
    let mut by_full: HashMap<u32, usize> = HashMap::new();
    let mut authd_pending: Vec<QueryTrace> = Vec::new();
    for t in traces {
        if t.trace_id == 0 {
            continue;
        }
        match t.hop {
            TraceHop::Authd => authd_pending.push(t),
            hop => {
                let idx = *by_full.entry(t.trace_id).or_insert_with(|| {
                    spans.push(QuerySpan::new(t.trace_id));
                    spans.len() - 1
                });
                // lint note: plain Vec index, always in range by construction
                let span = &mut spans[idx];
                match hop {
                    TraceHop::Client => span.client = Some(t),
                    TraceHop::Ldns => span.ldns = Some(t),
                    TraceHop::Authd => unreachable!("matched above"),
                }
            }
        }
    }
    // Authd only knows the 16-bit wire id: attach each record to the
    // unique span matching in the low 16 bits, else keep it standalone.
    let mut by_low: HashMap<u16, Vec<usize>> = HashMap::new();
    for (idx, s) in spans.iter().enumerate() {
        by_low.entry(s.trace_id as u16).or_default().push(idx);
    }
    let mut standalone: HashMap<u32, usize> = HashMap::new();
    for t in authd_pending {
        let low = t.trace_id as u16;
        match by_low.get(&low).map(Vec::as_slice) {
            Some([only]) => spans[*only].authd.push(t),
            _ => {
                let idx = *standalone.entry(t.trace_id).or_insert_with(|| {
                    spans.push(QuerySpan::new(t.trace_id));
                    spans.len() - 1
                });
                spans[idx].authd.push(t);
            }
        }
    }
    spans.sort_by_key(|s| s.trace_id);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOutcome;

    fn rec(trace_id: u32, hop: TraceHop, total_ns: u32) -> QueryTrace {
        QueryTrace {
            total_ns,
            outcome: TraceOutcome::Computed,
            ..QueryTrace::blank(trace_id, hop)
        }
    }

    #[test]
    fn full_ids_join_and_authd_attaches_by_low16() {
        let client = TraceRing::new(8);
        let ldns = TraceRing::new(8);
        let authd = TraceRing::new(8);
        client.push(&rec(0x0001_0042, TraceHop::Client, 5000));
        ldns.push(&rec(0x0001_0042, TraceHop::Ldns, 4000));
        authd.push(&rec(0x0042, TraceHop::Authd, 900));
        authd.push(&rec(0x0042, TraceHop::Authd, 300));
        let spans = stitch(&[&client, &ldns, &authd]);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.trace_id, 0x0001_0042);
        assert_eq!(s.hops(), 3);
        assert_eq!(s.end_to_end_ns(), 5000);
        assert_eq!(s.authd.len(), 2);
        let line = s.render();
        assert!(line.contains("client computed 5000ns"));
        assert!(line.contains("authd x2"));
    }

    #[test]
    fn ambiguous_low16_stays_standalone() {
        // Two spans whose ids collide in the low 16 bits: the authd
        // record must not be guessed onto either.
        let traces = vec![
            rec(0x0001_0007, TraceHop::Client, 100),
            rec(0x0002_0007, TraceHop::Client, 200),
            rec(0x0007, TraceHop::Authd, 50),
        ];
        let spans = stitch_traces(traces);
        assert_eq!(spans.len(), 3);
        let standalone = spans.iter().find(|s| s.trace_id == 0x0007).unwrap();
        assert!(standalone.client.is_none());
        assert_eq!(standalone.authd.len(), 1);
        assert_eq!(standalone.hops(), 1);
    }

    #[test]
    fn untraced_records_are_dropped_and_missing_hops_render() {
        let spans = stitch_traces(vec![
            rec(0, TraceHop::Client, 1),
            rec(9, TraceHop::Ldns, 700),
        ]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end_to_end_ns(), 700);
        let line = spans[0].render();
        assert!(line.contains("client -"));
        assert!(line.contains("authd -"));
    }
}
