//! Reproduces Figure 15 of the paper. Pass `--quick` for a smaller world.

use eum_repro::{figures4, rollout_report, Scale};
use eum_sim::Metric;

fn main() {
    let scale = Scale::from_args();
    let r = rollout_report(scale);
    print!(
        "{}",
        figures4::fig_daily(&r, Metric::Rtt, "Figure 15", scale)
    );
}
