//! eum-mcheck: a pure-std, loom-style deterministic concurrency model
//! checker for the lock-free serving core.
//!
//! The serving stack's correctness rests on a handful of hand-audited
//! lock-free structures (the seqlock trace ring, the epoch-pointer
//! snapshot cell, the striped metrics registry). Nondeterministic stress
//! tests exercise them by luck; this crate exercises them by
//! *enumeration*: [`check`] runs a closure under a cooperative scheduler
//! that explores thread interleavings depth-first with iterative context
//! bounding, over a view-based weak-memory model ([`memory`]) strong
//! enough to produce the stale reads a real weakly-ordered CPU may
//! produce when a Release/Acquire pair or a fence is missing.
//!
//! Product code does not depend on the checker at runtime: it imports
//! its atomics through the [`sync`] facade, which in production builds
//! is a verbatim re-export of `std::sync::atomic` (zero-cost; a test
//! pins `TypeId` equality) and only becomes the modeled implementation
//! under `--cfg eum_mcheck`. Model tests can also compile a source file
//! directly against [`modeled`] via `#[path]` inclusion, so plain
//! `cargo test` explores interleavings with no special build flags.
//!
//! ```
//! use eum_mcheck::{self as mcheck, modeled::AtomicU64};
//! use std::sync::Arc;
//! use std::sync::atomic::Ordering;
//!
//! let report = mcheck::verify("handoff", &mcheck::Config::default(), || {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let f2 = flag.clone();
//!     let t = mcheck::spawn(move || f2.store(1, Ordering::Release));
//!     let _ = flag.load(Ordering::Acquire);
//!     t.join();
//! });
//! assert!(report.complete);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;
pub mod model;
pub mod modeled;
pub mod sync;

pub use model::{
    check, exhaustive, expect_failure, spawn, verify, Config, FailureReport, JoinHandle, Report,
};
