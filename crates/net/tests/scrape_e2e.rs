//! End-to-end scrape: while the batched socket server answers real UDP
//! queries, an HTTP scraper on the same loopback stack fetches
//! `/metrics` (Prometheus text including the new batch-fill series),
//! `/timeseries.jsonl` (captured windows), and `/healthz` — proving the
//! observability plane is readable mid-run without touching the shards.

use eum_authd::{AuthServer, ClientTransport, ServerConfig, SnapshotHandle, TelemetryConfig};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, Message, Question, Rcode};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_net::{BatchConfig, ReuseportUdpTransport, ScrapeServer, SocketClient};
use eum_netmodel::{Internet, InternetConfig};
use eum_telemetry::{Registry, TraceRing, WindowCapturer};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddrV4, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5C4A;

fn world() -> (Internet, MappingSystem) {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    (net, map)
}

/// One blocking HTTP/1.0 GET against the scrape endpoint; returns
/// (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: scrape\r\n\r\n").expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is utf-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn live_scrape_over_running_socket_server() {
    let (net, map) = world();
    let low = map.ns_ips()[1];

    let registry = Arc::new(Registry::new());
    let ring = Arc::new(TraceRing::new(1 << 10));
    let capturer = Arc::new(WindowCapturer::new(registry.clone(), 64));

    let shards = 2;
    let (mut transports, addrs) =
        ReuseportUdpTransport::bind_shards(shards, &BatchConfig::default()).expect("bind shards");
    for (i, t) in transports.iter_mut().enumerate() {
        t.attach_metrics(&registry, i);
    }
    let cfg = ServerConfig::new(low)
        .with_telemetry(TelemetryConfig::metrics(registry.clone()).with_trace(ring.clone(), 1));
    let server = AuthServer::spawn_batched(transports, SnapshotHandle::new(map), cfg);

    let scrape = ScrapeServer::spawn(
        SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0),
        registry.clone(),
        Some(capturer.clone()),
    )
    .expect("spawn scrape server");

    // Liveness before any load.
    let (status, body) = http_get(scrape.addr(), "/healthz");
    assert!(status.contains("200"), "healthz status: {status}");
    assert_eq!(body, "ok\n");

    // Drive real queries through the batched shards while scraping.
    capturer.capture();
    let mut client = SocketClient::connect(addrs, Vec::new()).expect("bind client");
    for round in 0..20u16 {
        for (i, block) in net.blocks.iter().take(4).enumerate() {
            let q = Message::query(
                0x4000 + round * 8 + i as u16,
                Question::a("e0.cdn.example".parse().unwrap()),
                Some(OptData::with_ecs(EcsOption::query(block.client_ip(), 24))),
            );
            let bytes = client
                .exchange(
                    (round as usize + i) % shards,
                    Ipv4Addr::UNSPECIFIED,
                    Ipv4Addr::UNSPECIFIED,
                    &encode_message(&q),
                    Duration::from_secs(5),
                )
                .expect("exchange");
            let resp = decode_message(&bytes).expect("response decodes");
            assert_eq!(resp.flags.rcode, Rcode::NoError);
        }
    }
    capturer.capture();

    // /metrics mid-run: valid Prometheus text with the batch-fill
    // histogram, the partial-send counter, and the sample-rate gauge.
    let (status, body) = http_get(scrape.addr(), "/metrics");
    assert!(status.contains("200"), "metrics status: {status}");
    assert!(
        body.contains("# TYPE eum_net_recv_batch_fill histogram"),
        "batch fill family missing:\n{body}"
    );
    assert!(
        body.contains("eum_net_sendmmsg_partial_total"),
        "partial send counter missing"
    );
    assert!(
        body.contains("eum_authd_queries_total"),
        "authd counters missing"
    );
    assert!(
        body.contains("eum_trace_sample_rate 1"),
        "sample-rate gauge missing"
    );
    // Structural sanity: every non-comment line is `name{labels} value`.
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        value.parse::<f64>().expect("sample value parses");
    }
    // The shards actually recorded batch fills for the queries above.
    let fill_count: f64 = body
        .lines()
        .filter(|l| l.starts_with("eum_net_recv_batch_fill_count"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap())
        .sum();
    assert!(fill_count >= 1.0, "no recv batches recorded:\n{body}");

    // /timeseries.jsonl: one JSON object per captured window, and the
    // load window shows query throughput.
    let (status, body) = http_get(scrape.addr(), "/timeseries.jsonl");
    assert!(status.contains("200"), "timeseries status: {status}");
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() >= 2, "expected >=2 windows, got:\n{body}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "window line is not a JSON object: {line}"
        );
    }
    // The load landed inside a captured window: per-window query deltas
    // across shards sum to the queries we sent.
    let delta_after = |line: &str, key: &str| -> u64 {
        line.find(key)
            .map(|at| {
                line[at + key.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse::<u64>()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    };
    let windowed_queries: u64 = lines
        .iter()
        .map(|l| {
            delta_after(l, "eum_authd_queries_total{shard=\\\"0\\\"}\":")
                + delta_after(l, "eum_authd_queries_total{shard=\\\"1\\\"}\":")
        })
        .sum();
    assert_eq!(
        windowed_queries, 80,
        "window deltas must reconcile to the 80 queries sent:\n{body}"
    );

    // Unknown routes 404, non-GET 405.
    let (status, _) = http_get(scrape.addr(), "/nope");
    assert!(status.contains("404"), "unknown path status: {status}");

    // Traces flowed: the ring sampled authd records for the queries.
    assert!(!ring.dump().is_empty(), "no traces sampled");

    drop(client);
    server.stop_join();
    scrape.stop_join();
}
