//! The Real User Measurement (RUM) substrate (§4.2).
//!
//! The paper's client-side metrics come from JavaScript injected into
//! delivered pages, reporting navigation-timing milestones to a backend.
//! Here, every simulated page load emits a [`RumSample`] with the four
//! §4.1 metrics plus the grouping attributes the analysis sections slice
//! by (day, country, expectation group, public-resolver usage).

use eum_geo::Country;
use eum_stats::{Cdf, DailySeries, WeightedSample};
use serde::{Deserialize, Serialize};

/// The metric being analyzed (paper §4.1's four metrics, plus DNS time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Great-circle client ↔ assigned-server distance, miles.
    MappingDistance,
    /// TCP round-trip time between client and assigned server, ms.
    Rtt,
    /// Time to first byte, ms.
    Ttfb,
    /// Content download time, ms.
    Download,
    /// DNS resolution time observed by the client, ms.
    Dns,
}

impl Metric {
    /// Display name matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::MappingDistance => "Mapping distance (miles)",
            Metric::Rtt => "RTT (ms)",
            Metric::Ttfb => "Time to first byte (ms)",
            Metric::Download => "Content download time (ms)",
            Metric::Dns => "DNS resolution time (ms)",
        }
    }
}

/// One page-load measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RumSample {
    /// Day index from scenario start.
    pub day: u32,
    /// Client country.
    pub country: Country,
    /// Whether the client's country is in the high-expectation group
    /// (§4.1.1).
    pub high_expectation: bool,
    /// Whether this load's LDNS was a public resolver.
    pub public_resolver: bool,
    /// Whether this load's LDNS belongs to an ECS-capable provider — the
    /// paper's "qualified clients" are users of the providers the roll-out
    /// actually reached (Google Public DNS / OpenDNS analogues).
    pub ecs_capable_resolver: bool,
    /// Mapping distance, miles.
    pub mapping_distance_miles: f64,
    /// Client↔server RTT, ms.
    pub rtt_ms: f64,
    /// Time to first byte, ms.
    pub ttfb_ms: f64,
    /// Content download time, ms.
    pub download_ms: f64,
    /// DNS resolution time, ms.
    pub dns_ms: f64,
    /// Catalog domain loaded.
    pub domain: u32,
    /// Great-circle distance from the client block to the LDNS used for
    /// this load, miles (for §4.5's distance-band extrapolation).
    pub client_ldns_miles: f64,
}

impl RumSample {
    /// Extracts a metric value.
    pub fn metric(&self, m: Metric) -> f64 {
        match m {
            Metric::MappingDistance => self.mapping_distance_miles,
            Metric::Rtt => self.rtt_ms,
            Metric::Ttfb => self.ttfb_ms,
            Metric::Download => self.download_ms,
            Metric::Dns => self.dns_ms,
        }
    }
}

/// Cumulative month boundaries for the simulated Jan–Jun 2014 window:
/// day indices at which each month ends (exclusive).
pub const MONTH_ENDS_2014H1: [u32; 6] = [31, 59, 90, 120, 151, 181];

/// Month names for reporting.
pub const MONTH_NAMES_2014H1: [&str; 6] = ["Jan", "Feb", "Mar", "Apr", "May", "Jun"];

/// The month index (0 = January) containing a day, or `None` past June.
pub fn month_of_day(day: u32) -> Option<usize> {
    MONTH_ENDS_2014H1.iter().position(|end| day < *end)
}

/// The collected RUM stream with the slicing operations the §4 figures
/// need.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RumCollector {
    /// All samples in arrival order.
    pub samples: Vec<RumSample>,
}

impl RumCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    pub fn push(&mut self, sample: RumSample) {
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Daily mean series of a metric over samples passing `filter`
    /// (Figures 13, 15, 17, 19).
    pub fn daily_series(
        &self,
        metric: Metric,
        mut filter: impl FnMut(&RumSample) -> bool,
    ) -> DailySeries {
        let mut s = DailySeries::new();
        for r in self.samples.iter().filter(|r| filter(r)) {
            s.add(r.day, r.metric(metric));
        }
        s
    }

    /// CDF of a metric over samples within `[from_day, to_day)` passing
    /// `filter` (Figures 14, 16, 18, 20).
    pub fn cdf(
        &self,
        metric: Metric,
        from_day: u32,
        to_day: u32,
        mut filter: impl FnMut(&RumSample) -> bool,
    ) -> Option<Cdf> {
        let sample: WeightedSample = self
            .samples
            .iter()
            .filter(|r| r.day >= from_day && r.day < to_day && filter(r))
            .map(|r| r.metric(metric))
            .collect();
        Cdf::from_sample(&sample)
    }

    /// Sample counts per month split by expectation group (Figure 12):
    /// returns `(month name, high count, low count)` rows.
    pub fn monthly_counts(&self) -> Vec<(&'static str, u64, u64)> {
        let mut high = [0u64; 6];
        let mut low = [0u64; 6];
        for r in &self.samples {
            if let Some(m) = month_of_day(r.day) {
                if r.high_expectation {
                    high[m] += 1;
                } else {
                    low[m] += 1;
                }
            }
        }
        MONTH_NAMES_2014H1
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, high[i], low[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(day: u32, high: bool, rtt: f64) -> RumSample {
        RumSample {
            day,
            country: Country::India,
            high_expectation: high,
            public_resolver: true,
            ecs_capable_resolver: true,
            mapping_distance_miles: 100.0,
            rtt_ms: rtt,
            ttfb_ms: 500.0,
            download_ms: 200.0,
            dns_ms: 30.0,
            domain: 0,
            client_ldns_miles: 500.0,
        }
    }

    #[test]
    fn month_boundaries_follow_2014_calendar() {
        assert_eq!(month_of_day(0), Some(0)); // Jan 1
        assert_eq!(month_of_day(30), Some(0)); // Jan 31
        assert_eq!(month_of_day(31), Some(1)); // Feb 1
        assert_eq!(month_of_day(86), Some(2)); // Mar 28 (roll-out start)
        assert_eq!(month_of_day(104), Some(3)); // Apr 15 (roll-out end)
        assert_eq!(month_of_day(180), Some(5)); // Jun 30
        assert_eq!(month_of_day(181), None);
    }

    #[test]
    fn metric_extraction() {
        let s = sample(0, true, 120.0);
        assert_eq!(s.metric(Metric::Rtt), 120.0);
        assert_eq!(s.metric(Metric::Ttfb), 500.0);
        assert_eq!(s.metric(Metric::MappingDistance), 100.0);
        assert_eq!(s.metric(Metric::Download), 200.0);
        assert_eq!(s.metric(Metric::Dns), 30.0);
    }

    #[test]
    fn daily_series_filters_and_averages() {
        let mut c = RumCollector::new();
        c.push(sample(0, true, 100.0));
        c.push(sample(0, true, 200.0));
        c.push(sample(0, false, 999.0));
        c.push(sample(2, true, 50.0));
        let s = c.daily_series(Metric::Rtt, |r| r.high_expectation);
        let pts = s.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].mean, 150.0);
        assert_eq!(pts[1].mean, 50.0);
    }

    #[test]
    fn cdf_respects_day_window() {
        let mut c = RumCollector::new();
        for day in 0..10 {
            c.push(sample(day, true, day as f64));
        }
        let cdf = c.cdf(Metric::Rtt, 5, 10, |_| true).unwrap();
        assert_eq!(cdf.value_at(0.0), 5.0);
        assert_eq!(cdf.value_at(1.0), 9.0);
        assert!(c.cdf(Metric::Rtt, 20, 30, |_| true).is_none());
    }

    #[test]
    fn monthly_counts_split_groups() {
        let mut c = RumCollector::new();
        c.push(sample(0, true, 1.0)); // Jan high
        c.push(sample(0, false, 1.0)); // Jan low
        c.push(sample(40, true, 1.0)); // Feb high
        c.push(sample(200, true, 1.0)); // past June: dropped
        let rows = c.monthly_counts();
        assert_eq!(rows[0], ("Jan", 1, 1));
        assert_eq!(rows[1], ("Feb", 1, 0));
        let total: u64 = rows.iter().map(|(_, h, l)| h + l).sum();
        assert_eq!(total, 3);
    }
}
