//! A small gazetteer of world cities.
//!
//! The synthetic Internet places client IP blocks, resolver sites, and CDN
//! deployments around real population centers so that distance distributions
//! (Figures 5–11) have realistic geography: dense metros in Korea/Taiwan,
//! vast spread in India/Brazil/Australia, tight bands in Western Europe.
//!
//! Coordinates are approximate city centers; `weight` is a relative demand
//! weight (roughly metro population share within the country).

use crate::{Country, GeoPoint};

/// A city with its country, location, and relative demand weight.
#[derive(Debug, Clone, Copy)]
pub struct City {
    /// City name (for diagnostics and reports).
    pub name: &'static str,
    /// Country containing the city.
    pub country: Country,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Relative demand weight among cities of the same country.
    pub weight: f64,
}

impl City {
    /// The city's location as a [`GeoPoint`].
    pub fn point(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

macro_rules! city {
    ($name:literal, $country:ident, $lat:expr, $lon:expr, $w:expr) => {
        City {
            name: $name,
            country: Country::$country,
            lat: $lat,
            lon: $lon,
            weight: $w,
        }
    };
}

/// All cities known to the model, grouped by country in declaration order.
pub const GAZETTEER: &[City] = &[
    // India — huge country, dispersed metros.
    city!("Mumbai", India, 19.08, 72.88, 3.0),
    city!("Delhi", India, 28.61, 77.21, 3.0),
    city!("Bangalore", India, 12.97, 77.59, 2.0),
    city!("Chennai", India, 13.08, 80.27, 1.5),
    city!("Kolkata", India, 22.57, 88.36, 1.5),
    city!("Hyderabad", India, 17.38, 78.49, 1.2),
    // Turkey
    city!("Istanbul", Turkey, 41.01, 28.98, 3.0),
    city!("Ankara", Turkey, 39.93, 32.86, 1.2),
    city!("Izmir", Turkey, 38.42, 27.14, 0.8),
    // Vietnam
    city!("Hanoi", Vietnam, 21.03, 105.85, 1.5),
    city!("Ho Chi Minh City", Vietnam, 10.82, 106.63, 2.0),
    city!("Da Nang", Vietnam, 16.05, 108.22, 0.4),
    // Mexico
    city!("Mexico City", Mexico, 19.43, -99.13, 3.0),
    city!("Guadalajara", Mexico, 20.66, -103.35, 1.0),
    city!("Monterrey", Mexico, 25.69, -100.32, 1.0),
    // Brazil — continental spread.
    city!("Sao Paulo", Brazil, -23.55, -46.63, 3.0),
    city!("Rio de Janeiro", Brazil, -22.91, -43.17, 2.0),
    city!("Brasilia", Brazil, -15.79, -47.88, 1.0),
    city!("Fortaleza", Brazil, -3.73, -38.53, 0.8),
    city!("Porto Alegre", Brazil, -30.03, -51.23, 0.7),
    // Indonesia
    city!("Jakarta", Indonesia, -6.21, 106.85, 3.0),
    city!("Surabaya", Indonesia, -7.25, 112.75, 1.0),
    city!("Medan", Indonesia, 3.59, 98.67, 0.7),
    // Australia — coastal metros, enormous gaps.
    city!("Sydney", Australia, -33.87, 151.21, 2.0),
    city!("Melbourne", Australia, -37.81, 144.96, 2.0),
    city!("Brisbane", Australia, -27.47, 153.03, 1.0),
    city!("Perth", Australia, -31.95, 115.86, 0.8),
    // Russia
    city!("Moscow", Russia, 55.76, 37.62, 3.0),
    city!("St Petersburg", Russia, 59.93, 30.34, 1.5),
    city!("Novosibirsk", Russia, 55.01, 82.93, 0.6),
    city!("Yekaterinburg", Russia, 56.84, 60.65, 0.6),
    // Italy
    city!("Milan", Italy, 45.46, 9.19, 1.5),
    city!("Rome", Italy, 41.90, 12.50, 1.5),
    city!("Naples", Italy, 40.85, 14.27, 0.8),
    // Japan
    city!("Tokyo", Japan, 35.68, 139.69, 4.0),
    city!("Osaka", Japan, 34.69, 135.50, 2.0),
    city!("Nagoya", Japan, 35.18, 136.91, 1.0),
    city!("Fukuoka", Japan, 33.59, 130.40, 0.7),
    city!("Sapporo", Japan, 43.06, 141.35, 0.5),
    // United States — many metros.
    city!("New York", UnitedStates, 40.71, -74.01, 3.0),
    city!("Los Angeles", UnitedStates, 34.05, -118.24, 2.5),
    city!("Chicago", UnitedStates, 41.88, -87.63, 2.0),
    city!("Dallas", UnitedStates, 32.78, -96.80, 1.5),
    city!("Seattle", UnitedStates, 47.61, -122.33, 1.0),
    city!("Miami", UnitedStates, 25.76, -80.19, 1.0),
    city!("Denver", UnitedStates, 39.74, -104.99, 0.8),
    city!("Atlanta", UnitedStates, 33.75, -84.39, 1.2),
    city!("San Jose", UnitedStates, 37.34, -121.89, 1.2),
    city!("Boston", UnitedStates, 42.36, -71.06, 1.0),
    // Malaysia
    // 3.139°N — clippy would otherwise read the rounded 3.14 as π.
    city!("Kuala Lumpur", Malaysia, 3.139, 101.69, 2.0),
    city!("Penang", Malaysia, 5.41, 100.33, 0.6),
    // Canada
    city!("Toronto", Canada, 43.65, -79.38, 2.0),
    city!("Vancouver", Canada, 49.28, -123.12, 1.0),
    city!("Montreal", Canada, 45.50, -73.57, 1.2),
    // Germany
    city!("Frankfurt", Germany, 50.11, 8.68, 1.5),
    city!("Berlin", Germany, 52.52, 13.40, 1.5),
    city!("Munich", Germany, 48.14, 11.58, 1.0),
    city!("Hamburg", Germany, 53.55, 9.99, 0.8),
    // France
    city!("Paris", France, 48.86, 2.35, 3.0),
    city!("Lyon", France, 45.76, 4.84, 0.8),
    city!("Marseille", France, 43.30, 5.37, 0.7),
    // United Kingdom
    city!("London", UnitedKingdom, 51.51, -0.13, 3.0),
    city!("Manchester", UnitedKingdom, 53.48, -2.24, 1.0),
    city!("Edinburgh", UnitedKingdom, 55.95, -3.19, 0.5),
    // Netherlands
    city!("Amsterdam", Netherlands, 52.37, 4.90, 2.0),
    city!("Rotterdam", Netherlands, 51.92, 4.48, 0.8),
    // Argentina
    city!("Buenos Aires", Argentina, -34.60, -58.38, 3.0),
    city!("Cordoba", Argentina, -31.42, -64.18, 0.8),
    city!("Mendoza", Argentina, -32.89, -68.83, 0.5),
    // Thailand
    city!("Bangkok", Thailand, 13.76, 100.50, 3.0),
    city!("Chiang Mai", Thailand, 18.79, 98.98, 0.5),
    // Switzerland
    city!("Zurich", Switzerland, 47.37, 8.54, 1.5),
    city!("Geneva", Switzerland, 46.20, 6.14, 0.8),
    // Spain
    city!("Madrid", Spain, 40.42, -3.70, 2.0),
    city!("Barcelona", Spain, 41.39, 2.17, 1.5),
    city!("Valencia", Spain, 39.47, -0.38, 0.6),
    // Hong Kong — city-state density.
    city!("Hong Kong", HongKong, 22.32, 114.17, 1.0),
    // South Korea — dense, tiny distances (paper calls this out).
    city!("Seoul", SouthKorea, 37.57, 126.98, 3.0),
    city!("Busan", SouthKorea, 35.18, 129.08, 1.0),
    // Singapore
    city!("Singapore", Singapore, 1.35, 103.82, 1.0),
    // Taiwan
    city!("Taipei", Taiwan, 25.03, 121.57, 2.0),
    city!("Kaohsiung", Taiwan, 22.63, 120.30, 0.8),
    // Extra countries.
    city!("Santiago", Chile, -33.45, -70.67, 1.0),
    city!("Bogota", Colombia, 4.71, -74.07, 1.2),
    city!("Medellin", Colombia, 6.24, -75.58, 0.6),
    city!("Lima", Peru, -12.05, -77.04, 1.0),
    city!("Warsaw", Poland, 52.23, 21.01, 1.2),
    city!("Krakow", Poland, 50.06, 19.95, 0.5),
    city!("Stockholm", Sweden, 59.33, 18.07, 1.0),
    city!("Johannesburg", SouthAfrica, -26.20, 28.05, 1.2),
    city!("Cape Town", SouthAfrica, -33.92, 18.42, 0.8),
    city!("Cairo", Egypt, 30.04, 31.24, 1.5),
];

/// Returns all cities in `country`, in gazetteer order.
pub fn cities_of(country: Country) -> impl Iterator<Item = &'static City> {
    GAZETTEER.iter().filter(move |c| c.country == country)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_country_has_at_least_one_city() {
        for c in Country::ALL {
            assert!(cities_of(*c).next().is_some(), "no city for {c}");
        }
    }

    #[test]
    fn all_coordinates_are_in_range() {
        for city in GAZETTEER {
            assert!(city.lat.abs() <= 90.0, "{}", city.name);
            assert!(city.lon.abs() <= 180.0, "{}", city.name);
            assert!(city.weight > 0.0, "{}", city.name);
        }
    }

    #[test]
    fn city_names_are_unique() {
        let mut names: Vec<_> = GAZETTEER.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GAZETTEER.len());
    }

    #[test]
    fn korea_is_denser_than_india() {
        // Sanity for the geography behind Figure 6: the max intra-country
        // city distance in Korea is far below India's.
        let max_dist = |cc: Country| -> f64 {
            let cities: Vec<_> = cities_of(cc).collect();
            let mut max = 0.0f64;
            for a in &cities {
                for b in &cities {
                    max = max.max(a.point().distance_miles(&b.point()));
                }
            }
            max
        };
        assert!(max_dist(Country::SouthKorea) < 300.0);
        assert!(max_dist(Country::India) > 800.0);
    }
}
