#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Shared fixtures for the Criterion benchmarks.
//!
//! The benchmarks live in `benches/`; this library only provides common
//! world-building helpers so each bench file stays focused on its
//! measurement loop.

use eum_netmodel::{Internet, InternetConfig};

/// The bench seed (kept distinct from the repro seed so benches never
/// accidentally depend on reproduction outputs).
pub const BENCH_SEED: u64 = 0xBE4C;

/// A tiny Internet for microbenchmarks.
pub fn tiny_internet() -> Internet {
    Internet::generate(InternetConfig::tiny(BENCH_SEED))
}

/// A small Internet for macro benchmarks.
pub fn small_internet() -> Internet {
    Internet::generate(InternetConfig::small(BENCH_SEED))
}
