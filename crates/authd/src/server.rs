//! The sharded authoritative serving loop.
//!
//! [`AuthServer::spawn`] starts one OS thread per transport shard. Each
//! shard owns its transport endpoint and its [`AnswerCache`] outright —
//! the only shared state is the [`SnapshotHandle`] (cloned `Arc` per
//! query) and the relaxed live counters, so shards never contend on a
//! lock in the steady state. Per query a shard:
//!
//! 1. receives one RFC 1035 datagram,
//! 2. grabs the current map snapshot (clearing its cache if the
//!    generation changed since the last query),
//! 3. decodes, consults the ECS-aware cache, computes the answer through
//!    [`eum_mapping::MappingSystem::answer`] on a miss,
//! 4. encodes and replies.
//!
//! Malformed packets get a FORMERR when the header is intact (so the ID
//! can be echoed) and are dropped otherwise, like a production server.

use crate::cache::{AnswerCache, AnswerCacheStats, CacheConfig, CachedAnswer};
use crate::snapshot::SnapshotHandle;
use crate::telemetry::{ShardInstruments, TelemetryConfig};
use crate::transport::ServerTransport;
use eum_dns::edns::{EcsOption, OptData};
use eum_dns::{decode_message, encode_message, DnsName, Message, QueryContext, Rcode};
use eum_geo::Prefix;
use eum_telemetry::{QueryTrace, TraceOutcome};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The authoritative IP a shard serves when the transport does not
    /// carry one per datagram (UDP mode).
    pub default_server_ip: Ipv4Addr,
    /// Per-shard answer-cache bounds; `None` disables caching entirely
    /// (every query routes through the snapshot).
    pub cache: Option<CacheConfig>,
    /// How long `recv` blocks before re-checking the stop flag.
    pub recv_timeout: Duration,
    /// Metrics registry and trace ring; `None` serves unobserved. Stage
    /// timestamps are only taken when this is set.
    pub telemetry: Option<TelemetryConfig>,
}

impl ServerConfig {
    /// Defaults with the given fallback server IP.
    pub fn new(default_server_ip: Ipv4Addr) -> ServerConfig {
        ServerConfig {
            default_server_ip,
            cache: Some(CacheConfig::default()),
            recv_timeout: Duration::from_millis(20),
            telemetry: None,
        }
    }

    /// Same config with caching disabled.
    pub fn without_cache(mut self) -> ServerConfig {
        self.cache = None;
        self
    }

    /// Same config with the given observability wiring.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> ServerConfig {
        self.telemetry = Some(telemetry);
        self
    }
}

/// Live counters one shard exposes while running (relaxed atomics; read
/// by reporters, written only by the owning shard).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Datagrams answered.
    pub queries: AtomicU64,
    /// Answers served from the shard cache.
    pub cache_hits: AtomicU64,
    /// Datagrams that failed to decode.
    pub malformed: AtomicU64,
}

/// What a shard reports when joined.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Datagrams answered (including FORMERR replies).
    pub queries: u64,
    /// Datagrams dropped as undecodable without a usable header.
    pub dropped: u64,
    /// Datagrams answered FORMERR.
    pub malformed: u64,
    /// Cache counters (zeros when the cache is disabled).
    pub cache: AnswerCacheStats,
    /// Snapshot generations this shard served from.
    pub generations_seen: u64,
}

/// A running sharded server; join with [`AuthServer::stop_join`].
pub struct AuthServer {
    stop: Arc<AtomicBool>,
    counters: Vec<Arc<ShardCounters>>,
    handles: Vec<JoinHandle<ShardReport>>,
}

impl AuthServer {
    /// Spawns one serving thread per transport in `transports`.
    pub fn spawn<T: ServerTransport>(
        transports: Vec<T>,
        snapshots: SnapshotHandle,
        cfg: ServerConfig,
    ) -> AuthServer {
        let stop = Arc::new(AtomicBool::new(false));
        let shards = transports.len();
        let mut counters = Vec::new();
        let mut handles = Vec::new();
        for (shard, transport) in transports.into_iter().enumerate() {
            let c = Arc::new(ShardCounters::default());
            counters.push(c.clone());
            let stop = stop.clone();
            let snapshots = snapshots.clone();
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                run_shard(shard, shards, transport, snapshots, cfg, stop, c)
            }));
        }
        AuthServer {
            stop,
            counters,
            handles,
        }
    }

    /// Live per-shard counters (for mid-run reporting).
    pub fn counters(&self) -> &[Arc<ShardCounters>] {
        &self.counters
    }

    /// Total queries answered so far across shards.
    pub fn total_queries(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Signals every shard to stop and collects their reports.
    pub fn stop_join(self) -> Vec<ShardReport> {
        self.stop.store(true, Ordering::SeqCst);
        self.handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    }
}

/// Per-generation state a shard derives once per snapshot swap instead of
/// per query.
struct GenState {
    generation: u64,
    whoami: DnsName,
    uses_ecs: bool,
    top_ip: Ipv4Addr,
}

/// Per-query stage capture filled in by [`answer_query`]. Timestamps are
/// only taken when `timed` is set (telemetry configured), so unobserved
/// servers pay nothing beyond the branch.
struct QueryStages {
    timed: bool,
    cache_ns: u64,
    route_ns: u64,
    outcome: TraceOutcome,
}

fn elapsed_ns(since: Option<Instant>) -> u64 {
    since.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
}

fn run_shard<T: ServerTransport>(
    shard: usize,
    shards: usize,
    mut transport: T,
    snapshots: SnapshotHandle,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<ShardCounters>,
) -> ShardReport {
    let mut cache = cfg.cache.map(AnswerCache::new);
    let mut tel = cfg
        .telemetry
        .as_ref()
        .map(|t| ShardInstruments::register(&t.registry, shard, shards));
    let trace = cfg.telemetry.as_ref().and_then(|t| {
        (t.trace_sample_every > 0)
            .then(|| t.trace.clone().map(|ring| (ring, t.trace_sample_every)))
            .flatten()
    });
    let mut gen_state: Option<GenState> = None;
    let mut generations_seen = 0u64;
    let mut dropped = 0u64;
    let mut malformed = 0u64;
    let mut received = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let dg = match transport.recv(cfg.recv_timeout) {
            Ok(Some(dg)) => dg,
            Ok(None) => continue,
            Err(_) => continue,
        };
        received += 1;
        let sampled = trace
            .as_ref()
            .is_some_and(|(_, every)| received.is_multiple_of(*every));
        let timed = tel.is_some();
        let t_start = timed.then(Instant::now);

        let snap = snapshots.current();
        if gen_state.as_ref().map(|g| g.generation) != Some(snap.generation) {
            // New map generation: cached answers may route to clusters the
            // new map no longer picks. Drop them all. A shard's very first
            // query only initializes state — nothing to clear yet.
            if gen_state.is_some() {
                if let Some(c) = cache.as_mut() {
                    c.clear();
                }
            }
            gen_state = Some(GenState {
                generation: snap.generation,
                whoami: snap.map.whoami_name(),
                uses_ecs: snap.map.policy().uses_ecs(),
                top_ip: snap.map.top_level_ip(),
            });
            generations_seen += 1;
            if let Some(t) = tel.as_ref() {
                t.generation.set(snap.generation as f64);
            }
        }
        let gen = gen_state.as_ref().expect("generation state set above");

        let t_decode = timed.then(Instant::now);
        let query = match decode_message(&dg.payload) {
            Ok(m) => m,
            Err(_) => {
                let decode_ns = elapsed_ns(t_decode);
                counters.malformed.fetch_add(1, Ordering::Relaxed);
                malformed += 1;
                match formerr_reply(&dg.payload) {
                    Some(reply) => {
                        counters.queries.fetch_add(1, Ordering::Relaxed);
                        let _ = transport.send(&dg.peer, &reply);
                        if let Some(t) = tel.as_ref() {
                            t.queries.inc();
                            t.formerr.inc();
                        }
                    }
                    None => {
                        dropped += 1;
                        if let Some(t) = tel.as_ref() {
                            t.dropped.inc();
                        }
                    }
                }
                if sampled {
                    if let Some((ring, _)) = trace.as_ref() {
                        ring.push(&QueryTrace {
                            seq: 0,
                            shard: shard as u16,
                            generation: gen.generation,
                            ecs_scope: None,
                            outcome: TraceOutcome::Malformed,
                            decode_ns: decode_ns.min(u32::MAX as u64) as u32,
                            cache_ns: 0,
                            route_ns: 0,
                            encode_ns: 0,
                            total_ns: elapsed_ns(t_start).min(u32::MAX as u64) as u32,
                        });
                    }
                }
                continue;
            }
        };
        let decode_ns = elapsed_ns(t_decode);
        let server_ip = dg.server_ip.unwrap_or(cfg.default_server_ip);
        let ctx = QueryContext {
            resolver_ip: dg.resolver_ip,
            now_ms: 0,
        };
        let mut stages = QueryStages {
            timed,
            cache_ns: 0,
            route_ns: 0,
            outcome: TraceOutcome::Uncached,
        };
        let resp = answer_query(
            &snap.map,
            gen,
            cache.as_mut(),
            server_ip,
            &query,
            &ctx,
            &counters,
            &mut stages,
        );
        counters.queries.fetch_add(1, Ordering::Relaxed);
        let t_encode = timed.then(Instant::now);
        let wire = encode_message(&resp);
        let encode_ns = elapsed_ns(t_encode);
        let _ = transport.send(&dg.peer, &wire);
        let total_ns = elapsed_ns(t_start);

        if let Some(t) = tel.as_mut() {
            t.queries.inc();
            t.record_stages(
                decode_ns,
                stages.cache_ns,
                stages.route_ns,
                encode_ns,
                total_ns,
            );
            if let Some(c) = cache.as_ref() {
                t.sync_cache(c.stats(), c.len());
            }
        }
        if sampled {
            if let Some((ring, _)) = trace.as_ref() {
                ring.push(&QueryTrace {
                    seq: 0,
                    shard: shard as u16,
                    generation: gen.generation,
                    ecs_scope: query.ecs().map(|e| e.source_prefix),
                    outcome: stages.outcome,
                    decode_ns: decode_ns.min(u32::MAX as u64) as u32,
                    cache_ns: stages.cache_ns.min(u32::MAX as u64) as u32,
                    route_ns: stages.route_ns.min(u32::MAX as u64) as u32,
                    encode_ns: encode_ns.min(u32::MAX as u64) as u32,
                    total_ns: total_ns.min(u32::MAX as u64) as u32,
                });
            }
        }
    }
    ShardReport {
        shard,
        queries: counters.queries.load(Ordering::Relaxed),
        dropped,
        malformed,
        cache: cache.map(|c| c.stats()).unwrap_or_default(),
        generations_seen,
    }
}

/// Routes through the snapshot, attributing the time to the route stage.
fn timed_route(
    map: &eum_mapping::MappingSystem,
    server_ip: Ipv4Addr,
    query: &Message,
    ctx: &QueryContext,
    stages: &mut QueryStages,
) -> Message {
    let t = stages.timed.then(Instant::now);
    let resp = map.answer(server_ip, query, ctx);
    stages.route_ns = elapsed_ns(t);
    resp
}

/// Answers one decoded query, going through the shard cache when possible.
#[allow(clippy::too_many_arguments)]
fn answer_query(
    map: &eum_mapping::MappingSystem,
    gen: &GenState,
    cache: Option<&mut AnswerCache>,
    server_ip: Ipv4Addr,
    query: &Message,
    ctx: &QueryContext,
    counters: &ShardCounters,
    stages: &mut QueryStages,
) -> Message {
    let Some(cache) = cache else {
        return timed_route(map, server_ip, query, ctx, stages);
    };
    // Only catalog-name queries are memoizable: whoami is TTL-0 by design
    // and error responses are cheap to recompute.
    let Some(q) = query.questions.first() else {
        return timed_route(map, server_ip, query, ctx, stages);
    };
    if q.name == gen.whoami {
        return timed_route(map, server_ip, query, ctx, stages);
    }
    let now = Instant::now();
    let ecs = query.ecs().copied();
    // The end-user (scoped) path exists only at low-level servers; the
    // top level always delegates per resolver, whatever the query carries.
    let eu_path = gen.uses_ecs && ecs.is_some() && server_ip != gen.top_ip;

    let hit = if let (true, Some(e)) = (eu_path, ecs.as_ref()) {
        cache.lookup_scoped(&q.name, q.rtype, e.addr, e.source_prefix, now)
    } else {
        cache.lookup_resolver(&q.name, q.rtype, ctx.resolver_ip, server_ip, now)
    };
    if let Some(entry) = hit {
        counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        stages.outcome = TraceOutcome::CacheHit;
        let resp = replay(&entry, query, ecs.as_ref());
        // Probe and replay together are "what the cache saved us".
        if stages.timed {
            stages.cache_ns = now.elapsed().as_nanos() as u64;
        }
        return resp;
    }
    if stages.timed {
        stages.cache_ns = now.elapsed().as_nanos() as u64;
    }
    stages.outcome = TraceOutcome::Computed;

    let t_route = stages.timed.then(Instant::now);
    let resp = map.answer(server_ip, query, ctx);
    stages.route_ns = elapsed_ns(t_route);
    // Cache only clean answers with a real TTL; the minimum spans every
    // returned record (delegations live in authorities/additionals).
    let min_ttl = resp
        .answers
        .iter()
        .chain(resp.authorities.iter())
        .chain(
            resp.additionals
                .iter()
                .filter(|r| !matches!(r.rdata, eum_dns::RData::Opt(_))),
        )
        .map(|r| r.ttl)
        .min();
    let cacheable = resp.flags.rcode == Rcode::NoError && min_ttl.is_some_and(|t| t > 0);
    if cacheable {
        let entry = CachedAnswer::from_response(&resp, min_ttl.expect("checked"), now);
        match (eu_path, resp.ecs().map(|e| e.scope_prefix)) {
            // End-user answer with a real scope: valid for the whole
            // scope block.
            (true, Some(scope)) if scope > 0 => {
                let e = ecs.as_ref().expect("eu_path implies ecs");
                cache.insert_scoped(q.name.clone(), q.rtype, Prefix::of(e.addr, scope), entry);
            }
            // Scope-0 answer to an ECS query (unknown block fallback):
            // not cached. It must not enter the scoped table (a /0 entry
            // would shadow real blocks) and the resolver table is for
            // queries that will probe it again — ECS queries never do.
            (true, _) => {}
            // NS path (no ECS, policy ignores it, or top-level
            // delegation): per-resolver at this serving IP.
            (false, _) => {
                cache.insert_resolver(q.name.clone(), q.rtype, ctx.resolver_ip, server_ip, entry);
            }
        }
    }
    resp
}

/// Rebuilds a response from a cached entry for this specific query.
fn replay(entry: &CachedAnswer, query: &Message, ecs: Option<&EcsOption>) -> Message {
    let mut resp = Message::response_to(query, entry.rcode);
    if !entry.authorities.is_empty() {
        // Delegations are not authoritative data.
        resp.flags.aa = false;
    }
    resp.answers = entry.answers.clone();
    resp.authorities = entry.authorities.clone();
    resp.additionals = entry.additionals.clone();
    if let Some(e) = ecs {
        let scope = entry.scope.unwrap_or(0).min(e.source_prefix);
        resp.set_opt(OptData::with_ecs(EcsOption::response(e, scope)));
    }
    resp
}

/// A minimal FORMERR reply when at least the 12-byte header survived.
fn formerr_reply(payload: &[u8]) -> Option<Vec<u8>> {
    if payload.len() < 12 {
        return None;
    }
    let id = u16::from_be_bytes([payload[0], payload[1]]);
    let resp = Message {
        id,
        flags: eum_dns::Flags {
            qr: true,
            rcode: Rcode::FormErr,
            ..eum_dns::Flags::default()
        },
        questions: Vec::new(),
        answers: Vec::new(),
        authorities: Vec::new(),
        additionals: Vec::new(),
    };
    Some(encode_message(&resp))
}
