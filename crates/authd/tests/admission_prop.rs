//! Property tests for admission control: the token bucket admits
//! *exactly* the configured rate under bursty arrivals, and shed
//! decisions are a pure function of the schedule — replaying the same
//! seeded schedule reproduces the same decisions, at the bucket and at
//! the full serve path.

use eum_authd::{
    AdmissionConfig, CacheConfig, QueryStages, ReplyCap, ServeOutcome, ShardState, SnapshotHandle,
    TokenBucket,
};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_dns::{encode_message, Message, Question};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use proptest::prelude::*;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const SEED: u64 = 0xAD31;

/// One shared world for the serve-path tests (building it per proptest
/// case would dominate the runtime).
fn snapshots() -> &'static SnapshotHandle {
    static WORLD: OnceLock<SnapshotHandle> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut net = Internet::generate(InternetConfig::tiny(SEED));
        let sites = deployment_universe(SEED, 16);
        let cdn = CdnPlatform::deploy(
            &mut net,
            &sites,
            &DeployConfig {
                servers_per_cluster: 4,
                cache_objects_per_server: 256,
                cluster_capacity: f64::INFINITY,
            },
        );
        let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
        let map = MappingSystem::build(
            &mut net,
            &cdn,
            &catalog,
            "cdn.example".parse().unwrap(),
            MappingConfig {
                max_ping_targets: 50,
                ..MappingConfig::default()
            },
        );
        SnapshotHandle::new(map)
    })
}

proptest! {
    /// Exact-rate admission: drain the initial burst, then feed arrivals
    /// whose gaps never exceed one token's worth of nanoseconds (so the
    /// burst cap cannot discard accrued credit). The admitted count must
    /// then equal `floor(elapsed_ns / ns_per_token)` — the configured
    /// sustained rate, to the token, regardless of how the arrivals
    /// bunch into bursts.
    #[test]
    fn drained_bucket_admits_exactly_the_configured_rate(
        rate in 1u64..2_000_000,
        burst in 2u64..64,
        // Gap per arrival as a fraction (x/256) of ns_per_token; 0 makes
        // intra-burst arrivals, 256 a full token gap.
        gaps in proptest::collection::vec(0u32..=256, 1..200),
    ) {
        let cfg = AdmissionConfig::new(rate, burst);
        let t0 = Instant::now();
        let mut b = TokenBucket::new(&cfg, t0);
        let npt = b.ns_per_token();

        // Drain the full initial bucket at t0.
        for _ in 0..burst {
            prop_assert!(b.try_take(t0));
        }
        prop_assert!(!b.try_take(t0));

        let mut now = t0;
        let mut elapsed: u64 = 0;
        let mut admitted: u64 = 0;
        for g in &gaps {
            let gap = (npt as u128 * *g as u128 / 256) as u64;
            elapsed += gap;
            now += Duration::from_nanos(gap);
            if b.try_take(now) {
                admitted += 1;
            }
        }
        prop_assert_eq!(
            admitted,
            elapsed / npt,
            "rate {} burst {}: admitted must equal elapsed/ns_per_token",
            rate,
            burst
        );
    }

    /// Conservation bound for arbitrary (cap-hitting) schedules: no
    /// schedule can ever extract more than the initial burst plus the
    /// elapsed time's worth of tokens.
    #[test]
    fn admissions_never_exceed_burst_plus_elapsed(
        rate in 1u64..2_000_000,
        burst in 1u64..64,
        gaps in proptest::collection::vec(0u64..50_000_000, 1..200),
    ) {
        let cfg = AdmissionConfig::new(rate, burst);
        let t0 = Instant::now();
        let mut b = TokenBucket::new(&cfg, t0);
        let npt = b.ns_per_token();
        let mut now = t0;
        let mut elapsed: u64 = 0;
        let mut admitted: u64 = 0;
        for g in &gaps {
            elapsed += g;
            now += Duration::from_nanos(*g);
            if b.try_take(now) {
                admitted += 1;
            }
        }
        prop_assert!(admitted <= burst + elapsed / npt + 1);
    }

    /// Reproducibility at the bucket: the decision sequence is a pure
    /// function of the arrival schedule, so a schedule derived from a
    /// fixed seed produces bit-identical decisions on replay.
    #[test]
    fn decisions_reproduce_for_a_fixed_seed(seed in any::<u64>()) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let cfg =
            AdmissionConfig::new(1 + rng.random_range(0u64..100_000), 1 + rng.random_range(0u64..16));
        let t0 = Instant::now();
        let schedule: Vec<u64> = (0..256).map(|_| rng.random_range(0..200_000)).collect();

        let run = |mut b: TokenBucket| -> Vec<bool> {
            let mut now = t0;
            schedule
                .iter()
                .map(|g| {
                    now += Duration::from_nanos(*g);
                    b.try_take(now)
                })
                .collect()
        };
        let first = run(TokenBucket::new(&cfg, t0));
        let second = run(TokenBucket::new(&cfg, t0));
        prop_assert_eq!(first, second);
    }
}

proptest! {
    /// Reproducibility at the serve path: with a rate-0 bucket (burst
    /// tokens, then nothing, so wall-clock refill cannot perturb the
    /// outcome), a seeded flood of cache-busting queries is disposed of
    /// identically on every replay — the first `burst` compute-path
    /// queries admitted, every later one shed as REFUSED.
    #[test]
    fn serve_path_shed_decisions_reproduce(seed in any::<u64>(), burst in 1u64..8) {
        let snapshots = snapshots();
        let snap = snapshots.current();
        let low = snap.map.ns_ips()[1];
        let resolver = std::net::Ipv4Addr::new(9, 9, 9, 9);

        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let queries: Vec<Vec<u8>> = (0..24)
            .map(|i| {
                let label: u32 = rng.random_range(0..u32::MAX);
                let qname = format!("x{label:08x}.cdn.example").parse().unwrap();
                encode_message(&Message::query(i as u16 + 1, Question::a(qname), None))
            })
            .collect();

        let run = || -> Vec<ServeOutcome> {
            let mut state = ShardState::new(Some(CacheConfig::default()))
                .with_admission(&AdmissionConfig::new(0, burst), Instant::now());
            state.observe(&snap);
            queries
                .iter()
                .map(|q| {
                    let mut stages = QueryStages::new(false);
                    state.serve(&snap.map, low, resolver, q, ReplyCap::udp(), &mut stages)
                })
                .collect()
        };
        let first = run();
        let second = run();
        prop_assert_eq!(&first, &second);
        for (i, out) in first.iter().enumerate() {
            if (i as u64) < burst {
                prop_assert!(
                    matches!(out, ServeOutcome::Replied { .. }),
                    "query {} within the burst must be admitted",
                    i
                );
            } else {
                prop_assert_eq!(*out, ServeOutcome::Shed, "query {} must shed", i);
            }
        }
    }
}
