//! Domain names.
//!
//! [`DnsName`] stores a fully-qualified domain name directly in the
//! RFC 1035 *wire form* — a fixed inline buffer of length-prefixed,
//! lowercase labels — instead of a heap `Vec<String>`. The serve path
//! encodes, decodes, hashes, and compares names millions of times per
//! second; keeping the bytes inline makes all of those a slice operation
//! with zero heap traffic, and encoding a name is a straight `memcpy` of
//! [`DnsName::wire`].
//!
//! Names are lowercased at construction (DNS is case-insensitive per
//! RFC 1035 §2.3.3; normalizing once makes equality, hashing, and
//! compression simple and correct) and validated against the RFC 1035
//! size limits: labels of 1–63 octets and a total wire length of at most
//! 255 octets (including the terminating root byte, which is *not*
//! stored).

use std::str::FromStr;

/// Maximum stored octets: 255 wire octets minus the implicit root byte.
const MAX_STORED: usize = 254;

/// A fully-qualified domain name (the trailing root dot is implicit).
///
/// Stored as RFC 1035 length-prefixed labels in a fixed inline buffer —
/// no heap allocation, ever. `Clone` is a flat copy.
#[derive(Clone)]
pub struct DnsName {
    /// Octets of `buf` in use (excludes the implicit root byte).
    len: u8,
    /// Number of labels (for O(1) [`DnsName::label_count`]).
    labels: u8,
    /// `len` octets of length-prefixed lowercase labels.
    buf: [u8; MAX_STORED],
}

/// Errors from constructing a [`DnsName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty or longer than 63 octets.
    BadLabel,
    /// The encoded name would exceed 255 octets.
    TooLong,
    /// A label contained a character outside `[A-Za-z0-9_-]`.
    BadCharacter,
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::BadLabel => f.write_str("label must be 1..=63 octets"),
            NameError::TooLong => f.write_str("name exceeds 255 octets"),
            NameError::BadCharacter => f.write_str("label contains invalid character"),
        }
    }
}

impl std::error::Error for NameError {}

impl DnsName {
    /// The root name (zero labels).
    pub fn root() -> DnsName {
        DnsName {
            len: 0,
            labels: 0,
            buf: [0; MAX_STORED],
        }
    }

    /// Builds a name from labels, validating and lowercasing each.
    pub fn from_labels<S: AsRef<str>>(
        labels: impl IntoIterator<Item = S>,
    ) -> Result<DnsName, NameError> {
        let mut out = DnsName::root();
        for l in labels {
            out.push_label(l.as_ref().as_bytes())?;
        }
        Ok(out)
    }

    /// Appends one label (validated, lowercased) at the least-significant
    /// end: `example.com` + `push_label("www")` is **not** `www.example.com`
    /// but `example.com.www` — this is the decoder's front-to-back order.
    /// Use [`DnsName::child`] to prepend.
    pub(crate) fn push_label(&mut self, label: &[u8]) -> Result<(), NameError> {
        if label.is_empty() || label.len() > 63 {
            return Err(NameError::BadLabel);
        }
        if !label
            .iter()
            .all(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_')
        {
            return Err(NameError::BadCharacter);
        }
        let len = self.len as usize;
        if len + 1 + label.len() > MAX_STORED {
            return Err(NameError::TooLong);
        }
        // lint: allow(serve-index) — len + 1 + label.len() ≤ MAX_STORED checked above
        self.buf[len] = label.len() as u8;
        // lint: allow(serve-index) — same bound; zip stops at the shorter side
        for (dst, src) in self.buf[len + 1..].iter_mut().zip(label) {
            *dst = src.to_ascii_lowercase();
        }
        self.len = (len + 1 + label.len()) as u8;
        self.labels += 1;
        Ok(())
    }

    /// The wire encoding (length-prefixed labels, *without* the
    /// terminating root byte). Encoding a name is a memcpy of this slice.
    pub fn wire(&self) -> &[u8] {
        // lint: allow(serve-index) — len ≤ MAX_STORED is a struct invariant
        &self.buf[..self.len as usize]
    }

    /// The labels, most-significant last (`www`, `example`, `com`).
    pub fn labels(&self) -> Labels<'_> {
        Labels { rest: self.wire() }
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels as usize
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.len == 0
    }

    /// Length of the wire encoding in octets (uncompressed, including the
    /// terminating root byte).
    pub fn wire_len(&self) -> usize {
        1 + self.len as usize
    }

    /// The parent domain (one label removed from the front), or `None`
    /// at the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.is_root() {
            return None;
        }
        // lint: allow(serve-index) — non-root checked above, so buf[0] is a label length
        let skip = 1 + self.buf[0] as usize;
        let mut out = DnsName::root();
        out.len = self.len - skip as u8;
        out.labels = self.labels - 1;
        // lint: allow(serve-index) — skip ≤ len: a label never extends past the stored bytes
        out.buf[..out.len as usize].copy_from_slice(&self.buf[skip..self.len as usize]);
        Some(out)
    }

    /// Prepends a label: `label.self`.
    pub fn child(&self, label: &str) -> Result<DnsName, NameError> {
        let mut out = DnsName::root();
        out.push_label(label.as_bytes())?;
        let head = out.len as usize;
        if head + self.len as usize > MAX_STORED {
            return Err(NameError::TooLong);
        }
        // lint: allow(serve-index) — head + len ≤ MAX_STORED checked above
        out.buf[head..head + self.len as usize].copy_from_slice(self.wire());
        out.len += self.len;
        out.labels += self.labels;
        Ok(out)
    }

    /// True when `self` is `other` or a subdomain of it
    /// (`a.b.example.com` is within `example.com` and within the root).
    pub fn is_within(&self, other: &DnsName) -> bool {
        if other.len > self.len {
            return false;
        }
        let offset = (self.len - other.len) as usize;
        // lint: allow(serve-index) — offset = len − other.len ≥ 0, both ≤ MAX_STORED
        if self.buf[offset..self.len as usize] != *other.wire() {
            return false;
        }
        // The suffix must start on a label boundary.
        let mut pos = 0usize;
        while pos < offset {
            // lint: allow(serve-index) — pos < offset < len inside the loop
            pos += 1 + self.buf[pos] as usize;
        }
        pos == offset
    }
}

/// Iterator over a name's labels as `&str`, front (most specific) first.
pub struct Labels<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Labels<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let (&len, rest) = self.rest.split_first()?;
        let (label, rest) = rest.split_at(len as usize);
        self.rest = rest;
        // Labels are validated ASCII at construction.
        // lint: allow(serve-panic) — push_label validated every byte as ASCII
        Some(std::str::from_utf8(label).expect("labels are ASCII"))
    }
}

impl PartialEq for DnsName {
    fn eq(&self, other: &Self) -> bool {
        self.wire() == other.wire()
    }
}

impl Eq for DnsName {}

impl std::hash::Hash for DnsName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.wire().hash(state);
    }
}

impl PartialOrd for DnsName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DnsName {
    /// Label-wise lexicographic order (the order a `Vec<String>` of
    /// labels would sort in), kept so sorted-name outputs are stable
    /// across the inline-representation change.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.labels().cmp(other.labels())
    }
}

impl std::fmt::Debug for DnsName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DnsName({self})")
    }
}

// The workspace's serde is an offline marker stub (see `vendor/serde`);
// a real integration would (de)serialize names as dotted strings.
impl serde::Serialize for DnsName {}
impl serde::Deserialize for DnsName {}

impl FromStr for DnsName {
    type Err = NameError;

    /// Parses dotted notation; a single trailing dot (FQDN marker) and
    /// `"."` (root) are accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(DnsName::root());
        }
        DnsName::from_labels(s.split('.'))
    }
}

impl std::fmt::Display for DnsName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_root() {
            return f.write_str(".");
        }
        for (i, label) in self.labels().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            f.write_str(label)?;
        }
        Ok(())
    }
}

/// Convenience macro-free constructor for tests and examples; panics on an
/// invalid name.
pub fn name(s: &str) -> DnsName {
    s.parse()
        // lint: allow(serve-panic) — test/example convenience constructor, not serve-path code
        .unwrap_or_else(|e| panic!("invalid DNS name {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["example.com", "a.b.c.d.example.org", "xn--abc.test"] {
            assert_eq!(name(s).to_string(), s);
        }
    }

    #[test]
    fn trailing_dot_is_accepted() {
        assert_eq!(name("example.com."), name("example.com"));
    }

    #[test]
    fn root_parses_and_displays() {
        let r: DnsName = ".".parse().unwrap();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        let empty: DnsName = "".parse().unwrap();
        assert!(empty.is_root());
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(name("ExAmPle.COM"), name("example.com"));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        name("WWW.Foo.NET").hash(&mut h1);
        name("www.foo.net").hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!("a..b".parse::<DnsName>().is_err());
        assert!(DnsName::from_labels(["x".repeat(64)]).is_err());
        assert!("sp ace.com".parse::<DnsName>().is_err());
        assert!("exa$mple.com".parse::<DnsName>().is_err());
    }

    #[test]
    fn accepts_63_octet_label() {
        assert!(DnsName::from_labels(["x".repeat(63)]).is_ok());
    }

    #[test]
    fn rejects_overlong_name() {
        // Four 63-octet labels: 4*64 + 1 = 257 > 255.
        let l = "x".repeat(63);
        assert_eq!(
            DnsName::from_labels([l.clone(), l.clone(), l.clone(), l]),
            Err(NameError::TooLong)
        );
    }

    #[test]
    fn wire_len_counts_length_bytes_and_root() {
        // "example" = 7+1, "com" = 3+1, root = 1 ⇒ 13.
        assert_eq!(name("example.com").wire_len(), 13);
        assert_eq!(DnsName::root().wire_len(), 1);
    }

    #[test]
    fn wire_is_length_prefixed_labels() {
        assert_eq!(name("www.Example.com").wire(), b"\x03www\x07example\x03com");
        assert_eq!(DnsName::root().wire(), b"");
    }

    #[test]
    fn labels_iterate_front_first() {
        let n = name("www.example.com");
        let got: Vec<&str> = n.labels().collect();
        assert_eq!(got, ["www", "example", "com"]);
        assert_eq!(name("www.example.com").label_count(), 3);
        assert_eq!(DnsName::root().labels().count(), 0);
    }

    #[test]
    fn a_full_255_octet_name_round_trips() {
        // 3 × 63-octet labels + 1 × 61-octet label: 64*3 + 62 + 1 = 255.
        let l63 = "x".repeat(63);
        let l61 = "y".repeat(61);
        let n = DnsName::from_labels([&l63, &l63, &l63, &l61]).unwrap();
        assert_eq!(n.wire_len(), 255);
        let back: DnsName = n.to_string().parse().unwrap();
        assert_eq!(back, n);
        // One more octet is too many.
        assert!(n.child("z").is_err());
    }

    #[test]
    fn parent_and_child() {
        let n = name("www.example.com");
        assert_eq!(n.parent().unwrap(), name("example.com"));
        assert_eq!(DnsName::root().parent(), None);
        assert_eq!(name("example.com").child("www").unwrap(), n);
        assert!(name("example.com").child("bad label").is_err());
    }

    #[test]
    fn ordering_matches_label_vectors() {
        let mut got = [
            name("b.example"),
            name("a.example"),
            name("aa.example"),
            name("z"),
            DnsName::root(),
        ];
        got.sort();
        let mut reference: Vec<Vec<String>> = got
            .iter()
            .map(|n| n.labels().map(str::to_string).collect())
            .collect();
        let sorted = reference.clone();
        reference.sort();
        assert_eq!(reference, sorted, "DnsName order must match label order");
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Display → parse is the identity for arbitrary valid names.
            #[test]
            fn display_parse_round_trip(
                labels in proptest::collection::vec("[a-z0-9_-]{1,20}", 0..6),
            ) {
                if let Ok(name) = DnsName::from_labels(labels) {
                    let back: DnsName = name.to_string().parse().unwrap();
                    prop_assert_eq!(back, name);
                }
            }

            /// A child is always within its parent; wire length grows by
            /// label length + 1.
            #[test]
            fn child_parent_inverse(
                base in proptest::collection::vec("[a-z0-9]{1,10}", 1..4),
                label in "[a-z0-9]{1,10}",
            ) {
                let parent = DnsName::from_labels(base).unwrap();
                if let Ok(child) = parent.child(&label) {
                    prop_assert!(child.is_within(&parent));
                    prop_assert_eq!(child.parent().unwrap(), parent.clone());
                    prop_assert_eq!(child.wire_len(), parent.wire_len() + label.len() + 1);
                }
            }

            /// The inline representation agrees with the reference
            /// `Vec<String>` model for equality, ordering, and label
            /// iteration.
            #[test]
            fn inline_matches_label_vector_model(
                a in proptest::collection::vec("[a-z0-9_-]{1,12}", 0..5),
                b in proptest::collection::vec("[a-z0-9_-]{1,12}", 0..5),
            ) {
                let na = DnsName::from_labels(a.clone()).unwrap();
                let nb = DnsName::from_labels(b.clone()).unwrap();
                prop_assert_eq!(na.labels().collect::<Vec<_>>(), a.iter().map(String::as_str).collect::<Vec<_>>());
                prop_assert_eq!(na == nb, a == b);
                prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
                prop_assert_eq!(na.label_count(), a.len());
            }
        }
    }

    #[test]
    fn is_within_checks_suffix() {
        let n = name("a.b.example.com");
        assert!(n.is_within(&name("example.com")));
        assert!(n.is_within(&n));
        assert!(n.is_within(&DnsName::root()));
        assert!(!n.is_within(&name("other.com")));
        assert!(!name("example.com").is_within(&n));
        // Suffix must be label-aligned: "le.com" is not a parent of "example.com".
        assert!(!name("example.com").is_within(&name("le.com")));
    }
}
