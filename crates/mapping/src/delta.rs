//! The publication delta: which mapping units changed between two map
//! generations.
//!
//! §5's cost model multiplies mapping units ~8× while the map refreshes
//! on a ~10 s cadence, so republication must be proportional to what
//! changed, not to world size. A [`MapDelta`] is the contract between
//! the control plane ([`MappingSystem::rebuild_incremental`]) and the
//! serve plane (`eum-authd`'s keyed answer-cache invalidation): it names
//! every unit whose answer *may* differ from the previous generation,
//! and the authoritative shards evict exactly the cached answers keyed
//! by those units — lazily, on first touch, with zero serve-path
//! allocations.
//!
//! Soundness over precision: when the rebuild cannot bound the blast
//! radius (topology changed shape, or the global escape cluster — the
//! fallback used for unknown resolvers and fully-dead candidate rows —
//! moved), the delta is promoted to [`full`](MapDelta::full) and the
//! caches fall back to the old generation-clear behaviour.
//!
//! [`MappingSystem::rebuild_incremental`]: crate::MappingSystem::rebuild_incremental

use eum_geo::Prefix;
use std::net::Ipv4Addr;

/// The set of mapping units whose answers may have changed between the
/// previous map generation and this one.
///
/// End-user units are prefixes, bucketed by prefix length with each
/// bucket sorted by network address, so the serve path can test an ECS
/// cache key for overlap with a handful of binary searches. NS units are
/// keyed by resolver address (sorted, for the same reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapDelta {
    /// Dirty end-user unit prefixes: `eu_by_len[l]` holds the network
    /// addresses of dirty `/l` units, sorted ascending.
    eu_by_len: [Vec<u32>; 33],
    /// Dirty NS (resolver) units, as sorted resolver addresses.
    ns_resolvers: Vec<u32>,
    /// True when the delta covers every unit: consumers must treat the
    /// whole previous generation as invalid.
    full: bool,
    /// Number of dirty units (all units, for a full delta).
    units_changed: usize,
}

impl MapDelta {
    /// A delta naming every unit: structural change, escape-cluster
    /// flip, or any other case where the blast radius cannot be bounded.
    pub fn full(total_units: usize) -> MapDelta {
        MapDelta {
            eu_by_len: std::array::from_fn(|_| Vec::new()),
            ns_resolvers: Vec::new(),
            full: true,
            units_changed: total_units,
        }
    }

    /// Builds a delta from explicit dirty-unit sets.
    pub fn from_dirty(eu_units: &[Prefix], ns_resolvers: &[Ipv4Addr]) -> MapDelta {
        let mut eu_by_len: [Vec<u32>; 33] = std::array::from_fn(|_| Vec::new());
        for p in eu_units {
            eu_by_len[p.len() as usize].push(p.addr());
        }
        for bucket in eu_by_len.iter_mut() {
            bucket.sort_unstable();
            bucket.dedup();
        }
        let mut ns: Vec<u32> = ns_resolvers.iter().map(|ip| u32::from(*ip)).collect();
        ns.sort_unstable();
        ns.dedup();
        let units_changed = eu_by_len.iter().map(Vec::len).sum::<usize>() + ns.len();
        MapDelta {
            eu_by_len,
            ns_resolvers: ns,
            full: false,
            units_changed,
        }
    }

    /// True when the whole previous generation must be invalidated.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// True when no unit changed (publishing such a delta is a no-op for
    /// the caches).
    pub fn is_empty(&self) -> bool {
        !self.full && self.units_changed == 0
    }

    /// Number of dirty units this delta names.
    pub fn units_changed(&self) -> usize {
        self.units_changed
    }

    /// True when a cached answer scoped to `entry` (an ECS cache key's
    /// prefix) may have changed: some dirty end-user unit overlaps it.
    ///
    /// An answer cached under scope `/s` was derived from the unit
    /// containing that block, so any dirty unit that contains — or is
    /// contained in — the entry prefix invalidates it. Each non-empty
    /// dirty length needs one binary search (ancestor probe) or one
    /// range probe (descendants), so the check is `O(lengths·log n)`
    /// with zero allocations.
    pub fn affects_scoped(&self, entry: Prefix) -> bool {
        if self.full {
            return true;
        }
        let entry_len = u32::from(entry.len());
        let first = u64::from(entry.first());
        let last = u64::from(entry.last());
        for (len, bucket) in self.eu_by_len.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let len = len as u32;
            if len <= entry_len {
                // A dirty /len unit is an ancestor (or equal) iff the
                // entry's address truncated to /len is in the bucket.
                let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
                if bucket.binary_search(&(entry.addr() & mask)).is_ok() {
                    return true;
                }
            } else {
                // A dirty /len unit is a descendant iff its address
                // falls inside the entry's address range.
                let lo = bucket.partition_point(|a| u64::from(*a) < first);
                if bucket.get(lo).is_some_and(|a| u64::from(*a) <= last) {
                    return true;
                }
            }
        }
        false
    }

    /// True when a cached answer keyed by `resolver` (an NS-unit cache
    /// key) may have changed.
    pub fn affects_resolver(&self, resolver: Ipv4Addr) -> bool {
        if self.full {
            return true;
        }
        self.ns_resolvers
            .binary_search(&u32::from(resolver))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn full_delta_affects_everything() {
        let d = MapDelta::full(42);
        assert!(d.is_full());
        assert!(!d.is_empty());
        assert_eq!(d.units_changed(), 42);
        assert!(d.affects_scoped(p("1.2.3.0/24")));
        assert!(d.affects_resolver(Ipv4Addr::new(9, 9, 9, 9)));
    }

    #[test]
    fn empty_delta_affects_nothing() {
        let d = MapDelta::from_dirty(&[], &[]);
        assert!(d.is_empty());
        assert_eq!(d.units_changed(), 0);
        assert!(!d.affects_scoped(p("0.0.0.0/0")));
        assert!(!d.affects_resolver(Ipv4Addr::new(1, 1, 1, 1)));
    }

    #[test]
    fn exact_ancestor_and_descendant_units_match() {
        let d = MapDelta::from_dirty(&[p("10.1.0.0/16"), p("10.2.3.0/24")], &[]);
        assert_eq!(d.units_changed(), 2);
        // Exact match.
        assert!(d.affects_scoped(p("10.1.0.0/16")));
        // Dirty unit is an ancestor of the cached entry.
        assert!(d.affects_scoped(p("10.1.200.0/24")));
        // Dirty unit is a descendant of the cached entry.
        assert!(d.affects_scoped(p("10.2.0.0/16")));
        assert!(d.affects_scoped(p("0.0.0.0/0")));
        // Contained in the dirty /16.
        assert!(d.affects_scoped(p("10.1.0.0/24")));
        // Disjoint blocks do not match.
        assert!(!d.affects_scoped(p("10.3.0.0/16")));
    }

    #[test]
    fn sibling_blocks_do_not_match() {
        let d = MapDelta::from_dirty(&[p("10.2.3.0/24")], &[]);
        assert!(!d.affects_scoped(p("10.2.2.0/24")));
        assert!(!d.affects_scoped(p("10.2.4.0/24")));
        assert!(d.affects_scoped(p("10.2.3.128/25")));
        assert!(d.affects_scoped(p("10.2.0.0/20")));
        assert!(!d.affects_scoped(p("10.2.16.0/20")));
    }

    #[test]
    fn range_probe_respects_entry_upper_bound() {
        // Dirty /24 just past the entry's range must not match.
        let d = MapDelta::from_dirty(&[p("10.2.4.0/24")], &[]);
        assert!(!d.affects_scoped(p("10.2.0.0/22"))); // covers .0-.3 only
        assert!(d.affects_scoped(p("10.2.4.0/22"))); // covers .4-.7
    }

    #[test]
    fn resolver_membership_is_exact() {
        let a = Ipv4Addr::new(100, 0, 0, 1);
        let b = Ipv4Addr::new(100, 0, 0, 2);
        let d = MapDelta::from_dirty(&[], &[b, a, a]);
        assert_eq!(d.units_changed(), 2); // deduped
        assert!(d.affects_resolver(a));
        assert!(d.affects_resolver(b));
        assert!(!d.affects_resolver(Ipv4Addr::new(100, 0, 0, 3)));
    }

    /// Brute-force cross-check of the bucketed binary-search membership
    /// against the obvious covers-either-way definition.
    #[test]
    fn overlap_matches_brute_force() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..200 {
            let dirty: Vec<Prefix> = (0..(next() % 12))
                .map(|_| Prefix::new(next(), 8 + (next() % 17) as u8))
                .collect();
            let d = MapDelta::from_dirty(&dirty, &[]);
            for _ in 0..20 {
                let entry = Prefix::new(next(), (next() % 33) as u8);
                let expect = dirty.iter().any(|u| u.covers(&entry) || entry.covers(u));
                assert_eq!(
                    d.affects_scoped(entry),
                    expect,
                    "entry {entry} vs dirty {dirty:?}"
                );
            }
        }
    }
}
