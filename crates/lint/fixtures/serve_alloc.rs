// Fixture for the serve-alloc rule. Scanned by tests/fixtures.rs, never
// compiled: the file only needs to tokenize.

fn violating(n: u32) -> String {
    format!("q{n}") // line 5: fires serve-alloc
}

fn justified(n: u32) -> String {
    // lint: allow(serve-alloc) — cold error path, once per malformed config
    format!("q{n}")
}

fn clean(buf: &mut Vec<u8>, n: u8) {
    buf.clear();
    buf.push(n);
}

fn outside_hot() -> String {
    // Not in the configured hot set: allocating freely is fine here.
    "ok".to_string()
}
