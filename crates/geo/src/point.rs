//! Points on the Earth and great-circle distance.
//!
//! The paper measures every geographic quantity — client–LDNS distance
//! (§3.2), cluster radius (§3.3), mapping distance (§4.1) — as the *great
//! circle distance* between two latitude/longitude fixes, in miles. We use
//! the haversine formula on a spherical Earth, which is what large-scale
//! geolocation pipelines use in practice (sub-0.5% error vs. the ellipsoid,
//! far below geolocation error itself).

use serde::{Deserialize, Serialize};

/// Mean Earth radius in miles (IUGG mean radius, 6371.0088 km).
pub const EARTH_RADIUS_MILES: f64 = 3958.7613;

/// A geographic fix: latitude and longitude in degrees.
///
/// Latitude is in `[-90, +90]`, longitude in `[-180, +180]`. Constructors
/// normalize longitude into range and clamp latitude so arithmetic on noisy
/// inputs cannot produce NaN distances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point, clamping latitude to `[-90, 90]` and wrapping
    /// longitude into `[-180, 180]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = lon_deg % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat_deg: lat,
            lon_deg: lon,
        }
    }

    /// Latitude in degrees.
    pub fn lat(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees.
    pub fn lon(&self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other`, in miles.
    pub fn distance_miles(&self, other: &GeoPoint) -> f64 {
        great_circle_miles(self, other)
    }

    /// Returns a point offset from `self` by roughly `dlat_miles` north and
    /// `dlon_miles` east. Used by the synthetic Internet to scatter client
    /// blocks around a city center.
    ///
    /// The approximation treats one degree of latitude as 69.09 miles and
    /// scales longitude by `cos(lat)`; it is accurate for the few-hundred-
    /// mile offsets used in generation and degrades gracefully near the
    /// poles (longitude scale floored to avoid division blow-up).
    pub fn offset_miles(&self, dlat_miles: f64, dlon_miles: f64) -> GeoPoint {
        const MILES_PER_DEG: f64 = 69.09;
        let lat = self.lat_deg + dlat_miles / MILES_PER_DEG;
        let scale = self.lat_deg.to_radians().cos().abs().max(0.05);
        let lon = self.lon_deg + dlon_miles / (MILES_PER_DEG * scale);
        GeoPoint::new(lat, lon)
    }

    /// Demand-weighted centroid of a set of points, used for client-cluster
    /// analysis (paper §3.3: "The radius and centroid use client demands as
    /// the weights").
    ///
    /// Computed in 3-D Cartesian space and projected back to the sphere so
    /// that clusters straddling the antimeridian average correctly. Returns
    /// `None` for an empty set or all-zero weights.
    pub fn weighted_centroid(points: &[(GeoPoint, f64)]) -> Option<GeoPoint> {
        let mut x = 0.0;
        let mut y = 0.0;
        let mut z = 0.0;
        let mut total = 0.0;
        for (p, w) in points {
            if *w <= 0.0 {
                continue;
            }
            let lat = p.lat_deg.to_radians();
            let lon = p.lon_deg.to_radians();
            x += w * lat.cos() * lon.cos();
            y += w * lat.cos() * lon.sin();
            z += w * lat.sin();
            total += w;
        }
        if total <= 0.0 {
            return None;
        }
        let (x, y, z) = (x / total, y / total, z / total);
        let hyp = (x * x + y * y).sqrt();
        if hyp == 0.0 && z == 0.0 {
            // Degenerate: weights cancelled exactly (antipodal points).
            return None;
        }
        Some(GeoPoint::new(
            z.atan2(hyp).to_degrees(),
            y.atan2(x).to_degrees(),
        ))
    }
}

/// Great-circle distance between two points in miles (haversine formula).
///
/// Symmetric, zero for identical points, and bounded above by half the
/// Earth's circumference (~12,440 miles).
pub fn great_circle_miles(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let lat1 = a.lat_deg.to_radians();
    let lat2 = b.lat_deg.to_radians();
    let dlat = (b.lat_deg - a.lat_deg).to_radians();
    let dlon = (b.lon_deg - a.lon_deg).to_radians();

    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Clamp guards tiny negative/over-unity values from rounding.
    let c = 2.0 * h.sqrt().clamp(0.0, 1.0).asin();
    EARTH_RADIUS_MILES * c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc() -> GeoPoint {
        GeoPoint::new(40.7128, -74.0060)
    }
    fn london() -> GeoPoint {
        GeoPoint::new(51.5074, -0.1278)
    }
    fn sydney() -> GeoPoint {
        GeoPoint::new(-33.8688, 151.2093)
    }

    #[test]
    fn zero_distance_for_identical_points() {
        assert_eq!(great_circle_miles(&nyc(), &nyc()), 0.0);
    }

    #[test]
    fn nyc_to_london_is_about_3460_miles() {
        let d = great_circle_miles(&nyc(), &london());
        assert!((d - 3461.0).abs() < 25.0, "got {d}");
    }

    #[test]
    fn london_to_sydney_is_about_10560_miles() {
        let d = great_circle_miles(&london(), &sydney());
        assert!((d - 10562.0).abs() < 60.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = great_circle_miles(&nyc(), &sydney());
        let d2 = great_circle_miles(&sydney(), &nyc());
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = great_circle_miles(&a, &b);
        let half = std::f64::consts::PI * EARTH_RADIUS_MILES;
        assert!((d - half).abs() < 1.0, "got {d}, want {half}");
    }

    #[test]
    fn longitude_wraps_into_range() {
        let p = GeoPoint::new(10.0, 190.0);
        assert!((p.lon() - (-170.0)).abs() < 1e-9);
        let q = GeoPoint::new(10.0, -190.0);
        assert!((q.lon() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn latitude_clamps() {
        let p = GeoPoint::new(99.0, 0.0);
        assert_eq!(p.lat(), 90.0);
        let q = GeoPoint::new(-99.0, 0.0);
        assert_eq!(q.lat(), -90.0);
    }

    #[test]
    fn offset_moves_roughly_requested_distance() {
        let p = nyc();
        let q = p.offset_miles(100.0, 0.0);
        let d = great_circle_miles(&p, &q);
        assert!((d - 100.0).abs() < 2.0, "north offset gave {d}");
        let r = p.offset_miles(0.0, 100.0);
        let d = great_circle_miles(&p, &r);
        assert!((d - 100.0).abs() < 5.0, "east offset gave {d}");
    }

    #[test]
    fn centroid_of_single_point_is_that_point() {
        let c = GeoPoint::weighted_centroid(&[(nyc(), 3.0)]).unwrap();
        assert!(great_circle_miles(&c, &nyc()) < 0.01);
    }

    #[test]
    fn centroid_weights_pull_toward_heavier_point() {
        let pts = [(nyc(), 9.0), (london(), 1.0)];
        let c = GeoPoint::weighted_centroid(&pts).unwrap();
        assert!(great_circle_miles(&c, &nyc()) < great_circle_miles(&c, &london()));
    }

    #[test]
    fn centroid_of_empty_or_zero_weight_is_none() {
        assert!(GeoPoint::weighted_centroid(&[]).is_none());
        assert!(GeoPoint::weighted_centroid(&[(nyc(), 0.0)]).is_none());
    }

    #[test]
    fn centroid_across_antimeridian_stays_near_the_points() {
        // Two points either side of the date line; a naive average of
        // longitudes would land near 0° (the wrong side of the planet).
        let a = GeoPoint::new(0.0, 179.0);
        let b = GeoPoint::new(0.0, -179.0);
        let c = GeoPoint::weighted_centroid(&[(a, 1.0), (b, 1.0)]).unwrap();
        assert!(great_circle_miles(&c, &a) < 200.0, "centroid at {c:?}");
    }
}
