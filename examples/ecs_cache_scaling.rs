//! Demonstrates the §5 scaling story in isolation: what happens to an
//! LDNS's cache and its upstream query count when ECS turns on, and how
//! the choice of /x mapping units trades unit count against cluster
//! radius (Figures 21–24 in miniature).
//!
//! Run with: `cargo run --release --example ecs_cache_scaling`

use end_user_mapping::dns::EcsMode;
use end_user_mapping::mapping::MapUnits;
use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::sim::{AuthNet, QueryCounters};
use end_user_mapping::stats::Table;

fn main() {
    let mut world = Scenario::build(ScenarioConfig::tiny(0x5EED));
    let latency = world.net.latency;

    // Part 1: mapping units (§5.1). How many units at each granularity?
    println!("mapping units per granularity (§5.1):");
    let mut t = Table::new(["unit type", "count", "demand-weighted mean radius (miles)"]);
    let ldns = MapUnits::ldns_units(&world.net);
    let radius = |u: &MapUnits| {
        let total = u.total_demand();
        u.units.iter().map(|x| x.radius * x.demand).sum::<f64>() / total
    };
    t.row([
        "LDNS (NS-based)".to_string(),
        ldns.len().to_string(),
        format!("{:.0}", radius(&ldns)),
    ]);
    for len in [24u8, 20, 16] {
        let plain = MapUnits::block_units(&world.net, len, false);
        let agg = MapUnits::block_units(&world.net, len, true);
        t.row([
            format!("/{len} blocks"),
            plain.len().to_string(),
            format!("{:.0}", radius(&plain)),
        ]);
        t.row([
            format!("/{len} + BGP aggregation"),
            agg.len().to_string(),
            format!("{:.0}", radius(&agg)),
        ]);
    }
    println!("{t}");

    // Part 2: cache amplification (§5.2). One public LDNS, one popular
    // domain, many client blocks: count upstream queries with ECS off/on.
    let ldns_id = world
        .net
        .resolvers
        .iter()
        .find(|r| r.kind.is_public())
        .expect("world has public resolvers")
        .id;
    let resolver_info = world.net.resolver(ldns_id).clone();
    let domain = world.catalog.domains[0].clone();
    let clients: Vec<_> = world
        .net
        .blocks
        .iter()
        .map(|b| b.client_ip())
        .take(200)
        .collect();

    let mut run = |ecs: EcsMode, epoch_ms: u64| -> (u64, usize) {
        world.resolvers[ldns_id.index()].set_ecs(ecs);
        let mut counters = QueryCounters::new();
        let before = world.resolvers[ldns_id.index()].stats().upstream_queries;
        for (i, client) in clients.iter().enumerate() {
            let mut authnet = AuthNet {
                mapping: &mut world.mapping,
                static_auths: &world.static_auths,
                endpoints: &world.endpoints,
                latency: &latency,
                resolver_ep: resolver_info.endpoint(),
                resolver_is_public: true,
                root_ip: world.root_ip,
                counters: &mut counters,
                day: 0,
            };
            // All clients ask within one TTL window.
            let now = epoch_ms + i as u64;
            let res = world.resolvers[ldns_id.index()].resolve(
                &domain.www_name,
                *client,
                now,
                &mut authnet,
            );
            assert!(!res.ips.is_empty());
        }
        let upstream = world.resolvers[ldns_id.index()].stats().upstream_queries - before;
        let entries = world.resolvers[ldns_id.index()]
            .cache()
            .entries_for(&domain.cdn_name, end_user_mapping::dns::RrType::A);
        (upstream, entries)
    };

    println!(
        "\ncache behaviour for {} clients of one public LDNS, one domain (§5.2):",
        clients.len()
    );
    let (q_off, e_off) = run(EcsMode::Off, 0);
    println!("  ECS off: {q_off:>4} upstream queries, {e_off:>4} cache entries for the domain");
    let (q_on, e_on) = run(EcsMode::On { source_prefix: 24 }, 400_000_000);
    println!("  ECS on:  {q_on:>4} upstream queries, {e_on:>4} cache entries for the domain");
    println!(
        "  amplification: {:.1}x queries — the paper measured 8x across all public resolvers",
        q_on as f64 / q_off.max(1) as f64
    );
}
