//! The closed-loop load generator against the in-process channel
//! transport: every exchange must verify, and the ECS answer cache must
//! actually absorb repeat traffic.

use eum_authd::loadgen::{self, LoadGenConfig};
use eum_authd::{channel_transports, AuthServer, ChannelClient, ServerConfig, SnapshotHandle};
use eum_cdn::{deployment_universe, CatalogConfig, CdnPlatform, ContentCatalog, DeployConfig};
use eum_mapping::{MappingConfig, MappingSystem};
use eum_netmodel::{Internet, InternetConfig};
use std::time::Duration;

const SEED: u64 = 0xC4A2;

#[test]
fn loadgen_over_channels_verifies_every_response() {
    let mut net = Internet::generate(InternetConfig::tiny(SEED));
    let sites = deployment_universe(SEED, 16);
    let cdn = CdnPlatform::deploy(
        &mut net,
        &sites,
        &DeployConfig {
            servers_per_cluster: 4,
            cache_objects_per_server: 256,
            cluster_capacity: f64::INFINITY,
        },
    );
    let catalog = ContentCatalog::generate(&CatalogConfig::tiny(SEED));
    let map = MappingSystem::build(
        &mut net,
        &cdn,
        &catalog,
        "cdn.example".parse().unwrap(),
        MappingConfig {
            max_ping_targets: 50,
            ..MappingConfig::default()
        },
    );
    let low = map.ns_ips()[1];

    let (transports, connector) = channel_transports(2);
    let server = AuthServer::spawn(transports, SnapshotHandle::new(map), ServerConfig::new(low));

    let cfg = LoadGenConfig {
        clients: 3,
        queries_per_client: 400,
        no_ecs_fraction: 0.2,
        timeout: Duration::from_secs(5),
        seed: SEED,
        telemetry: None,
    };
    let report = loadgen::run(&net, &catalog, low, &cfg, |_| {
        ChannelClient::new(connector.clone())
    });

    assert_eq!(report.ok, 3 * 400, "every exchange must verify");
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.bad_responses, 0);
    assert!(report.qps() > 0.0);
    assert!(report.p99_us() >= report.p50_us());

    let reports = server.stop_join();
    let queries: u64 = reports.iter().map(|r| r.queries).sum();
    assert_eq!(queries, 3 * 400);
    let hits: u64 = reports.iter().map(|r| r.cache.hits).sum();
    let insertions: u64 = reports.iter().map(|r| r.cache.insertions).sum();
    assert!(
        hits > 0,
        "repeat traffic over few blocks/domains must hit the cache (insertions={insertions})"
    );
    for r in &reports {
        assert_eq!(r.dropped, 0);
        assert_eq!(r.malformed, 0);
    }
}
