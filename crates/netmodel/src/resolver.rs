//! Recursive resolvers (LDNS) and public resolver providers.
//!
//! A *resolver* here is one LDNS endpoint as seen by the authoritative
//! side: an ISP's regional resolver, an enterprise's central resolver, or
//! one *site* of a public provider's anycast deployment. Public providers
//! "use their unicast addresses when communicating with Akamai's
//! authoritative name servers" (§3.2), so each site is its own endpoint
//! and can be geolocated — exactly as the paper does.

use crate::ids::{AsId, ProviderId, ResolverId};
use crate::{Endpoint, LatencyModel};
use eum_geo::{Asn, Country, GeoPoint};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What kind of LDNS this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolverKind {
    /// A resolver site operated by an ISP for its own clients.
    IspSite {
        /// The operating AS.
        owner: AsId,
    },
    /// One anycast site of a public resolver provider.
    PublicSite {
        /// The provider.
        provider: ProviderId,
        /// Site ordinal within the provider.
        site: u16,
    },
    /// An enterprise's centralized resolver.
    EnterpriseCentral {
        /// The enterprise AS.
        owner: AsId,
    },
}

impl ResolverKind {
    /// True when this LDNS belongs to a public resolver provider.
    pub fn is_public(&self) -> bool {
        matches!(self, ResolverKind::PublicSite { .. })
    }
}

/// One recursive resolver endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Resolver {
    /// Arena index.
    pub id: ResolverId,
    /// Unicast IP the authoritative side sees.
    pub ip: Ipv4Addr,
    /// Site location.
    pub loc: GeoPoint,
    /// Country of the site.
    pub country: Country,
    /// AS announcing the resolver's prefix.
    pub asn: Asn,
    /// Kind of LDNS.
    pub kind: ResolverKind,
}

impl Resolver {
    /// The resolver as a latency-model endpoint (infrastructure-grade
    /// last-mile).
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::infra(self.ip, self.loc, self.country, self.asn)
    }
}

/// A public resolver provider (Google Public DNS / OpenDNS analogue).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PublicProvider {
    /// Arena index.
    pub id: ProviderId,
    /// Display name.
    pub name: String,
    /// The provider's anycast sites (resolver IDs into the resolver arena).
    pub sites: Vec<ResolverId>,
    /// Whether the provider forwards EDNS0 Client Subnet. In 2014 Google
    /// Public DNS and OpenDNS did; many others did not (§4).
    pub supports_ecs: bool,
    /// Relative popularity among clients who choose a public resolver.
    pub popularity: f64,
}

/// Anycast catchment: routes a client endpoint to one of a provider's (or
/// ISP's) resolver sites.
///
/// IP anycast routes by BGP path selection, which usually — but not always —
/// matches the nearest site; the paper cites its "many known limitations"
/// (§3.2, reference \[23\]). The router picks the latency-nearest site except
/// for a deterministic per-(client-block, site-set) fraction of clients who
/// are misrouted to the second or third nearest site, and an optional
/// per-AS "peering quirk" that pins a whole AS to a remote site (modeling
/// the Singapore/Malaysia example of §3.2).
#[derive(Debug, Clone, Copy)]
pub struct AnycastRouter {
    latency: LatencyModel,
    /// Probability that a client is not routed to its nearest site.
    pub misroute_prob: f64,
}

impl AnycastRouter {
    /// Creates a router over a latency model with the given misroute rate.
    pub fn new(latency: LatencyModel, misroute_prob: f64) -> Self {
        AnycastRouter {
            latency,
            misroute_prob: misroute_prob.clamp(0.0, 1.0),
        }
    }

    /// Chooses the site index in `sites` the client is routed to.
    ///
    /// `noise` must be a stable uniform sample in `[0, 1)` derived from the
    /// client block (the caller owns hashing), so catchments are stable
    /// across queries — an anycast catchment does not flap per packet.
    pub fn route(&self, client: &Endpoint, sites: &[Endpoint], noise: f64) -> usize {
        assert!(!sites.is_empty(), "anycast route over empty site set");
        if sites.len() == 1 {
            return 0;
        }
        // Rank sites by RTT.
        let mut ranked: Vec<(usize, f64)> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| (i, self.latency.rtt_ms(client, s)))
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rtt"));
        if noise < self.misroute_prob {
            // Misrouted: second nearest, or third for the unluckiest tenth.
            let sub = noise / self.misroute_prob;
            let pick = if sub < 0.9 || ranked.len() < 3 { 1 } else { 2 };
            ranked[pick.min(ranked.len() - 1)].0
        } else {
            ranked[0].0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eum_geo::{Asn, Country, GeoPoint};

    fn ep(ip: u32, lat: f64, lon: f64) -> Endpoint {
        Endpoint::infra(
            Ipv4Addr::from(ip),
            GeoPoint::new(lat, lon),
            Country::UnitedStates,
            Asn(1),
        )
    }

    fn sites() -> Vec<Endpoint> {
        vec![
            ep(0x01000001, 40.7, -74.0),  // NYC
            ep(0x01000002, 34.0, -118.2), // LA
            ep(0x01000003, 51.5, -0.1),   // London
        ]
    }

    #[test]
    fn routes_to_nearest_without_noise() {
        let r = AnycastRouter::new(LatencyModel::new(1), 0.1);
        let boston = ep(0x02000001, 42.36, -71.06);
        assert_eq!(r.route(&boston, &sites(), 0.99), 0);
        let sf = ep(0x02000002, 37.77, -122.42);
        assert_eq!(r.route(&sf, &sites(), 0.99), 1);
    }

    #[test]
    fn misroute_picks_second_nearest() {
        let r = AnycastRouter::new(LatencyModel::new(1), 0.1);
        let boston = ep(0x02000001, 42.36, -71.06);
        // noise < misroute_prob and sub-noise < 0.9 ⇒ second nearest (LA).
        assert_eq!(r.route(&boston, &sites(), 0.05), 1);
        // Unluckiest tail ⇒ third nearest (London).
        assert_eq!(r.route(&boston, &sites(), 0.099), 2);
    }

    #[test]
    fn single_site_always_wins() {
        let r = AnycastRouter::new(LatencyModel::new(1), 1.0);
        let c = ep(0x02000001, 0.0, 0.0);
        assert_eq!(r.route(&c, &sites()[..1], 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "empty site set")]
    fn empty_site_set_panics() {
        let r = AnycastRouter::new(LatencyModel::new(1), 0.0);
        let c = ep(0x02000001, 0.0, 0.0);
        let _ = r.route(&c, &[], 0.5);
    }

    #[test]
    fn route_is_deterministic() {
        let r = AnycastRouter::new(LatencyModel::new(1), 0.2);
        let c = ep(0x02000001, 48.8, 2.3);
        let s = sites();
        assert_eq!(r.route(&c, &s, 0.42), r.route(&c, &s, 0.42));
    }
}
