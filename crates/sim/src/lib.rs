#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Simulation: workload, measurement substrates, and the roll-out.
//!
//! This crate drives everything the paper *measures*:
//!
//! * [`engine`] — a deterministic discrete-event queue and simulated time;
//! * [`workload`] — page-view generation (alias-method demand sampling,
//!   Zipf domains, weekly/growth modulation);
//! * [`network`] — the authoritative-DNS transport with query metering;
//! * [`client`] — the HTTP side of a page load against the CDN;
//! * [`netsession`] — the §3.1 client–LDNS pair collection and all §3
//!   analyses;
//! * [`rum`] — the §4.2 real-user-measurement stream and its slicing;
//! * [`rollout`] / [`scenario`] — the §4 roll-out timeline: build the
//!   world, replay January–June 2014, flip ECS on for public resolvers in
//!   the March 28 – April 15 window, and report every figure's inputs.

pub mod churn;
pub mod client;
pub mod engine;
pub mod netsession;
pub mod network;
pub mod rollout;
pub mod rum;
pub mod scenario;
pub mod workload;

pub use churn::{run_churn, ChurnConfig, ChurnTimeline, InvalidationMode};
pub use client::{fetch_page, FetchOutcome};
pub use engine::{EventQueue, SimTime};
pub use netsession::{PairDataset, PairRecord};
pub use network::{AuthNet, QueryCounters};
pub use rollout::{AmplificationBucket, RolloutConfig, RolloutReport};
pub use rum::{Metric, RumCollector, RumSample};
pub use scenario::{Scenario, ScenarioConfig};
pub use workload::{AliasTable, PageView, Workload, WorkloadConfig};
