//! Live end-to-end acceptance for the chaos engine: the defenses must
//! actually buy what the PR claims, measured against a real spawned
//! authd over the channel transport.
//!
//! * NXDOMAIN flood at fixed offered load — the defended arm holds at
//!   least twice the undefended arm's legitimate goodput with a lower
//!   legit p99, the admission counters fire, and the undefended arm
//!   sheds nothing (proving the counters measure the defense, not the
//!   workload).
//! * Flash crowd — cacheable surge: the defense must NOT shed it into
//!   the floor; goodput stays within noise of the undefended arm.

use eum_chaos::{run_ab, ChaosScenario, ChaosWorld};

const SEED: u64 = 0x000C_4A05;

#[test]
fn nxdomain_flood_defenses_double_goodput_and_cut_tail() {
    let mut world = ChaosWorld::build(SEED);
    // Full-size schedule: the sustained flood must dwarf the admission
    // burst, or the defended arm just admits the whole attack.
    let ab = run_ab(&mut world, &ChaosScenario::nxdomain_flood(SEED));

    assert!(
        ab.on.shed > 0,
        "admission control must shed under a cache-busting flood"
    );
    assert_eq!(
        ab.off.shed, 0,
        "the undefended arm has no admission control to shed with"
    );
    assert!(
        ab.goodput_ratio() >= 2.0,
        "defended legit goodput must be >= 2x undefended: on={:.1} qps off={:.1} qps \
         (cost_on={} ns cost_off={} ns interval={} ns)",
        ab.on.goodput_qps,
        ab.off.goodput_qps,
        ab.cost_on_ns,
        ab.cost_off_ns,
        ab.interval_ns,
    );
    assert!(
        ab.on.legit_p99_us < ab.off.legit_p99_us,
        "defended legit p99 must beat undefended: on={:.1} us off={:.1} us",
        ab.on.legit_p99_us,
        ab.off.legit_p99_us,
    );
}

#[test]
fn flash_crowd_is_absorbed_not_shed() {
    let mut world = ChaosWorld::build(SEED);
    let ab = run_ab(&mut world, &ChaosScenario::flash_crowd(SEED));

    // A flash crowd is cache-priced after the first miss per resolver:
    // admission must barely engage (warm-up misses only, well inside
    // the burst) and must not cost legitimate goodput.
    assert!(
        ab.on.shed <= ab.on.admitted / 10,
        "a cacheable crowd must not be shed: shed={} admitted={}",
        ab.on.shed,
        ab.on.admitted,
    );
    assert!(
        ab.goodput_ratio() >= 0.8,
        "defenses must not dent flash-crowd goodput: on={:.1} off={:.1}",
        ab.on.goodput_qps,
        ab.off.goodput_qps,
    );
    assert!(
        ab.on.legit_quality >= 0.9,
        "legit quality under a flash crowd must stay high: {:.3}",
        ab.on.legit_quality,
    );
}
