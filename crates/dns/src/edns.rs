//! EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871).
//!
//! The Client Subnet option is the protocol mechanism end-user mapping is
//! built on (paper §2.1): a recursive resolver appends a truncated client
//! prefix to its upstream query; the authoritative answers with a *scope*
//! prefix length telling caches how widely the answer may be reused.
//!
//! Wire layout of the option (RFC 7871 §6):
//!
//! ```text
//! +0 (MSB)                            +1 (LSB)
//! |          OPTION-CODE (8)          |
//! |          OPTION-LENGTH            |
//! |            FAMILY (1=IPv4)        |
//! | SOURCE PREFIX-LEN | SCOPE PREFIX-LEN |
//! |  ADDRESS... (ceil(source/8) bytes, trailing bits zero) |
//! ```

use bytes::{Buf, BufMut};
use eum_geo::Prefix;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use crate::wire::WireError;

/// EDNS option code for Client Subnet.
pub const OPTION_CODE_ECS: u16 = 8;

/// Address family numbers (RFC 7871 uses the IANA address-family registry).
pub const FAMILY_IPV4: u16 = 1;

/// An EDNS0 Client Subnet option.
///
/// `source_prefix` is what the querier knows about the client;
/// `scope_prefix` is meaningful only in responses (queries MUST send 0 per
/// RFC 7871 §6) and states how widely the answer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcsOption {
    /// The client address, truncated to `source_prefix` bits (host bits
    /// zero — enforced at construction and on parse).
    pub addr: Ipv4Addr,
    /// SOURCE PREFIX-LENGTH: bits of `addr` that are significant.
    pub source_prefix: u8,
    /// SCOPE PREFIX-LENGTH: in a response, the coverage of the answer.
    pub scope_prefix: u8,
}

impl EcsOption {
    /// A query-side option for `client` truncated to `/source_prefix`
    /// (scope 0 as required in queries).
    pub fn query(client: Ipv4Addr, source_prefix: u8) -> EcsOption {
        let p = Prefix::of(client, source_prefix);
        EcsOption {
            addr: p.network(),
            source_prefix: p.len(),
            scope_prefix: 0,
        }
    }

    /// A response-side option echoing `source` with the authoritative
    /// scope set (RFC 7871 §7.1.3: the response must echo FAMILY, SOURCE
    /// PREFIX-LENGTH and ADDRESS).
    pub fn response(source: &EcsOption, scope_prefix: u8) -> EcsOption {
        EcsOption {
            scope_prefix,
            ..*source
        }
    }

    /// The source prefix as a [`Prefix`].
    pub fn source_block(&self) -> Prefix {
        Prefix::of(self.addr, self.source_prefix)
    }

    /// The scope prefix applied to the address, i.e. the block of clients
    /// the answer is valid for. Returns the literal scope block; the
    /// resolver's cache layer clamps a scope longer than the source back
    /// to the source block before storing.
    pub fn scope_block(&self) -> Prefix {
        Prefix::of(self.addr, self.scope_prefix)
    }

    /// Number of address octets on the wire: `ceil(source_prefix / 8)`.
    pub fn addr_octets(&self) -> usize {
        (self.source_prefix as usize).div_ceil(8)
    }

    /// Encodes the option payload (code and length handled by the caller's
    /// option framing via [`encode_option`]).
    fn put_payload(&self, buf: &mut impl BufMut) {
        buf.put_u16(FAMILY_IPV4);
        buf.put_u8(self.source_prefix);
        buf.put_u8(self.scope_prefix);
        let octets = self.addr.octets();
        buf.put_slice(&octets[..self.addr_octets()]);
    }

    /// Full option wire encoding: OPTION-CODE, OPTION-LENGTH, payload.
    pub fn encode_option(&self, buf: &mut impl BufMut) {
        buf.put_u16(OPTION_CODE_ECS);
        buf.put_u16((4 + self.addr_octets()) as u16);
        self.put_payload(buf);
    }

    /// Decodes an option payload of `len` bytes (after code/length).
    /// Enforces RFC 7871 §6 validity: family 1 (IPv4 — the reproduction's
    /// address plan is IPv4), prefix lengths ≤ 32, exactly
    /// `ceil(source/8)` address octets, and zero padding bits.
    pub fn decode_payload(buf: &mut impl Buf, len: usize) -> Result<EcsOption, WireError> {
        if len < 4 {
            return Err(WireError::Truncated);
        }
        let family = buf.get_u16();
        if family != FAMILY_IPV4 {
            return Err(WireError::BadEcs("unsupported address family"));
        }
        let source_prefix = buf.get_u8();
        let scope_prefix = buf.get_u8();
        if source_prefix > 32 || scope_prefix > 32 {
            return Err(WireError::BadEcs("prefix length exceeds 32"));
        }
        let want = (source_prefix as usize).div_ceil(8);
        if len != 4 + want {
            return Err(WireError::BadEcs("address length mismatch"));
        }
        if buf.remaining() < want {
            return Err(WireError::Truncated);
        }
        let mut octets = [0u8; 4];
        for o in octets.iter_mut().take(want) {
            *o = buf.get_u8();
        }
        let addr = Ipv4Addr::from(octets);
        // RFC 7871 §6: trailing (padding) bits MUST be zero.
        if Prefix::of(addr, source_prefix).network() != addr {
            return Err(WireError::BadEcs("non-zero padding bits"));
        }
        Ok(EcsOption {
            addr,
            source_prefix,
            scope_prefix,
        })
    }
}

/// A generic EDNS option: ECS or an opaque (code, data) pair we pass
/// through untouched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdnsOption {
    /// RFC 7871 Client Subnet.
    ClientSubnet(EcsOption),
    /// Any other option, preserved verbatim.
    Other {
        /// Option code.
        code: u16,
        /// Raw option payload.
        data: Vec<u8>,
    },
}

/// The variable part of the OPT pseudo-RR (RFC 6891).
///
/// On the wire, `udp_payload_size` rides in the CLASS field and
/// (`ext_rcode`, `version`, `dnssec_ok`) ride in the TTL field; the codec
/// handles that split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptData {
    /// Requestor's UDP payload size (CLASS field).
    pub udp_payload_size: u16,
    /// Extended RCODE high bits (TTL byte 0).
    pub ext_rcode: u8,
    /// EDNS version (TTL byte 1); only version 0 exists.
    pub version: u8,
    /// The DO (DNSSEC OK) flag (TTL bit 16).
    pub dnssec_ok: bool,
    /// Options carried in RDATA.
    pub options: Vec<EdnsOption>,
}

impl Default for OptData {
    fn default() -> Self {
        OptData {
            udp_payload_size: 4096,
            ext_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl OptData {
    /// An OPT carrying a single ECS option.
    pub fn with_ecs(ecs: EcsOption) -> OptData {
        OptData {
            options: vec![EdnsOption::ClientSubnet(ecs)],
            ..OptData::default()
        }
    }

    /// The first ECS option, if present.
    pub fn ecs(&self) -> Option<&EcsOption> {
        self.options.iter().find_map(|o| match o {
            EdnsOption::ClientSubnet(e) => Some(e),
            EdnsOption::Other { .. } => None,
        })
    }

    /// Encodes RDATA (the options sequence).
    pub fn encode_rdata(&self, buf: &mut impl BufMut) {
        for opt in &self.options {
            match opt {
                EdnsOption::ClientSubnet(e) => e.encode_option(buf),
                EdnsOption::Other { code, data } => {
                    buf.put_u16(*code);
                    buf.put_u16(data.len() as u16);
                    buf.put_slice(data);
                }
            }
        }
    }

    /// Decodes RDATA of `rdlen` bytes into the options sequence.
    pub fn decode_rdata(buf: &mut impl Buf, rdlen: usize) -> Result<Vec<EdnsOption>, WireError> {
        let mut remaining = rdlen;
        let mut options = Vec::new();
        while remaining > 0 {
            if remaining < 4 || buf.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            let code = buf.get_u16();
            let len = buf.get_u16() as usize;
            remaining -= 4;
            if len > remaining || buf.remaining() < len {
                return Err(WireError::Truncated);
            }
            if code == OPTION_CODE_ECS {
                // Parse from a copy so an unsupported (but well-formed)
                // family can be preserved verbatim instead of erroring:
                // this system's address plan is IPv4, and RFC 7871 §7.1.2
                // lets a server treat a family it does not support as if
                // the option were absent.
                let mut data = vec![0u8; len];
                buf.copy_to_slice(&mut data);
                let mut view = &data[..];
                match EcsOption::decode_payload(&mut view, len) {
                    Ok(ecs) => options.push(EdnsOption::ClientSubnet(ecs)),
                    Err(WireError::BadEcs("unsupported address family")) => {
                        options.push(EdnsOption::Other { code, data })
                    }
                    Err(e) => return Err(e),
                }
            } else {
                let mut data = vec![0u8; len];
                buf.copy_to_slice(&mut data);
                options.push(EdnsOption::Other { code, data });
            }
            remaining -= len;
        }
        Ok(options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn query_constructor_truncates_address() {
        let e = EcsOption::query(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(e.addr, Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(e.source_prefix, 24);
        assert_eq!(e.scope_prefix, 0);
        assert_eq!(e.addr_octets(), 3);
    }

    #[test]
    fn response_echoes_source_and_sets_scope() {
        let q = EcsOption::query(Ipv4Addr::new(10, 1, 2, 3), 24);
        let r = EcsOption::response(&q, 20);
        assert_eq!(r.addr, q.addr);
        assert_eq!(r.source_prefix, 24);
        assert_eq!(r.scope_prefix, 20);
    }

    #[test]
    fn option_round_trips() {
        for (ip, src, scope) in [
            (Ipv4Addr::new(10, 1, 2, 0), 24u8, 20u8),
            (Ipv4Addr::new(192, 168, 0, 0), 16, 16),
            (Ipv4Addr::new(8, 0, 0, 0), 5, 0),
            (Ipv4Addr::new(1, 2, 3, 4), 32, 32),
            (Ipv4Addr::new(0, 0, 0, 0), 0, 0),
        ] {
            let e = EcsOption {
                addr: ip,
                source_prefix: src,
                scope_prefix: scope,
            };
            let mut buf = BytesMut::new();
            e.encode_option(&mut buf);
            let mut rd = buf.freeze();
            let code = rd.get_u16();
            let len = rd.get_u16() as usize;
            assert_eq!(code, OPTION_CODE_ECS);
            let back = EcsOption::decode_payload(&mut rd, len).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn nonzero_padding_bits_are_rejected() {
        // /20 with a set bit in the 4 padding bits of the third octet.
        let mut buf = BytesMut::new();
        buf.put_u16(FAMILY_IPV4);
        buf.put_u8(20);
        buf.put_u8(0);
        buf.put_slice(&[10, 1, 0x0F]); // 10.1.15.0/20 — low 4 bits must be 0
        let mut b = buf.freeze();
        let err = EcsOption::decode_payload(&mut b, 7).unwrap_err();
        assert!(matches!(err, WireError::BadEcs("non-zero padding bits")));
    }

    #[test]
    fn wrong_family_and_lengths_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(2); // IPv6 family — unsupported here
        buf.put_u8(24);
        buf.put_u8(0);
        buf.put_slice(&[1, 2, 3]);
        let mut b = buf.freeze();
        assert!(EcsOption::decode_payload(&mut b, 7).is_err());

        let mut buf = BytesMut::new();
        buf.put_u16(FAMILY_IPV4);
        buf.put_u8(33); // prefix too long
        buf.put_u8(0);
        buf.put_slice(&[1, 2, 3, 4, 5]);
        let mut b = buf.freeze();
        assert!(EcsOption::decode_payload(&mut b, 9).is_err());

        let mut buf = BytesMut::new();
        buf.put_u16(FAMILY_IPV4);
        buf.put_u8(24);
        buf.put_u8(0);
        buf.put_slice(&[1, 2]); // one octet short for /24
        let mut b = buf.freeze();
        assert!(EcsOption::decode_payload(&mut b, 6).is_err());
    }

    #[test]
    fn optdata_rdata_round_trips_with_unknown_options() {
        let opt = OptData {
            options: vec![
                EdnsOption::ClientSubnet(EcsOption::query(Ipv4Addr::new(10, 0, 0, 1), 24)),
                EdnsOption::Other {
                    code: 10,
                    data: vec![1, 2, 3, 4],
                }, // COOKIE
            ],
            ..OptData::default()
        };
        let mut buf = BytesMut::new();
        opt.encode_rdata(&mut buf);
        let len = buf.len();
        let mut b = buf.freeze();
        let back = OptData::decode_rdata(&mut b, len).unwrap();
        assert_eq!(back, opt.options);
    }

    #[test]
    fn ecs_accessor_finds_the_option() {
        let e = EcsOption::query(Ipv4Addr::new(10, 0, 0, 1), 24);
        let opt = OptData::with_ecs(e);
        assert_eq!(opt.ecs(), Some(&e));
        assert_eq!(OptData::default().ecs(), None);
    }

    #[test]
    fn ipv6_ecs_option_is_preserved_as_opaque() {
        // An IPv6 (family 2) client-subnet option: RFC 7871 §7.1.2 lets a
        // v4-only server treat it as absent; we keep it byte-for-byte so
        // re-encoding round-trips.
        let mut buf = BytesMut::new();
        buf.put_u16(OPTION_CODE_ECS);
        buf.put_u16(4 + 6);
        buf.put_u16(2); // family 2 = IPv6
        buf.put_u8(48);
        buf.put_u8(0);
        buf.put_slice(&[0x20, 0x01, 0x0d, 0xb8, 0x12, 0x34]);
        let len = buf.len();
        let mut b = buf.freeze();
        let opts = OptData::decode_rdata(&mut b, len).unwrap();
        assert_eq!(opts.len(), 1);
        match &opts[0] {
            EdnsOption::Other { code, data } => {
                assert_eq!(*code, OPTION_CODE_ECS);
                assert_eq!(data.len(), 10);
                assert_eq!(data[..2], [0, 2]);
            }
            other => panic!("expected opaque option, got {other:?}"),
        }
        // And a malformed *IPv4* option still errors.
        let mut buf = BytesMut::new();
        buf.put_u16(OPTION_CODE_ECS);
        buf.put_u16(4 + 3);
        buf.put_u16(FAMILY_IPV4);
        buf.put_u8(20);
        buf.put_u8(0);
        buf.put_slice(&[10, 1, 0x0F]); // non-zero padding bits
        let len = buf.len();
        let mut b = buf.freeze();
        assert!(OptData::decode_rdata(&mut b, len).is_err());
    }

    #[test]
    fn truncated_rdata_errors() {
        let mut b = bytes::Bytes::from_static(&[0, 8, 0, 10]); // claims 10-byte option
        assert!(matches!(
            OptData::decode_rdata(&mut b, 4).unwrap_err(),
            WireError::Truncated
        ));
    }
}
