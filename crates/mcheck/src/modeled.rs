//! Modeled drop-in replacements for `std::sync::atomic` types and
//! `std::sync::Mutex`.
//!
//! Each modeled primitive embeds the *real* std primitive plus one spare
//! `AtomicU64` slot used to memoize its model-location registration (a
//! `(run_tag, loc)` pair — re-registered lazily when an object outlives
//! an execution or is first touched). When an operation runs on a modeled
//! thread inside [`crate::model::check`], it becomes a schedule point in
//! the exploration; anywhere else (plain unit tests, statics touched
//! outside a run) it transparently falls back to the embedded std
//! primitive, so code compiled against these types keeps working in
//! ordinary test binaries.
//!
//! Two deliberate simplifications, documented for test authors:
//! `compare_exchange_weak` never fails spuriously under the model (a
//! strong CAS over-approximates success, which is what the invariants
//! here care about), and values written during a model run are not
//! mirrored back into the embedded std atomic.

use crate::model::{current_ctx, Ctx};
use std::fmt;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};

/// An atomic fence: a schedule point under the model, a real
/// `std::sync::atomic::fence` otherwise.
pub fn fence(ord: Ordering) {
    match current_ctx() {
        Some(ctx) => ctx.fence(ord),
        None => std::sync::atomic::fence(ord),
    }
}

macro_rules! modeled_int_atomic {
    ($(#[$doc:meta])* $Name:ident, $Std:ty, $prim:ty) => {
        $(#[$doc])*
        pub struct $Name {
            real: $Std,
            slot: StdAtomicU64,
        }

        impl $Name {
            /// Creates a new modeled atomic (const, usable in statics).
            pub const fn new(v: $prim) -> Self {
                Self {
                    real: <$Std>::new(v),
                    slot: StdAtomicU64::new(0),
                }
            }

            fn with_ctx<R>(
                &self,
                model: impl FnOnce(&Ctx, &StdAtomicU64, u64) -> R,
                real: impl FnOnce(&$Std) -> R,
            ) -> R {
                match current_ctx() {
                    Some(ctx) => {
                        // relaxed-ok: reads the pre-run initial value to
                        // seed the modeled location; ordering is the
                        // model's job from here on.
                        let init = self.real.load(Ordering::Relaxed) as u64;
                        model(&ctx, &self.slot, init)
                    }
                    None => real(&self.real),
                }
            }

            /// See [`std::sync::atomic`]: atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| ctx.atomic_load(slot, init, ord) as $prim,
                    |real| real.load(ord),
                )
            }

            /// See [`std::sync::atomic`]: atomic store.
            pub fn store(&self, val: $prim, ord: Ordering) {
                self.with_ctx(
                    |ctx, slot, init| ctx.atomic_store(slot, init, val as u64, ord),
                    |real| real.store(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: atomic swap.
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| ctx.atomic_rmw(slot, init, ord, |_| val as u64) as $prim,
                    |real| real.swap(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: wrapping atomic add.
            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| {
                        ctx.atomic_rmw(slot, init, ord, |old| {
                            (old as $prim).wrapping_add(val) as u64
                        }) as $prim
                    },
                    |real| real.fetch_add(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: wrapping atomic subtract.
            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| {
                        ctx.atomic_rmw(slot, init, ord, |old| {
                            (old as $prim).wrapping_sub(val) as u64
                        }) as $prim
                    },
                    |real| real.fetch_sub(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: atomic maximum.
            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| {
                        ctx.atomic_rmw(slot, init, ord, |old| {
                            (old as $prim).max(val) as u64
                        }) as $prim
                    },
                    |real| real.fetch_max(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: atomic minimum.
            pub fn fetch_min(&self, val: $prim, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| {
                        ctx.atomic_rmw(slot, init, ord, |old| {
                            (old as $prim).min(val) as u64
                        }) as $prim
                    },
                    |real| real.fetch_min(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: atomic bitwise and.
            pub fn fetch_and(&self, val: $prim, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| {
                        ctx.atomic_rmw(slot, init, ord, |old| {
                            ((old as $prim) & val) as u64
                        }) as $prim
                    },
                    |real| real.fetch_and(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: atomic bitwise or.
            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                self.with_ctx(
                    |ctx, slot, init| {
                        ctx.atomic_rmw(slot, init, ord, |old| {
                            ((old as $prim) | val) as u64
                        }) as $prim
                    },
                    |real| real.fetch_or(val, ord),
                )
            }

            /// See [`std::sync::atomic`]: compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.with_ctx(
                    |ctx, slot, init| {
                        ctx.atomic_cas(slot, init, current as u64, new as u64, success, failure)
                            .map(|v| v as $prim)
                            .map_err(|v| v as $prim)
                    },
                    |real| real.compare_exchange(current, new, success, failure),
                )
            }

            /// See [`std::sync::atomic`]: weak compare-and-exchange.
            /// Under the model this never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $Name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl fmt::Debug for $Name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_tuple(stringify!($Name)).field(&self.real).finish()
            }
        }
    };
}

modeled_int_atomic!(
    /// Modeled `AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
modeled_int_atomic!(
    /// Modeled `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
modeled_int_atomic!(
    /// Modeled `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

/// Modeled `AtomicBool`.
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
    slot: StdAtomicU64,
}

impl AtomicBool {
    /// Creates a new modeled atomic bool (const, usable in statics).
    pub const fn new(v: bool) -> Self {
        Self {
            real: std::sync::atomic::AtomicBool::new(v),
            slot: StdAtomicU64::new(0),
        }
    }

    fn init(&self) -> u64 {
        // relaxed-ok: pre-run initial value seeding the modeled location.
        self.real.load(Ordering::Relaxed) as u64
    }

    /// See [`std::sync::atomic`]: atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        match current_ctx() {
            Some(ctx) => ctx.atomic_load(&self.slot, self.init(), ord) != 0,
            None => self.real.load(ord),
        }
    }

    /// See [`std::sync::atomic`]: atomic store.
    pub fn store(&self, val: bool, ord: Ordering) {
        match current_ctx() {
            Some(ctx) => ctx.atomic_store(&self.slot, self.init(), val as u64, ord),
            None => self.real.store(val, ord),
        }
    }

    /// See [`std::sync::atomic`]: atomic swap.
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match current_ctx() {
            Some(ctx) => ctx.atomic_rmw(&self.slot, self.init(), ord, |_| val as u64) != 0,
            None => self.real.swap(val, ord),
        }
    }

    /// See [`std::sync::atomic`]: compare-and-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match current_ctx() {
            Some(ctx) => ctx
                .atomic_cas(
                    &self.slot,
                    self.init(),
                    current as u64,
                    new as u64,
                    success,
                    failure,
                )
                .map(|v| v != 0)
                .map_err(|v| v != 0),
            None => self.real.compare_exchange(current, new, success, failure),
        }
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicBool").field(&self.real).finish()
    }
}

/// Modeled `AtomicPtr<T>`. Pointers are modeled by address; provenance is
/// carried by the values the checked code itself keeps alive. Send/Sync
/// follow from the embedded std `AtomicPtr`, same bounds as std.
pub struct AtomicPtr<T> {
    real: std::sync::atomic::AtomicPtr<T>,
    slot: StdAtomicU64,
}

impl<T> AtomicPtr<T> {
    /// Creates a new modeled atomic pointer.
    pub const fn new(p: *mut T) -> Self {
        Self {
            real: std::sync::atomic::AtomicPtr::new(p),
            slot: StdAtomicU64::new(0),
        }
    }

    fn init(&self) -> u64 {
        // relaxed-ok: pre-run initial value seeding the modeled location.
        self.real.load(Ordering::Relaxed) as usize as u64
    }

    /// See [`std::sync::atomic`]: atomic load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        match current_ctx() {
            Some(ctx) => ctx.atomic_load(&self.slot, self.init(), ord) as usize as *mut T,
            None => self.real.load(ord),
        }
    }

    /// See [`std::sync::atomic`]: atomic store.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        match current_ctx() {
            Some(ctx) => ctx.atomic_store(&self.slot, self.init(), p as usize as u64, ord),
            None => self.real.store(p, ord),
        }
    }

    /// See [`std::sync::atomic`]: atomic swap.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match current_ctx() {
            Some(ctx) => ctx.atomic_rmw(&self.slot, self.init(), ord, |_| p as usize as u64)
                as usize as *mut T,
            None => self.real.swap(p, ord),
        }
    }

    /// See [`std::sync::atomic`]: compare-and-exchange.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match current_ctx() {
            Some(ctx) => ctx
                .atomic_cas(
                    &self.slot,
                    self.init(),
                    current as usize as u64,
                    new as usize as u64,
                    success,
                    failure,
                )
                .map(|v| v as usize as *mut T)
                .map_err(|v| v as usize as *mut T),
            None => self.real.compare_exchange(current, new, success, failure),
        }
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicPtr").field(&self.real).finish()
    }
}

// ---------------------------------------------------------------------
// Modeled Mutex
// ---------------------------------------------------------------------

/// Modeled `std::sync::Mutex`. Under the model, lock acquisition is a
/// schedule point with blocking and deadlock detection, and the mutex
/// carries a view so unlock→lock pairs create happens-before edges (as
/// real mutexes do); data storage still lives in an embedded std mutex,
/// which is uncontended by construction once the model grants ownership.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    slot: StdAtomicU64,
}

impl<T> Mutex<T> {
    /// Creates a new modeled mutex (const, usable in statics).
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
            slot: StdAtomicU64::new(0),
        }
    }

    /// See [`std::sync::Mutex::lock`].
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let model = current_ctx().map(|ctx| {
            let rid = ctx.mutex_lock(&self.slot);
            (ctx, rid)
        });
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                std: Some(g),
                model,
            }),
            Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                std: Some(p.into_inner()),
                model,
            })),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releasing it is a schedule point under the model.
pub struct MutexGuard<'a, T> {
    // Option so Drop can release the std guard *before* the model unlock
    // hands the grant to a competing locker.
    std: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release real storage first: the model unlock below may
        // immediately grant a competing locker, which must find the std
        // mutex free.
        self.std = None;
        if let Some((ctx, rid)) = self.model.take() {
            ctx.mutex_unlock(rid);
        }
    }
}
