#!/usr/bin/env bash
# Records the PR 3 serve-path benchmarks into BENCH_pr3.json.
#
# Runs the `wire` bench (the alloc-free codec + shard serve paths + geo
# lookup), parses the ns/op figures out of the criterion output, and
# writes them next to the frozen pre-change baselines (measured at commit
# 00b8dbf, before the inline-name/zero-alloc rewrite) so the speedups are
# auditable from the JSON alone.
#
# Usage: scripts/bench_record.sh [out.json]

set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr3.json}"

raw="$(cargo bench -p eum-bench --bench wire 2>&1 | tee /dev/stderr)"

# "name  time: [  389.7 ns/iter] ..." -> ns as a plain number (µs * 1000).
ns_of() {
  echo "$raw" | awk -v name="$1" '
    $1 == name && /time:/ {
      for (i = 1; i <= NF; i++) if ($i == "time:") { v = $(i+2); u = $(i+3); }
      sub(/\/iter\]/, "", u)
      if (u == "µs" || u == "us") v *= 1000
      if (u == "ms") v *= 1000000
      printf "%.1f", v
    }'
}

hit=$(ns_of authd_cached_hit_serve_path)
miss=$(ns_of authd_cold_miss_serve_path)
enc=$(ns_of encode_a_response_into)
dec=$(ns_of decode_a_response_into)
geo=$(ns_of geo_lookup)

for v in "$hit" "$miss" "$enc" "$dec" "$geo"; do
  [ -n "$v" ] || { echo "failed to parse bench output" >&2; exit 1; }
done

python3 - "$out" "$hit" "$miss" "$enc" "$dec" "$geo" <<'EOF'
import json, sys
out, hit, miss, enc, dec, geo = sys.argv[1], *map(float, sys.argv[2:])
baseline = {
    # Measured at 00b8dbf with benches of identical shape (the cached-hit
    # path replicated the then-current decode -> lookup-clone -> rebuild
    # -> encode replay; codec numbers are dns_codec's allocating wrappers).
    "authd_cached_hit_ns": 2198.0,
    "authd_cold_miss_ns": 2314.0,
    "wire_encode_ns": 853.3,
    "wire_decode_ns": 972.4,
    "geo_lookup_ns": 56.0,
}
current = {
    "authd_cached_hit_ns": hit,
    "authd_cold_miss_ns": miss,
    "wire_encode_ns": enc,
    "wire_decode_ns": dec,
    "geo_lookup_ns": geo,
}
speedup = {k: round(baseline[k] / v, 2) if v else None for k, v in current.items()}
json.dump(
    {
        "pr": 3,
        "bench": "serve-path zero-allocation rewrite",
        "baseline_commit": "00b8dbf",
        "baseline_ns": baseline,
        "current_ns": current,
        "speedup": speedup,
    },
    open(out, "w"),
    indent=2,
)
print(file=open(out, "a"))
print(f"wrote {out}: cached-hit speedup {speedup['authd_cached_hit_ns']}x")
EOF
