//! The paper's §7 prior art, quantified: before ECS, Akamai implemented
//! end-user mapping with *metafile / HTTP redirection* — the client first
//! reaches an NS-mapped server, which knows the client's real IP and
//! redirects it to a better server. That costs an extra round trip to the
//! (possibly distant) first server, "acceptable only for larger downloads
//! such as media files and software downloads."
//!
//! This example measures all three mechanisms on the same clients:
//! NS-based mapping, redirection, and ECS-based end-user mapping, for a
//! small web page and a large download — reproducing the §7 claim that
//! redirection approaches EU for large transfers but loses badly on
//! small ones.
//!
//! Run with: `cargo run --release --example redirection_vs_ecs`

use end_user_mapping::cdn::{page_timings, PageLoadInputs, TcpModel};
use end_user_mapping::sim::scenario::{Scenario, ScenarioConfig};
use end_user_mapping::stats::Table;

fn main() {
    let world = Scenario::build(ScenarioConfig::small(0x5EED));
    let latency = world.net.latency;
    let tcp = TcpModel::default();

    // Clients of public resolvers: the population where NS mapping and
    // client location disagree.
    let mut rows: Vec<(f64, f64, f64, f64, f64, f64)> = Vec::new(); // per-size sums
    let mut weight_total = 0.0;
    for block in &world.net.blocks {
        for (rid, w) in &block.ldns {
            if !world.net.is_public_resolver(*rid) {
                continue;
            }
            let weight = block.demand * w;
            let ldns_ip = world.net.resolver(*rid).ip;
            let Some(ns_cluster) = world.mapping.assigned_cluster_for_ldns(ldns_ip) else {
                continue;
            };
            let Some(eu_cluster) = world.mapping.assigned_cluster_for_block(block.prefix) else {
                continue;
            };
            let client = block.endpoint();
            let ns_ep = world.cdn.cluster_endpoint(ns_cluster);
            let eu_ep = world.cdn.cluster_endpoint(eu_cluster);
            let rtt_ns = latency.rtt_ms(&client, &ns_ep);
            let rtt_eu = latency.rtt_ms(&client, &eu_ep);
            let loss_ns = latency.loss_rate(&client, &ns_ep);
            let loss_eu = latency.loss_rate(&client, &eu_ep);

            let total = |size_kb: f64, rtt: f64, loss: f64, prelude_ms: f64| -> f64 {
                let t = page_timings(
                    &tcp,
                    &PageLoadInputs {
                        rtt_ms: rtt,
                        loss_rate: loss,
                        server_time_ms: 10.0,
                        origin_fetch_ms: None,
                        base_size_kb: size_kb,
                        embedded_kb: 0.0,
                        embedded_miss_penalty_ms: 0.0,
                    },
                );
                prelude_ms + tcp.handshake_ms(rtt) + t.ttfb_ms + t.download_ms
            };
            for (i, size_kb) in [60.0, 20_000.0].into_iter().enumerate() {
                // NS: everything over the NS-mapped server.
                let ns = total(size_kb, rtt_ns, loss_ns, 0.0);
                // Redirection: metafile fetch from the NS server (one
                // handshake + one request round trip), then the real
                // transfer from the EU server.
                let redirect_prelude = tcp.handshake_ms(rtt_ns) + rtt_ns + 5.0;
                let rd = total(size_kb, rtt_eu, loss_eu, redirect_prelude);
                // ECS: straight to the EU server.
                let eu = total(size_kb, rtt_eu, loss_eu, 0.0);
                if i == 0 {
                    rows.push((ns * weight, rd * weight, eu * weight, 0.0, 0.0, 0.0));
                } else if let Some(last) = rows.last_mut() {
                    last.3 = ns * weight;
                    last.4 = rd * weight;
                    last.5 = eu * weight;
                }
            }
            weight_total += weight;
        }
    }
    let sum = rows.iter().fold((0.0, 0.0, 0.0, 0.0, 0.0, 0.0), |a, r| {
        (
            a.0 + r.0,
            a.1 + r.1,
            a.2 + r.2,
            a.3 + r.3,
            a.4 + r.4,
            a.5 + r.5,
        )
    });
    let mut t = Table::new([
        "mechanism",
        "60 KB web page (ms)",
        "20 MB download (ms)",
        "web penalty vs ECS",
        "download penalty vs ECS",
    ]);
    let mk = |label: &str, web: f64, dl: f64, web_eu: f64, dl_eu: f64| {
        [
            label.to_string(),
            format!("{:.0}", web / weight_total),
            format!("{:.0}", dl / weight_total),
            format!("{:+.0}%", 100.0 * (web - web_eu) / web_eu),
            format!("{:+.1}%", 100.0 * (dl - dl_eu) / dl_eu),
        ]
    };
    t.row(mk("NS-based mapping", sum.0, sum.3, sum.2, sum.5));
    t.row(mk("metafile/HTTP redirection", sum.1, sum.4, sum.2, sum.5));
    t.row(mk("ECS end-user mapping", sum.2, sum.5, sum.2, sum.5));
    println!("{t}");
    println!(
        "\n§7's claim, quantified: the redirection penalty is amortized over a large\n\
         download (within a few percent of ECS) but is prohibitive for small web\n\
         pages — which is why ECS was the key enabler for *web* end-user mapping."
    );
}
